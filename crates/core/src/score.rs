//! Track-pair scores (Definition 3.1) and exact score evaluation.
//!
//! ## The dense kernel
//!
//! Features are unit-norm ([`tm_reid::Feature`] enforces `‖f‖ = 1`), so the
//! Euclidean distance collapses to a dot product:
//!
//! ```text
//! ‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b = 2 − 2·a·b
//! ```
//!
//! [`exact_scores`] exploits this: each track's features are packed into a
//! flat row-major matrix once, and every pair's score is a cache-blocked
//! row×row dot-product sweep ([`sum_pairwise_unit_distances`], now living
//! in [`crate::simd`] with an AVX2+FMA fast path and the pinned scalar
//! kernel as fallback/reference). The dot product is clamped at zero
//! before the square root so identical features cannot produce `NaN` from
//! a slightly negative rounding residue.
//!
//! The pre-rewrite scorer is kept as [`exact_scores_reference`]; a property
//! test below pins the two to within `1e-9` and the `kernels` Criterion
//! bench in `tm-bench` measures the speedup.
//!
//! ## Scratch reuse
//!
//! [`exact_scores_with`] is the allocation-free core: all working state —
//! the bump [`Arena`] for per-group resolved-pair / missing-box buffers,
//! the [`DenseStore`] feature-matrix pool, the task list — lives in a
//! caller-owned [`ScoreScratch`], and results are written into a caller
//! `Vec`. After warm-up a steady-state window performs **zero** heap
//! allocations in this path (pinned by `tm-bench/tests/alloc_audit.rs`).
//! [`exact_scores`] wraps it with a per-thread scratch pool
//! ([`with_score_scratch`]) so existing callers keep the reuse without
//! plumbing.
//!
//! Both scorers stage their groups through one shared helper
//! (`stage_group`/`pack_group`), so the reference cannot silently drift
//! from the optimized path.
//!
//! ## Cost accounting vs. arithmetic
//!
//! Simulated-clock charges (inference rounds, distance batches) happen in a
//! **serial** walk over the pair groups, in exactly the order the original
//! implementation charged them — only the pure arithmetic that follows is
//! fanned out over threads (`tm_par::par_map_into`, index-ordered
//! collection). Reported costs and scores are therefore bit-identical for
//! any `TMERGE_THREADS` setting.

use crate::sampling::split_flat_index;
use crate::scratch::{Arena, DenseStore};
use crate::selector::SelectionInput;
use std::cell::RefCell;
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, Track, TrackBox, TrackId, TrackPair, TrackSet};

pub use crate::simd::{sum_pairwise_unit_distances, sum_pairwise_unit_distances_scalar};

/// Maximum BBox pairs evaluated per batch round. One logical GPU round per
/// `batch` track pairs may be split into several calls at this cap to bound
/// memory; the extra per-call overhead charged is negligible relative to
/// the items (see `tm_reid::CostModel`).
pub const MAX_ROUND_ITEMS: usize = 65_536;

/// A resolved track pair: both tracks with their box sequences.
#[derive(Debug, Clone, Copy)]
pub struct PairBoxes<'a> {
    /// The pair.
    pub pair: TrackPair,
    /// The track with the smaller id.
    pub a: &'a Track,
    /// The track with the larger id.
    pub b: &'a Track,
}

impl<'a> PairBoxes<'a> {
    /// Looks both tracks up.
    pub fn resolve(pair: TrackPair, tracks: &'a TrackSet) -> Result<Self> {
        Ok(Self {
            pair,
            a: tracks.require(pair.lo())?,
            b: tracks.require(pair.hi())?,
        })
    }

    /// `|t_i| · |t_j|` — the size of the BBox-pair pool.
    pub fn total_bbox_pairs(&self) -> u64 {
        self.a.len() as u64 * self.b.len() as u64
    }

    /// The BBox pair at a flat index in `0..total_bbox_pairs()`.
    pub fn bbox_pair(&self, flat: u64) -> ((TrackId, &'a TrackBox), (TrackId, &'a TrackBox)) {
        let (alpha, beta) = split_flat_index(flat, self.b.len());
        (
            (self.a.id, &self.a.boxes[alpha]),
            (self.b.id, &self.b.boxes[beta]),
        )
    }

    /// The spatial distance `DisS` (§IV-C): Euclidean distance between the
    /// centre of the chronologically earlier track's *last* box and the
    /// later track's *first* box. `None` when either track is empty.
    pub fn spatial_distance(&self) -> Option<f64> {
        let (earlier, later) = if self.a.first_frame() <= self.b.first_frame() {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        Some(earlier.last_center()?.distance(&later.first_center()?))
    }

    /// The temporal distance `DisT` (§IV-C footnote 4): frames between the
    /// chronologically earlier track's last box and the later track's first
    /// box. The paper measured it as essentially uncorrelated with the
    /// score (Pearson < 0.1) and left it out of BetaInit; the
    /// `corr_analysis` experiment binary reproduces that measurement.
    pub fn temporal_distance(&self) -> Option<i64> {
        let (earlier, later) = if self.a.first_frame() <= self.b.first_frame() {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        Some(later.first_frame()?.delta(earlier.last_frame()?))
    }
}

/// The naive subtract-square-accumulate kernel the reference scorer uses;
/// exposed so benchmarks can compare the kernels head-to-head.
pub fn sum_pairwise_distances_naive(fa: &[f64], fb: &[f64], dim: usize) -> f64 {
    debug_assert!(dim > 0 && fa.len().is_multiple_of(dim) && fb.len().is_multiple_of(dim));
    let mut sum = 0.0f64;
    for ra in fa.chunks_exact(dim) {
        for rb in fb.chunks_exact(dim) {
            let mut acc = 0.0;
            for (x, y) in ra.iter().zip(rb) {
                let d = x - y;
                acc += d * d;
            }
            sum += acc.sqrt();
        }
    }
    sum
}

/// One pair's scoring work, recorded by the serial cost-accounting walk and
/// executed by the parallel kernel pass.
enum ScoreTask {
    /// Empty BBox-pair pool → worst possible score (1.0), no arithmetic.
    Empty,
    /// Dense kernel over the two tracks' packed feature matrices.
    Dense { a: TrackId, b: TrackId, total: u64 },
}

/// Reusable working memory for [`exact_scores_with`]: the per-group bump
/// arena, the dense feature-matrix pool and the task list. Create one per
/// long-lived loop (or use [`with_score_scratch`]); after warm-up, calls
/// through it do not allocate.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    arena: Arena,
    store: DenseStore,
    tasks: Vec<(TrackPair, ScoreTask)>,
}

impl std::fmt::Debug for ScoreTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreTask::Empty => write!(f, "Empty"),
            ScoreTask::Dense { a, b, total } => {
                write!(f, "Dense({a:?}×{b:?}, {total})")
            }
        }
    }
}

impl ScoreScratch {
    /// An empty scratch; buffers grow to the working-set size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread pool of score scratches. A `Vec` (not a single slot) so
    /// reentrant scoring — e.g. a selector invoked from inside a fanned-out
    /// window that itself scores — checks out distinct scratches.
    static SCRATCH_POOL: RefCell<Vec<ScoreScratch>> = const { RefCell::new(Vec::new()) };
}

/// Checks a [`ScoreScratch`] out of the calling thread's pool, runs `f`,
/// and returns it. Windows processed on the same worker thread therefore
/// share warm buffers; under `TMERGE_THREADS=1` every window in the process
/// reuses one scratch.
pub fn with_score_scratch<R>(f: impl FnOnce(&mut ScoreScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    let r = f(&mut scratch);
    SCRATCH_POOL.with(|p| p.borrow_mut().push(scratch));
    r
}

/// Stages one pair group: resolves the pairs into the arena and gathers
/// the flat missing-box list (every box of every group track not yet in
/// `store` — duplicates across pairs included, exactly as the scorers have
/// always pushed them; the session dedups by key). Shared by the optimized
/// and reference scorers so their staging cannot drift apart.
#[allow(clippy::type_complexity)]
fn stage_group<'t, 'ar>(
    group: &[TrackPair],
    tracks: &'t TrackSet,
    store: &DenseStore,
    arena: &'ar Arena,
) -> Result<(&'ar mut [PairBoxes<'t>], &'ar mut [(TrackId, &'t TrackBox)])> {
    let resolved = arena.alloc_try_fill(group.len(), |i| PairBoxes::resolve(group[i], tracks))?;
    // Counting pass, mirroring the fill below exactly.
    let mut n_missing = 0usize;
    for pb in resolved.iter() {
        for t in [pb.a, pb.b] {
            if !store.contains(t.id) {
                n_missing += t.len();
            }
        }
    }
    let missing = arena.alloc_from_iter_exact(
        n_missing,
        resolved
            .iter()
            .flat_map(|pb| [pb.a, pb.b])
            .filter(|t| !store.contains(t.id))
            .flat_map(|t| t.boxes.iter().map(move |b| (t.id, b))),
    );
    Ok((resolved, missing))
}

/// Packs every not-yet-stored group track's features into `store`, reading
/// the session cache warmed by the ensure step. `strict` marks the
/// reference path, where a cache miss after an infallible ensure is a bug;
/// the optimized path falls back to a charged single extraction so the
/// scorer total stays correct even if a shared cache was drained between
/// the ensure and this read.
fn pack_group(
    resolved: &[PairBoxes<'_>],
    store: &mut DenseStore,
    session: &mut ReidSession<'_>,
    strict: bool,
) -> Result<()> {
    for pb in resolved {
        for t in [pb.a, pb.b] {
            if store.contains(t.id) {
                continue;
            }
            let start = store.start_track();
            for b in &t.boxes {
                let f = match session.cached_feature(t.id, b.frame) {
                    Some(f) => f,
                    None if strict => panic!("ensured above"),
                    None => session.try_feature(t.id, b)?,
                };
                store.push_row(f.as_slice());
            }
            store.commit_track(t.id, start);
        }
    }
    Ok(())
}

/// Computes the **exact** normalized score `s̃_{i,j}` of every pair: the
/// mean normalized feature distance over *all* BBox pairs (Eq. 5). This is
/// the inner loop of the baseline (Algorithm 1).
///
/// Convenience wrapper over [`exact_scores_with`] using the calling
/// thread's pooled [`ScoreScratch`].
pub fn exact_scores(
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
) -> Result<Vec<(TrackPair, f64)>> {
    with_score_scratch(|scratch| {
        let mut out = Vec::with_capacity(input.pairs.len());
        exact_scores_with(input, session, scratch, &mut out)?;
        Ok(out)
    })
}

/// The allocation-free exact scorer: identical results and charges to
/// [`exact_scores`], with all working memory in `scratch` and the scores
/// written into `out` (cleared first).
///
/// Track pairs are processed in groups of the session device's batch size
/// `B` (one logical GPU round per group, §IV-F), with rounds split at
/// [`MAX_ROUND_ITEMS`] to bound memory. Pairs with an empty pool score the
/// worst possible value (1.0).
///
/// Clock charges run serially in group order (identical to the reference
/// implementation); the dot-product kernel then fans out over all pairs
/// (see the module docs).
pub fn exact_scores_with(
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
    scratch: &mut ScoreScratch,
    out: &mut Vec<(TrackPair, f64)>,
) -> Result<()> {
    let batch = session.device().batch();
    let ScoreScratch {
        arena,
        store,
        tasks,
    } = scratch;
    arena.reset();
    store.clear();
    tasks.clear();
    for group in input.pairs.chunks(batch.max(1)) {
        let (resolved, missing) = stage_group(group, input.tracks, store, arena)?;
        // One inference round for every box of the group not yet extracted.
        session.try_ensure_features(missing)?;
        pack_group(resolved, store, session, false)?;
        for pb in resolved.iter() {
            let total = pb.total_bbox_pairs();
            if total == 0 || store.dim() == 0 {
                tasks.push((pb.pair, ScoreTask::Empty));
                continue;
            }
            session.charge_distance_batch(total as usize);
            tasks.push((
                pb.pair,
                ScoreTask::Dense {
                    a: pb.a.id,
                    b: pb.b.id,
                    total,
                },
            ));
        }
    }
    // Pure arithmetic from here on: fan the pairs out over threads and
    // collect in input order.
    let store = &*store;
    tm_par::par_map_into(tasks, out, |(pair, task)| match task {
        ScoreTask::Empty => (*pair, 1.0),
        ScoreTask::Dense { a, b, total } => {
            let sum = sum_pairwise_unit_distances(store.rows(*a), store.rows(*b), store.dim());
            (*pair, sum / (NORMALIZER * *total as f64))
        }
    });
    Ok(())
}

/// The pre-rewrite exact scorer (naive coordinate-difference kernel, fully
/// serial). Kept as ground truth for the kernel property test and the
/// `kernels` Criterion bench; production callers use [`exact_scores`].
/// Staging goes through the same `stage_group`/`pack_group` helpers as the
/// optimized path — only the kernel and the fan-out differ.
pub fn exact_scores_reference(
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
) -> Result<Vec<(TrackPair, f64)>> {
    let batch = session.device().batch();
    let arena = Arena::new();
    let mut store = DenseStore::new();
    let mut out = Vec::with_capacity(input.pairs.len());
    for group in input.pairs.chunks(batch.max(1)) {
        let (resolved, missing) = stage_group(group, input.tracks, &store, &arena)?;
        session.ensure_features(missing);
        pack_group(resolved, &mut store, session, true)?;
        for pb in resolved.iter() {
            let total = pb.total_bbox_pairs();
            if total == 0 || store.dim() == 0 {
                out.push((pb.pair, 1.0));
                continue;
            }
            session.charge_distance_batch(total as usize);
            let sum =
                sum_pairwise_distances_naive(store.rows(pb.a.id), store.rows(pb.b.id), store.dim());
            out.push((pb.pair, sum / (NORMALIZER * total as f64)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId};

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn setup() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 5),
            track(2, 10, 30, 5), // same actor as 1 → polyonymous with it
            track(3, 11, 0, 5),
        ]);
        (model, tracks)
    }

    fn pairs() -> Vec<TrackPair> {
        vec![
            TrackPair::new(TrackId(1), TrackId(2)).unwrap(),
            TrackPair::new(TrackId(1), TrackId(3)).unwrap(),
            TrackPair::new(TrackId(2), TrackId(3)).unwrap(),
        ]
    }

    #[test]
    fn pair_boxes_indexing() {
        let (_, tracks) = setup();
        let pb = PairBoxes::resolve(pairs()[0], &tracks).unwrap();
        assert_eq!(pb.total_bbox_pairs(), 25);
        let ((ta, ba), (tb, bb)) = pb.bbox_pair(7); // α=1, β=2
        assert_eq!(ta, TrackId(1));
        assert_eq!(tb, TrackId(2));
        assert_eq!(ba.frame, FrameIdx(1));
        assert_eq!(bb.frame, FrameIdx(32));
    }

    #[test]
    fn spatial_distance_orders_by_time() {
        let (_, tracks) = setup();
        // Track 1 ends at frame 4 box x=20 (centre 40,140); track 2 starts
        // at frame 30 box x=0 (centre 20,140): DisS = 20.
        let pb = PairBoxes::resolve(pairs()[0], &tracks).unwrap();
        assert!((pb.spatial_distance().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn polyonymous_pair_scores_lowest() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let scores = exact_scores(&input, &mut session).unwrap();
        let get = |a: u64, b: u64| {
            scores
                .iter()
                .find(|(p, _)| *p == TrackPair::new(TrackId(a), TrackId(b)).unwrap())
                .unwrap()
                .1
        };
        assert!(get(1, 2) < get(1, 3), "same-actor pair must score lower");
        assert!(get(1, 2) < get(2, 3));
        for (_, s) in &scores {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn batched_scores_match_sequential() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut cpu = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let seq = exact_scores(&input, &mut cpu).unwrap();
        let mut gpu = ReidSession::new(&model, CostModel::zero(), Device::Gpu { batch: 2 });
        let bat = exact_scores(&input, &mut gpu).unwrap();
        for ((p1, s1), (p2, s2)) in seq.iter().zip(&bat) {
            assert_eq!(p1, p2);
            assert!((s1 - s2).abs() < 1e-12, "batched result differs");
        }
    }

    #[test]
    fn exact_scores_count_every_bbox_pair() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        exact_scores(&input, &mut session).unwrap();
        // 3 pairs × 25 bbox pairs each.
        assert_eq!(session.stats().distances, 75);
        // 15 distinct boxes → 15 inferences, rest cache hits.
        assert_eq!(session.stats().inferences, 15);
    }

    #[test]
    fn dot_kernel_matches_naive_kernel_and_reference_charges() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut s_new = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let new = exact_scores(&input, &mut s_new).unwrap();
        let mut s_ref = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let reference = exact_scores_reference(&input, &mut s_ref).unwrap();
        for ((p1, s1), (p2, s2)) in new.iter().zip(&reference) {
            assert_eq!(p1, p2);
            assert!((s1 - s2).abs() < 1e-9, "{p1}: {s1} vs {s2}");
        }
        // The rewrite must charge the exact same simulated cost.
        assert_eq!(s_new.elapsed_ms(), s_ref.elapsed_ms());
        assert_eq!(s_new.stats().distances, s_ref.stats().distances);
        assert_eq!(s_new.stats().inferences, s_ref.stats().inferences);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut fresh_session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let fresh = exact_scores(&input, &mut fresh_session).unwrap();

        let mut scratch = ScoreScratch::new();
        let mut out = Vec::new();
        for round in 0..5 {
            let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
            exact_scores_with(&input, &mut session, &mut scratch, &mut out).unwrap();
            assert_eq!(out.len(), fresh.len());
            for ((p1, s1), (p2, s2)) in out.iter().zip(&fresh) {
                assert_eq!(p1, p2, "round {round}");
                assert_eq!(s1.to_bits(), s2.to_bits(), "round {round}: {s1} vs {s2}");
            }
            assert_eq!(session.elapsed_ms(), fresh_session.elapsed_ms());
        }
    }

    #[test]
    fn empty_tracks_score_worst_without_charges() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            Track::with_boxes(TrackId(1), classes::PEDESTRIAN, vec![]),
            track(2, 10, 0, 3),
        ]);
        let ps = vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()];
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let scores = exact_scores(&input, &mut session).unwrap();
        assert_eq!(scores, vec![(ps[0], 1.0)]);
        assert_eq!(session.stats().distances, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The dot-product kernel agrees with the naive kernel on
            /// realistic (model-generated, unit-norm) feature matrices.
            /// Frames are disjoint across tracks so no two rows are
            /// bit-identical, keeping the `√(2−2·a·b)` cancellation error
            /// far below the 1e-9 budget.
            #[test]
            fn rewrite_matches_reference(
                sizes in proptest::collection::vec(1usize..8, 2..5),
                actors in proptest::collection::vec(0u64..4, 2..5),
                threads in 1usize..5,
            ) {
                let model = AppearanceModel::new(AppearanceConfig::default());
                let n = sizes.len().min(actors.len());
                let tracks = TrackSet::from_tracks(
                    (0..n)
                        .map(|i| track(i as u64 + 1, actors[i], i as u64 * 100, sizes[i]))
                        .collect(),
                );
                let mut ps = Vec::new();
                for i in 0..n as u64 {
                    for j in (i + 1)..n as u64 {
                        ps.push(TrackPair::new(TrackId(i + 1), TrackId(j + 1)).unwrap());
                    }
                }
                let input = SelectionInput { pairs: &ps, tracks: &tracks, k: 1.0, voi: None };
                std::env::set_var(tm_par::THREADS_ENV, threads.to_string());
                let mut s_new = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
                let new = exact_scores(&input, &mut s_new).unwrap();
                std::env::remove_var(tm_par::THREADS_ENV);
                let mut s_ref = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
                let reference = exact_scores_reference(&input, &mut s_ref).unwrap();
                prop_assert_eq!(new.len(), reference.len());
                for ((p1, s1), (p2, s2)) in new.iter().zip(&reference) {
                    prop_assert_eq!(p1, p2);
                    prop_assert!((s1 - s2).abs() < 1e-9, "{}: {} vs {}", p1, s1, s2);
                }
            }
        }
    }
}
