//! Track-pair scores (Definition 3.1) and exact score evaluation.
//!
//! ## The dense kernel
//!
//! Features are unit-norm ([`tm_reid::Feature`] enforces `‖f‖ = 1`), so the
//! Euclidean distance collapses to a dot product:
//!
//! ```text
//! ‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b = 2 − 2·a·b
//! ```
//!
//! [`exact_scores`] exploits this: each track's features are packed into a
//! flat row-major matrix once, and every pair's score is a cache-blocked
//! row×row dot-product sweep ([`sum_pairwise_unit_distances`]) — one FMA
//! chain per row pair instead of a subtract-square-accumulate chain, and
//! block tiling so the `B`-side rows stay hot in L1/L2 across the `A` rows
//! of a tile. The dot product is clamped at zero before the square root so
//! identical features cannot produce `NaN` from a slightly negative
//! rounding residue.
//!
//! The pre-rewrite scorer is kept as [`exact_scores_reference`]; a property
//! test below pins the two to within `1e-9` and the `kernels` Criterion
//! bench in `tm-bench` measures the speedup.
//!
//! ## Cost accounting vs. arithmetic
//!
//! Simulated-clock charges (inference rounds, distance batches) happen in a
//! **serial** walk over the pair groups, in exactly the order the original
//! implementation charged them — only the pure arithmetic that follows is
//! fanned out over threads (`tm_par::par_map`, index-ordered collection).
//! Reported costs and scores are therefore bit-identical for any
//! `TMERGE_THREADS` setting.

use crate::sampling::split_flat_index;
use crate::selector::SelectionInput;
use std::collections::HashMap;
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, Track, TrackBox, TrackId, TrackPair, TrackSet};

/// Maximum BBox pairs evaluated per batch round. One logical GPU round per
/// `batch` track pairs may be split into several calls at this cap to bound
/// memory; the extra per-call overhead charged is negligible relative to
/// the items (see `tm_reid::CostModel`).
pub const MAX_ROUND_ITEMS: usize = 65_536;

/// Rows of the `A`-side matrix per tile of the blocked kernel.
const BLOCK_A: usize = 16;
/// Rows of the `B`-side matrix per tile; `BLOCK_B · dim` doubles (with the
/// `A` tile) stay comfortably inside L1 at the default `dim = 32`.
const BLOCK_B: usize = 64;

/// A resolved track pair: both tracks with their box sequences.
#[derive(Debug, Clone, Copy)]
pub struct PairBoxes<'a> {
    /// The pair.
    pub pair: TrackPair,
    /// The track with the smaller id.
    pub a: &'a Track,
    /// The track with the larger id.
    pub b: &'a Track,
}

impl<'a> PairBoxes<'a> {
    /// Looks both tracks up.
    pub fn resolve(pair: TrackPair, tracks: &'a TrackSet) -> Result<Self> {
        Ok(Self {
            pair,
            a: tracks.require(pair.lo())?,
            b: tracks.require(pair.hi())?,
        })
    }

    /// `|t_i| · |t_j|` — the size of the BBox-pair pool.
    pub fn total_bbox_pairs(&self) -> u64 {
        self.a.len() as u64 * self.b.len() as u64
    }

    /// The BBox pair at a flat index in `0..total_bbox_pairs()`.
    pub fn bbox_pair(&self, flat: u64) -> ((TrackId, &'a TrackBox), (TrackId, &'a TrackBox)) {
        let (alpha, beta) = split_flat_index(flat, self.b.len());
        (
            (self.a.id, &self.a.boxes[alpha]),
            (self.b.id, &self.b.boxes[beta]),
        )
    }

    /// The spatial distance `DisS` (§IV-C): Euclidean distance between the
    /// centre of the chronologically earlier track's *last* box and the
    /// later track's *first* box. `None` when either track is empty.
    pub fn spatial_distance(&self) -> Option<f64> {
        let (earlier, later) = if self.a.first_frame() <= self.b.first_frame() {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        Some(earlier.last_center()?.distance(&later.first_center()?))
    }

    /// The temporal distance `DisT` (§IV-C footnote 4): frames between the
    /// chronologically earlier track's last box and the later track's first
    /// box. The paper measured it as essentially uncorrelated with the
    /// score (Pearson < 0.1) and left it out of BetaInit; the
    /// `corr_analysis` experiment binary reproduces that measurement.
    pub fn temporal_distance(&self) -> Option<i64> {
        let (earlier, later) = if self.a.first_frame() <= self.b.first_frame() {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        Some(later.first_frame()?.delta(earlier.last_frame()?))
    }
}

/// Dot product with four independent accumulators (breaks the add-latency
/// chain so the loop pipelines; folded in a fixed order for determinism).
#[inline]
fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n4 = x.len() / 4 * 4;
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < x.len() {
        tail += x[i] * y[i];
        i += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Sum of Euclidean distances over all row pairs of two flat row-major
/// matrices of **unit-norm** rows, via `‖a−b‖ = √(max(2 − 2·a·b, 0))` with
/// cache-blocked tiling. Deterministic: the traversal and fold order are
/// fixed regardless of thread count (the function itself is sequential;
/// callers parallelize *across* pairs).
pub fn sum_pairwise_unit_distances(fa: &[f64], fb: &[f64], dim: usize) -> f64 {
    debug_assert!(dim > 0 && fa.len().is_multiple_of(dim) && fb.len().is_multiple_of(dim));
    let mut sum = 0.0f64;
    for tile_a in fa.chunks(BLOCK_A * dim) {
        for tile_b in fb.chunks(BLOCK_B * dim) {
            for ra in tile_a.chunks_exact(dim) {
                for rb in tile_b.chunks_exact(dim) {
                    sum += (2.0 - 2.0 * dot(ra, rb)).max(0.0).sqrt();
                }
            }
        }
    }
    sum
}

/// The naive subtract-square-accumulate kernel the reference scorer uses;
/// exposed so benchmarks can compare the kernels head-to-head.
pub fn sum_pairwise_distances_naive(fa: &[f64], fb: &[f64], dim: usize) -> f64 {
    debug_assert!(dim > 0 && fa.len().is_multiple_of(dim) && fb.len().is_multiple_of(dim));
    let mut sum = 0.0f64;
    for ra in fa.chunks_exact(dim) {
        for rb in fb.chunks_exact(dim) {
            let mut acc = 0.0;
            for (x, y) in ra.iter().zip(rb) {
                let d = x - y;
                acc += d * d;
            }
            sum += acc.sqrt();
        }
    }
    sum
}

/// One pair's scoring work, recorded by the serial cost-accounting walk and
/// executed by the parallel kernel pass.
enum ScoreTask {
    /// Empty BBox-pair pool → worst possible score (1.0), no arithmetic.
    Empty,
    /// Dense kernel over the two tracks' packed feature matrices.
    Dense {
        a: TrackId,
        b: TrackId,
        total: u64,
        dim: usize,
    },
}

/// Computes the **exact** normalized score `s̃_{i,j}` of every pair: the
/// mean normalized feature distance over *all* BBox pairs (Eq. 5). This is
/// the inner loop of the baseline (Algorithm 1).
///
/// Track pairs are processed in groups of the session device's batch size
/// `B` (one logical GPU round per group, §IV-F), with rounds split at
/// [`MAX_ROUND_ITEMS`] to bound memory. Pairs with an empty pool score the
/// worst possible value (1.0).
///
/// Clock charges run serially in group order (identical to the reference
/// implementation); the dot-product kernel then fans out over all pairs
/// (see the module docs).
pub fn exact_scores(
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
) -> Result<Vec<(TrackPair, f64)>> {
    let batch = session.device().batch();
    // Dense per-track feature matrices, flattened (track id → row-major
    // [n_boxes × dim]); built lazily as the pair groups need them so GPU
    // rounds stay aligned with the group (batch) structure.
    let mut dense: HashMap<TrackId, Vec<f64>> = HashMap::new();
    let mut dim = 0usize;
    let mut tasks: Vec<(TrackPair, ScoreTask)> = Vec::with_capacity(input.pairs.len());
    for group in input.pairs.chunks(batch.max(1)) {
        let resolved: Vec<PairBoxes<'_>> = group
            .iter()
            .map(|&p| PairBoxes::resolve(p, input.tracks))
            .collect::<Result<_>>()?;
        // One inference round for every box of the group not yet extracted.
        let mut missing: Vec<(TrackId, &TrackBox)> = Vec::new();
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if !dense.contains_key(&t.id) {
                    missing.extend(t.boxes.iter().map(|b| (t.id, b)));
                }
            }
        }
        session.try_ensure_features(&missing)?;
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if dense.contains_key(&t.id) {
                    continue;
                }
                let mut flat = Vec::new();
                for b in &t.boxes {
                    // Ensured above on the happy path; the fallback keeps
                    // the scorer total even if a shared cache was drained
                    // between the ensure and this read.
                    let f = match session.cached_feature(t.id, b.frame) {
                        Some(f) => f,
                        None => session.try_feature(t.id, b)?,
                    };
                    dim = f.dim();
                    flat.extend_from_slice(f.as_slice());
                }
                dense.insert(t.id, flat);
            }
        }
        for pb in &resolved {
            let total = pb.total_bbox_pairs();
            if total == 0 || dim == 0 {
                tasks.push((pb.pair, ScoreTask::Empty));
                continue;
            }
            session.charge_distance_batch(total as usize);
            tasks.push((
                pb.pair,
                ScoreTask::Dense {
                    a: pb.a.id,
                    b: pb.b.id,
                    total,
                    dim,
                },
            ));
        }
    }
    // Pure arithmetic from here on: fan the pairs out over threads and
    // collect in input order.
    Ok(tm_par::par_map(&tasks, |(pair, task)| match task {
        ScoreTask::Empty => (*pair, 1.0),
        ScoreTask::Dense { a, b, total, dim } => {
            let sum = sum_pairwise_unit_distances(&dense[a], &dense[b], *dim);
            (*pair, sum / (NORMALIZER * *total as f64))
        }
    }))
}

/// The pre-rewrite exact scorer (naive coordinate-difference kernel, fully
/// serial). Kept as ground truth for the kernel property test and the
/// `kernels` Criterion bench; production callers use [`exact_scores`].
pub fn exact_scores_reference(
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
) -> Result<Vec<(TrackPair, f64)>> {
    let batch = session.device().batch();
    let mut dense: HashMap<TrackId, Vec<f64>> = HashMap::new();
    let mut dim = 0usize;
    let mut out = Vec::with_capacity(input.pairs.len());
    for group in input.pairs.chunks(batch.max(1)) {
        let resolved: Vec<PairBoxes<'_>> = group
            .iter()
            .map(|&p| PairBoxes::resolve(p, input.tracks))
            .collect::<Result<_>>()?;
        let mut missing: Vec<(TrackId, &TrackBox)> = Vec::new();
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if !dense.contains_key(&t.id) {
                    missing.extend(t.boxes.iter().map(|b| (t.id, b)));
                }
            }
        }
        session.ensure_features(&missing);
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if dense.contains_key(&t.id) {
                    continue;
                }
                let mut flat = Vec::new();
                for b in &t.boxes {
                    let f = session
                        .cached_feature(t.id, b.frame)
                        .expect("ensured above");
                    dim = f.dim();
                    flat.extend_from_slice(f.as_slice());
                }
                dense.insert(t.id, flat);
            }
        }
        for pb in &resolved {
            let total = pb.total_bbox_pairs();
            if total == 0 || dim == 0 {
                out.push((pb.pair, 1.0));
                continue;
            }
            session.charge_distance_batch(total as usize);
            let sum = sum_pairwise_distances_naive(&dense[&pb.a.id], &dense[&pb.b.id], dim);
            out.push((pb.pair, sum / (NORMALIZER * total as f64)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId};

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn setup() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 5),
            track(2, 10, 30, 5), // same actor as 1 → polyonymous with it
            track(3, 11, 0, 5),
        ]);
        (model, tracks)
    }

    fn pairs() -> Vec<TrackPair> {
        vec![
            TrackPair::new(TrackId(1), TrackId(2)).unwrap(),
            TrackPair::new(TrackId(1), TrackId(3)).unwrap(),
            TrackPair::new(TrackId(2), TrackId(3)).unwrap(),
        ]
    }

    #[test]
    fn pair_boxes_indexing() {
        let (_, tracks) = setup();
        let pb = PairBoxes::resolve(pairs()[0], &tracks).unwrap();
        assert_eq!(pb.total_bbox_pairs(), 25);
        let ((ta, ba), (tb, bb)) = pb.bbox_pair(7); // α=1, β=2
        assert_eq!(ta, TrackId(1));
        assert_eq!(tb, TrackId(2));
        assert_eq!(ba.frame, FrameIdx(1));
        assert_eq!(bb.frame, FrameIdx(32));
    }

    #[test]
    fn spatial_distance_orders_by_time() {
        let (_, tracks) = setup();
        // Track 1 ends at frame 4 box x=20 (centre 40,140); track 2 starts
        // at frame 30 box x=0 (centre 20,140): DisS = 20.
        let pb = PairBoxes::resolve(pairs()[0], &tracks).unwrap();
        assert!((pb.spatial_distance().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn polyonymous_pair_scores_lowest() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let scores = exact_scores(&input, &mut session).unwrap();
        let get = |a: u64, b: u64| {
            scores
                .iter()
                .find(|(p, _)| *p == TrackPair::new(TrackId(a), TrackId(b)).unwrap())
                .unwrap()
                .1
        };
        assert!(get(1, 2) < get(1, 3), "same-actor pair must score lower");
        assert!(get(1, 2) < get(2, 3));
        for (_, s) in &scores {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn batched_scores_match_sequential() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
        };
        let mut cpu = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let seq = exact_scores(&input, &mut cpu).unwrap();
        let mut gpu = ReidSession::new(&model, CostModel::zero(), Device::Gpu { batch: 2 });
        let bat = exact_scores(&input, &mut gpu).unwrap();
        for ((p1, s1), (p2, s2)) in seq.iter().zip(&bat) {
            assert_eq!(p1, p2);
            assert!((s1 - s2).abs() < 1e-12, "batched result differs");
        }
    }

    #[test]
    fn exact_scores_count_every_bbox_pair() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
        };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        exact_scores(&input, &mut session).unwrap();
        // 3 pairs × 25 bbox pairs each.
        assert_eq!(session.stats().distances, 75);
        // 15 distinct boxes → 15 inferences, rest cache hits.
        assert_eq!(session.stats().inferences, 15);
    }

    #[test]
    fn dot_kernel_matches_naive_kernel_and_reference_charges() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
        };
        let mut s_new = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let new = exact_scores(&input, &mut s_new).unwrap();
        let mut s_ref = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let reference = exact_scores_reference(&input, &mut s_ref).unwrap();
        for ((p1, s1), (p2, s2)) in new.iter().zip(&reference) {
            assert_eq!(p1, p2);
            assert!((s1 - s2).abs() < 1e-9, "{p1}: {s1} vs {s2}");
        }
        // The rewrite must charge the exact same simulated cost.
        assert_eq!(s_new.elapsed_ms(), s_ref.elapsed_ms());
        assert_eq!(s_new.stats().distances, s_ref.stats().distances);
        assert_eq!(s_new.stats().inferences, s_ref.stats().inferences);
    }

    #[test]
    fn empty_tracks_score_worst_without_charges() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            Track::with_boxes(TrackId(1), classes::PEDESTRIAN, vec![]),
            track(2, 10, 0, 3),
        ]);
        let ps = vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()];
        let input = SelectionInput {
            pairs: &ps,
            tracks: &tracks,
            k: 1.0,
        };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let scores = exact_scores(&input, &mut session).unwrap();
        assert_eq!(scores, vec![(ps[0], 1.0)]);
        assert_eq!(session.stats().distances, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The dot-product kernel agrees with the naive kernel on
            /// realistic (model-generated, unit-norm) feature matrices.
            /// Frames are disjoint across tracks so no two rows are
            /// bit-identical, keeping the `√(2−2·a·b)` cancellation error
            /// far below the 1e-9 budget.
            #[test]
            fn rewrite_matches_reference(
                sizes in proptest::collection::vec(1usize..8, 2..5),
                actors in proptest::collection::vec(0u64..4, 2..5),
                threads in 1usize..5,
            ) {
                let model = AppearanceModel::new(AppearanceConfig::default());
                let n = sizes.len().min(actors.len());
                let tracks = TrackSet::from_tracks(
                    (0..n)
                        .map(|i| track(i as u64 + 1, actors[i], i as u64 * 100, sizes[i]))
                        .collect(),
                );
                let mut ps = Vec::new();
                for i in 0..n as u64 {
                    for j in (i + 1)..n as u64 {
                        ps.push(TrackPair::new(TrackId(i + 1), TrackId(j + 1)).unwrap());
                    }
                }
                let input = SelectionInput { pairs: &ps, tracks: &tracks, k: 1.0 };
                std::env::set_var(tm_par::THREADS_ENV, threads.to_string());
                let mut s_new = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
                let new = exact_scores(&input, &mut s_new).unwrap();
                std::env::remove_var(tm_par::THREADS_ENV);
                let mut s_ref = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
                let reference = exact_scores_reference(&input, &mut s_ref).unwrap();
                prop_assert_eq!(new.len(), reference.len());
                for ((p1, s1), (p2, s2)) in new.iter().zip(&reference) {
                    prop_assert_eq!(p1, p2);
                    prop_assert!((s1 - s2).abs() < 1e-9, "{}: {} vs {}", p1, s1, s2);
                }
            }
        }
    }
}
