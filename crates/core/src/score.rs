//! Track-pair scores (Definition 3.1) and exact score evaluation.

use crate::sampling::split_flat_index;
use std::collections::HashMap;
use crate::selector::SelectionInput;
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, Track, TrackBox, TrackId, TrackPair, TrackSet};

/// Maximum BBox pairs evaluated per batch round. One logical GPU round per
/// `batch` track pairs may be split into several calls at this cap to bound
/// memory; the extra per-call overhead charged is negligible relative to
/// the items (see `tm_reid::CostModel`).
pub const MAX_ROUND_ITEMS: usize = 65_536;

/// A resolved track pair: both tracks with their box sequences.
#[derive(Debug, Clone, Copy)]
pub struct PairBoxes<'a> {
    /// The pair.
    pub pair: TrackPair,
    /// The track with the smaller id.
    pub a: &'a Track,
    /// The track with the larger id.
    pub b: &'a Track,
}

impl<'a> PairBoxes<'a> {
    /// Looks both tracks up.
    pub fn resolve(pair: TrackPair, tracks: &'a TrackSet) -> Result<Self> {
        Ok(Self {
            pair,
            a: tracks.require(pair.lo())?,
            b: tracks.require(pair.hi())?,
        })
    }

    /// `|t_i| · |t_j|` — the size of the BBox-pair pool.
    pub fn total_bbox_pairs(&self) -> u64 {
        self.a.len() as u64 * self.b.len() as u64
    }

    /// The BBox pair at a flat index in `0..total_bbox_pairs()`.
    pub fn bbox_pair(&self, flat: u64) -> ((TrackId, &'a TrackBox), (TrackId, &'a TrackBox)) {
        let (alpha, beta) = split_flat_index(flat, self.b.len());
        (
            (self.a.id, &self.a.boxes[alpha]),
            (self.b.id, &self.b.boxes[beta]),
        )
    }

    /// The spatial distance `DisS` (§IV-C): Euclidean distance between the
    /// centre of the chronologically earlier track's *last* box and the
    /// later track's *first* box. `None` when either track is empty.
    pub fn spatial_distance(&self) -> Option<f64> {
        let (earlier, later) = if self.a.first_frame() <= self.b.first_frame() {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        Some(earlier.last_center()?.distance(&later.first_center()?))
    }

    /// The temporal distance `DisT` (§IV-C footnote 4): frames between the
    /// chronologically earlier track's last box and the later track's first
    /// box. The paper measured it as essentially uncorrelated with the
    /// score (Pearson < 0.1) and left it out of BetaInit; the
    /// `corr_analysis` experiment binary reproduces that measurement.
    pub fn temporal_distance(&self) -> Option<i64> {
        let (earlier, later) = if self.a.first_frame() <= self.b.first_frame() {
            (self.a, self.b)
        } else {
            (self.b, self.a)
        };
        Some(later.first_frame()?.delta(earlier.last_frame()?))
    }
}

/// Computes the **exact** normalized score `s̃_{i,j}` of every pair: the
/// mean normalized feature distance over *all* BBox pairs (Eq. 5). This is
/// the inner loop of the baseline (Algorithm 1).
///
/// Track pairs are processed in groups of the session device's batch size
/// `B` (one logical GPU round per group, §IV-F), with rounds split at
/// [`MAX_ROUND_ITEMS`] to bound memory. Pairs with an empty pool score the
/// worst possible value (1.0).
pub fn exact_scores(
    input: &SelectionInput<'_>,
    session: &mut ReidSession<'_>,
) -> Result<Vec<(TrackPair, f64)>> {
    let batch = session.device().batch();
    // Dense per-track feature matrices, flattened (track id → row-major
    // [n_boxes × dim]); built lazily as the pair groups need them so GPU
    // rounds stay aligned with the group (batch) structure.
    let mut dense: HashMap<TrackId, Vec<f64>> = HashMap::new();
    let mut dim = 0usize;
    let mut out = Vec::with_capacity(input.pairs.len());
    for group in input.pairs.chunks(batch.max(1)) {
        let resolved: Vec<PairBoxes<'_>> = group
            .iter()
            .map(|&p| PairBoxes::resolve(p, input.tracks))
            .collect::<Result<_>>()?;
        // One inference round for every box of the group not yet extracted.
        let mut missing: Vec<(TrackId, &TrackBox)> = Vec::new();
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if !dense.contains_key(&t.id) {
                    missing.extend(t.boxes.iter().map(|b| (t.id, b)));
                }
            }
        }
        session.ensure_features(&missing);
        for pb in &resolved {
            for t in [pb.a, pb.b] {
                if dense.contains_key(&t.id) {
                    continue;
                }
                let mut flat = Vec::new();
                for b in &t.boxes {
                    let f = session
                        .cached_feature(t.id, b.frame)
                        .expect("ensured above");
                    dim = f.dim();
                    flat.extend_from_slice(f.as_slice());
                }
                dense.insert(t.id, flat);
            }
        }
        // Dense O(|t_i|·|t_j|·dim) scoring loop.
        for pb in &resolved {
            let total = pb.total_bbox_pairs();
            if total == 0 || dim == 0 {
                out.push((pb.pair, 1.0));
                continue;
            }
            session.charge_distance_batch(total as usize);
            let fa = &dense[&pb.a.id];
            let fb = &dense[&pb.b.id];
            let mut sum = 0.0f64;
            for ra in fa.chunks_exact(dim) {
                for rb in fb.chunks_exact(dim) {
                    let mut acc = 0.0;
                    for (x, y) in ra.iter().zip(rb) {
                        let d = x - y;
                        acc += d * d;
                    }
                    sum += acc.sqrt();
                }
            }
            out.push((pb.pair, sum / (NORMALIZER * total as f64)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId};

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn setup() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 5),
            track(2, 10, 30, 5), // same actor as 1 → polyonymous with it
            track(3, 11, 0, 5),
        ]);
        (model, tracks)
    }

    fn pairs() -> Vec<TrackPair> {
        vec![
            TrackPair::new(TrackId(1), TrackId(2)).unwrap(),
            TrackPair::new(TrackId(1), TrackId(3)).unwrap(),
            TrackPair::new(TrackId(2), TrackId(3)).unwrap(),
        ]
    }

    #[test]
    fn pair_boxes_indexing() {
        let (_, tracks) = setup();
        let pb = PairBoxes::resolve(pairs()[0], &tracks).unwrap();
        assert_eq!(pb.total_bbox_pairs(), 25);
        let ((ta, ba), (tb, bb)) = pb.bbox_pair(7); // α=1, β=2
        assert_eq!(ta, TrackId(1));
        assert_eq!(tb, TrackId(2));
        assert_eq!(ba.frame, FrameIdx(1));
        assert_eq!(bb.frame, FrameIdx(32));
    }

    #[test]
    fn spatial_distance_orders_by_time() {
        let (_, tracks) = setup();
        // Track 1 ends at frame 4 box x=20 (centre 40,140); track 2 starts
        // at frame 30 box x=0 (centre 20,140): DisS = 20.
        let pb = PairBoxes::resolve(pairs()[0], &tracks).unwrap();
        assert!((pb.spatial_distance().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn polyonymous_pair_scores_lowest() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput { pairs: &ps, tracks: &tracks, k: 1.0 };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let scores = exact_scores(&input, &mut session).unwrap();
        let get = |a: u64, b: u64| {
            scores
                .iter()
                .find(|(p, _)| *p == TrackPair::new(TrackId(a), TrackId(b)).unwrap())
                .unwrap()
                .1
        };
        assert!(get(1, 2) < get(1, 3), "same-actor pair must score lower");
        assert!(get(1, 2) < get(2, 3));
        for (_, s) in &scores {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn batched_scores_match_sequential() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput { pairs: &ps, tracks: &tracks, k: 1.0 };
        let mut cpu = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let seq = exact_scores(&input, &mut cpu).unwrap();
        let mut gpu = ReidSession::new(&model, CostModel::zero(), Device::Gpu { batch: 2 });
        let bat = exact_scores(&input, &mut gpu).unwrap();
        for ((p1, s1), (p2, s2)) in seq.iter().zip(&bat) {
            assert_eq!(p1, p2);
            assert!((s1 - s2).abs() < 1e-12, "batched result differs");
        }
    }

    #[test]
    fn exact_scores_count_every_bbox_pair() {
        let (model, tracks) = setup();
        let ps = pairs();
        let input = SelectionInput { pairs: &ps, tracks: &tracks, k: 1.0 };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        exact_scores(&input, &mut session).unwrap();
        // 3 pairs × 25 bbox pairs each.
        assert_eq!(session.stats().distances, 75);
        // 15 distinct boxes → 15 inferences, rest cache hits.
        assert_eq!(session.stats().inferences, 15);
    }
}
