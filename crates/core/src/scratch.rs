//! Reusable per-window working memory for the scoring hot path.
//!
//! [`crate::score::exact_scores`] used to rebuild, per call, a
//! `HashMap<TrackId, Vec<f64>>` of dense feature matrices plus per-group
//! `Vec`s of resolved pairs and missing boxes — allocation churn on every
//! window of a streaming run. This module provides the two building blocks
//! that eliminate it:
//!
//! * [`Arena`] — a bump allocator for the short-lived, **borrow-carrying**
//!   per-group buffers (resolved [`crate::score::PairBoxes`], missing
//!   `(TrackId, &TrackBox)` lists). Those types borrow the window's
//!   `TrackSet`, so they cannot live in a reusable `Vec` field without
//!   infecting the owner with the window lifetime; a bump region handed out
//!   per call sidesteps that. `reset` rewinds the cursor but keeps the
//!   chunks, so steady-state windows allocate nothing.
//! * [`DenseStore`] — the flat feature-matrix pool replacing the per-call
//!   `HashMap<TrackId, Vec<f64>>`: one contiguous `Vec<f64>` for all rows
//!   plus a reusable index, cleared (capacity kept) between windows.
//!
//! The `tm-bench` allocation audit (`tests/alloc_audit.rs`) installs a
//! counting global allocator and pins the zero-allocation steady state.

use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::mem::{align_of, size_of};
use std::ptr::NonNull;
use tm_types::TrackId;

/// Words (u64) in the first chunk an arena allocates: 8 KiB.
const MIN_CHUNK_WORDS: usize = 1024;

/// One raw chunk. Kept as raw parts — never materialized as a slice
/// reference — so handed-out `&mut [T]` loans are the only references into
/// the storage (no aliasing with the arena's own bookkeeping).
struct Chunk {
    ptr: NonNull<u64>,
    words: usize,
}

impl Chunk {
    fn with_words(words: usize) -> Self {
        let mut v: Vec<u64> = Vec::with_capacity(words);
        let ptr = NonNull::new(v.as_mut_ptr()).expect("Vec allocation is non-null");
        let words = v.capacity();
        std::mem::forget(v);
        Chunk { ptr, words }
    }
}

/// A bump allocator with 8-byte alignment, tuned for per-window scratch:
/// allocate regions during a window, [`Arena::reset`] between windows
/// (keeps the chunks), drop frees everything.
///
/// Only `Copy` element types are accepted — the arena never runs
/// destructors, so a non-`Copy` type could leak owned resources. Loans
/// returned by the `alloc_*` methods borrow the arena shared-ly, so several
/// can coexist; `reset` takes `&mut self`, which ends them all first.
pub struct Arena {
    chunks: UnsafeCell<Vec<Chunk>>,
    /// Index of the chunk currently being bumped.
    cur: Cell<usize>,
    /// Words already used in the current chunk.
    used: Cell<usize>,
}

// SAFETY: the arena owns its chunks exclusively; sending the whole arena to
// another thread moves the raw storage with it. It is *not* Sync (Cell /
// UnsafeCell), which is what actually guards the bookkeeping.
unsafe impl Send for Arena {}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // SAFETY: shared read of the chunk list; no loans are dereferenced.
        let chunks = unsafe { &*self.chunks.get() };
        f.debug_struct("Arena")
            .field("chunks", &chunks.len())
            .field(
                "capacity_words",
                &chunks.iter().map(|c| c.words).sum::<usize>(),
            )
            .finish()
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for c in self.chunks.get_mut().drain(..) {
            // SAFETY: ptr/words came from a forgotten Vec with this exact
            // capacity; length 0 skips (nonexistent) element drops.
            drop(unsafe { Vec::from_raw_parts(c.ptr.as_ptr(), 0, c.words) });
        }
    }
}

impl Arena {
    /// An empty arena; chunks are allocated on first use and then reused.
    pub fn new() -> Self {
        Self {
            chunks: UnsafeCell::new(Vec::new()),
            cur: Cell::new(0),
            used: Cell::new(0),
        }
    }

    /// Rewinds the bump cursor to the start, keeping every chunk. All loans
    /// are statically over (`&mut self`), so the regions may be reissued.
    pub fn reset(&mut self) {
        self.cur.set(0);
        self.used.set(0);
    }

    /// Total words currently reserved across chunks (for tests/telemetry).
    pub fn capacity_words(&self) -> usize {
        // SAFETY: shared read of the chunk list.
        unsafe { &*self.chunks.get() }.iter().map(|c| c.words).sum()
    }

    /// Bumps off `words` u64-aligned words, growing with doubled chunks
    /// when the reserved ones are exhausted.
    fn alloc_words(&self, words: usize) -> NonNull<u64> {
        // SAFETY: the only mutable borrow of the chunk Vec; it touches the
        // `Chunk` bookkeeping structs (pointers and lengths), never the
        // pointed-to storage, so outstanding loans into chunk storage are
        // not aliased. The Vec spine may reallocate on push; chunk storage
        // never moves (each is its own heap block).
        let chunks = unsafe { &mut *self.chunks.get() };
        loop {
            if self.cur.get() < chunks.len() {
                let chunk = &chunks[self.cur.get()];
                let used = self.used.get();
                if used + words <= chunk.words {
                    self.used.set(used + words);
                    // SAFETY: `used + words <= chunk.words` keeps the
                    // offset inside (or one past) the allocation.
                    return unsafe { NonNull::new_unchecked(chunk.ptr.as_ptr().add(used)) };
                }
                // Exhausted for this request: move to the next chunk. The
                // skipped tail is wasted until the next reset — bounded by
                // one request size per chunk.
                self.cur.set(self.cur.get() + 1);
                self.used.set(0);
                continue;
            }
            let grown = chunks
                .last()
                .map(|c| c.words.saturating_mul(2))
                .unwrap_or(MIN_CHUNK_WORDS);
            chunks.push(Chunk::with_words(grown.max(words).max(MIN_CHUNK_WORDS)));
        }
    }

    fn alloc_region<T: Copy>(&self, len: usize) -> NonNull<T> {
        assert!(
            align_of::<T>() <= align_of::<u64>(),
            "arena only serves alignments up to 8"
        );
        let bytes = len
            .checked_mul(size_of::<T>())
            .expect("arena region size overflow");
        self.alloc_words(bytes.div_ceil(size_of::<u64>())).cast()
    }

    /// Allocates a `len`-element region and fills it from `iter`, which
    /// must yield **at least** `len` items (callers derive `len` from a
    /// counting pass over the same data). Extra items are not consumed.
    // Loans from `&self` are sound here: every call reserves a fresh,
    // disjoint region, and `reset` needs `&mut self`, which statically
    // ends all outstanding loans (the usual bump-arena contract).
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_from_iter_exact<T: Copy>(
        &self,
        len: usize,
        mut iter: impl Iterator<Item = T>,
    ) -> &mut [T] {
        let region = self.alloc_region::<T>(len);
        for i in 0..len {
            let v = iter
                .next()
                .expect("iterator yielded fewer items than the counted len");
            // SAFETY: i < len, inside the region just reserved.
            unsafe { region.as_ptr().add(i).write(v) };
        }
        // SAFETY: region holds exactly `len` initialized `T`s; the loan
        // borrows `self` shared-ly and regions never overlap.
        unsafe { std::slice::from_raw_parts_mut(region.as_ptr(), len) }
    }

    /// Allocates a `len`-element region filled by a fallible per-index
    /// producer. On `Err` the partially-written region is abandoned
    /// (harmless: elements are `Copy`, the space is reclaimed at reset).
    #[allow(clippy::mut_from_ref)] // same disjoint-loan contract as above
    pub fn alloc_try_fill<T: Copy, E>(
        &self,
        len: usize,
        mut produce: impl FnMut(usize) -> Result<T, E>,
    ) -> Result<&mut [T], E> {
        let region = self.alloc_region::<T>(len);
        for i in 0..len {
            // SAFETY: i < len, inside the region just reserved.
            unsafe { region.as_ptr().add(i).write(produce(i)?) };
        }
        // SAFETY: as in `alloc_from_iter_exact`.
        Ok(unsafe { std::slice::from_raw_parts_mut(region.as_ptr(), len) })
    }
}

/// A pool of dense row-major feature matrices keyed by track, backing the
/// exact scorer. All rows live in one flat `Vec<f64>`; per-track spans are
/// recorded in a reusable index. [`DenseStore::clear`] empties both while
/// keeping their capacity, so steady-state windows never reallocate.
#[derive(Debug, Default)]
pub struct DenseStore {
    data: Vec<f64>,
    index: HashMap<TrackId, (usize, usize)>,
    dim: usize,
}

impl DenseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the store, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.index.clear();
        self.dim = 0;
    }

    /// Row width of the stored matrices (0 until the first row arrives).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether `track` already has a committed matrix.
    pub fn contains(&self, track: TrackId) -> bool {
        self.index.contains_key(&track)
    }

    /// The flat row-major matrix committed for `track`.
    ///
    /// # Panics
    /// If `track` was never committed.
    pub fn rows(&self, track: TrackId) -> &[f64] {
        let &(start, len) = self
            .index
            .get(&track)
            .expect("track matrix was committed before use");
        &self.data[start..start + len]
    }

    /// Starts a track's matrix; returns the start cursor to pass to
    /// [`DenseStore::commit_track`].
    pub fn start_track(&self) -> usize {
        self.data.len()
    }

    /// Appends one feature row (also records the row width).
    pub fn push_row(&mut self, row: &[f64]) {
        self.dim = row.len();
        self.data.extend_from_slice(row);
    }

    /// Commits the rows appended since `start` as `track`'s matrix.
    pub fn commit_track(&mut self, track: TrackId, start: usize) {
        self.index.insert(track, (start, self.data.len() - start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_round_trips_values() {
        let arena = Arena::new();
        let a = arena.alloc_from_iter_exact(5, (0u64..).map(|i| i * 3));
        let b = arena.alloc_from_iter_exact(3, [9.5f64, 8.5, 7.5].into_iter());
        assert_eq!(a, &[0, 3, 6, 9, 12]);
        assert_eq!(b, &[9.5, 8.5, 7.5]);
        // Loans coexist and stay independently writable.
        a[0] = 100;
        b[2] = -1.0;
        assert_eq!(a[0], 100);
        assert_eq!(b[2], -1.0);
    }

    #[test]
    fn arena_reset_reuses_chunks() {
        let mut arena = Arena::new();
        for round in 0..10 {
            let xs = arena.alloc_from_iter_exact(600, (0u64..).map(|i| i + round));
            assert_eq!(xs.len(), 600);
            arena.reset();
        }
        // 600 u64 fit in the first chunk; reset must have reused it.
        assert_eq!(arena.capacity_words(), MIN_CHUNK_WORDS);
    }

    #[test]
    fn arena_grows_past_chunk_boundaries() {
        let arena = Arena::new();
        let big = arena.alloc_from_iter_exact(10_000, 0u64..);
        assert_eq!(big.len(), 10_000);
        assert!(big.iter().enumerate().all(|(i, &v)| v == i as u64));
        let after = arena.alloc_from_iter_exact(4, 0u64..);
        assert_eq!(after, &[0, 1, 2, 3]);
    }

    #[test]
    fn arena_try_fill_propagates_errors() {
        let mut arena = Arena::new();
        let ok: Result<&mut [u32], ()> = arena.alloc_try_fill(4, |i| Ok(i as u32 * 2));
        assert_eq!(ok.unwrap(), &[0, 2, 4, 6]);
        arena.reset();
        let err: Result<&mut [u32], &str> =
            arena.alloc_try_fill(4, |i| if i == 2 { Err("boom") } else { Ok(0) });
        assert_eq!(err.unwrap_err(), "boom");
        // The arena stays usable after a failed fill.
        arena.reset();
        let again: Result<&mut [u32], ()> = arena.alloc_try_fill(2, |i| Ok(i as u32));
        assert_eq!(again.unwrap(), &[0, 1]);
    }

    #[test]
    fn arena_zero_len_regions_are_fine() {
        let arena = Arena::new();
        let empty: &mut [u64] = arena.alloc_from_iter_exact(0, std::iter::empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn dense_store_commits_and_clears() {
        let mut store = DenseStore::new();
        let start = store.start_track();
        store.push_row(&[1.0, 2.0]);
        store.push_row(&[3.0, 4.0]);
        store.commit_track(TrackId(7), start);
        assert!(store.contains(TrackId(7)));
        assert_eq!(store.dim(), 2);
        assert_eq!(store.rows(TrackId(7)), &[1.0, 2.0, 3.0, 4.0]);

        let data_cap_before = store.data.capacity();
        store.clear();
        assert!(!store.contains(TrackId(7)));
        assert_eq!(store.dim(), 0);
        assert_eq!(
            store.data.capacity(),
            data_cap_before,
            "clear keeps capacity"
        );
    }
}
