//! TMerge — Thompson-sampling candidate selection (Algorithms 2–4, §IV).
//!
//! Every track pair `p_{i,j}` carries a Beta posterior `Be(S, F)` over its
//! normalized score. Each iteration:
//!
//! 1. draws `θ_{i,j} ~ Be(S_{i,j}, F_{i,j})` for every live pair and picks
//!    the arg-min (Thompson sampling for *minimization*),
//! 2. samples one of that pair's BBox pairs **without replacement**,
//!    computes its normalized ReID distance `d̃`,
//! 3. flips a Bernoulli coin with success probability `d̃`; success
//!    (`r = 1`, evidence of dissimilarity) increments `S`, failure
//!    increments `F` — the conjugate posterior update of §IV-B,
//! 4. optionally applies the ULB Hoeffding pruning of Algorithm 4.
//!
//! The final candidates are the `⌈K·|P_c|⌉` pairs with the lowest posterior
//! means `S/(S+F)`.
//!
//! **BetaInit** (Algorithm 3) warm-starts the posterior: pairs whose track
//! end-points are spatially close (`DisS < thr_S`) get `F += 1`, lowering
//! their prior mean so they are explored first.
//!
//! **Batched variant (TMerge-B, §IV-F)**: with a GPU session of batch size
//! `B`, each round takes the `B` smallest Thompson draws and evaluates them
//! in one GPU round; the posterior/ULB updates then apply to all `B`
//! results. `τ` counts BBox-pair evaluations, so a CPU run and a `-B` run
//! with the same `τ_max` do the same amount of ReID work.

use crate::sampling::WithoutReplacement;
use crate::score::PairBoxes;
use crate::selector::{CandidateSelector, SelectionInput, SelectionResult};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Beta, Distribution};
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, TmError, TrackPair};

/// TMerge parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TMergeConfig {
    /// Maximum number of BBox-pair evaluations (`τ_max`, Algorithm 2).
    pub tau_max: u64,
    /// BetaInit spatial threshold `thr_S` in pixels; `None` disables
    /// BetaInit (every pair starts at `Be(1, 1)`), as in the Fig. 8
    /// ablation.
    pub thr_s: Option<f64>,
    /// Enable ULB pruning (Algorithm 4); disabled in the Fig. 8 ablation.
    pub use_ulb: bool,
    /// Run the ULB check every this many rounds (1 = every round, as in
    /// Algorithm 2 line 14).
    pub ulb_every: u64,
    /// RNG seed (Thompson draws, BBox sampling, Bernoulli trials).
    pub seed: u64,
    /// Record per-iteration normalized distances (regret analysis, §IV-E).
    pub record_history: bool,
    /// Rank the final candidates by the raw Bernoulli posterior mean
    /// `S/(S+F)` (Algorithm 2 line 15, literally). The default (`false`)
    /// ranks by the continuous sample mean `s̃'` that Algorithm 4 already
    /// maintains, shrunk toward the Beta prior by its pseudo-counts — the
    /// same information, without the 1-bit quantization loss; see
    /// DESIGN.md §5.
    pub rank_by_bernoulli_posterior: bool,
}

impl Default for TMergeConfig {
    /// The paper's defaults: `τ_max = 10 000`, `thr_S = 200`, ULB on.
    fn default() -> Self {
        Self {
            tau_max: 10_000,
            thr_s: Some(200.0),
            use_ulb: true,
            ulb_every: 1,
            seed: 0,
            record_history: false,
            rank_by_bernoulli_posterior: false,
        }
    }
}

/// The TMerge selector.
#[derive(Debug, Clone, Copy)]
pub struct TMerge {
    config: TMergeConfig,
}

impl TMerge {
    /// Creates the selector.
    pub fn new(config: TMergeConfig) -> Self {
        Self { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TMergeConfig {
        &self.config
    }
}

/// Per-pair bandit state.
struct Arm<'a> {
    boxes: PairBoxes<'a>,
    sampler: WithoutReplacement,
    /// Beta shape parameters.
    s: f64,
    f: f64,
    /// Prior pseudo-counts (after BetaInit), for shrinkage ranking.
    prior_s: f64,
    prior_f: f64,
    /// Rank by the raw Bernoulli posterior instead of the shrunk mean.
    rank_by_posterior: bool,
    /// Samples drawn and their normalized-distance sum (for ULB).
    n: u64,
    sum: f64,
    /// Pruned into the candidate set (provably in the top-m).
    locked_in: bool,
    /// Pruned out (provably not in the top-m).
    pruned_out: bool,
    /// Additive VoI rank bias (`1 - weight`, [`crate::voi`]); 0 without
    /// hints. Biases exploration toward high-weight arms.
    bias: f64,
    /// Deferred by a weight-0 VoI hint: never played, never a candidate.
    deferred: bool,
}

impl Arm<'_> {
    fn posterior_mean(&self) -> f64 {
        self.s / (self.s + self.f)
    }

    fn sample_mean(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// The score used for the final ranking: either the literal posterior
    /// mean, or the continuous sample mean shrunk toward the prior mean by
    /// the prior's pseudo-count weight.
    fn ranking_score(&self) -> f64 {
        if self.rank_by_posterior {
            return self.posterior_mean();
        }
        let w0 = self.prior_s + self.prior_f;
        let p0 = self.prior_s / w0;
        (p0 * w0 + self.sum) / (w0 + self.n as f64)
    }

    fn live(&self) -> bool {
        !self.deferred && !self.locked_in && !self.pruned_out && !self.sampler.is_exhausted()
    }
}

impl CandidateSelector for TMerge {
    fn name(&self) -> String {
        "TMerge".to_string()
    }

    fn obs_slug(&self) -> &'static str {
        "tmerge"
    }

    fn select(
        &self,
        input: &SelectionInput<'_>,
        session: &mut ReidSession<'_>,
    ) -> Result<SelectionResult> {
        let m = input.m();
        if m == 0 || input.pairs.is_empty() {
            return Ok(SelectionResult::default());
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // --- BetaInit (Algorithm 3). ---
        let mut arms: Vec<Arm<'_>> = Vec::with_capacity(input.pairs.len());
        for &p in input.pairs {
            let boxes = PairBoxes::resolve(p, input.tracks)?;
            let mut f = 1.0;
            if let (Some(thr), Some(dis)) = (self.config.thr_s, boxes.spatial_distance()) {
                if dis < thr {
                    f += 1.0;
                }
            }
            let sampler = WithoutReplacement::new(boxes.total_bbox_pairs());
            let (bias, deferred) = match input.voi {
                Some(h) => (h.bias(&p), h.deferred(&p)),
                None => (0.0, false),
            };
            arms.push(Arm {
                boxes,
                sampler,
                s: 1.0,
                f,
                prior_s: 1.0,
                prior_f: f,
                rank_by_posterior: self.config.rank_by_bernoulli_posterior,
                n: 0,
                sum: 0.0,
                locked_in: false,
                pruned_out: false,
                bias,
                deferred,
            });
        }

        let mut tau = 0u64;
        let mut round = 0u64;
        let mut history = Vec::new();
        let batch = session.device().batch();

        // --- Main sampling loop (Algorithm 2 lines 3–14). ---
        while tau < self.config.tau_max {
            let live: Vec<usize> = (0..arms.len()).filter(|&i| arms[i].live()).collect();
            if live.is_empty() {
                break;
            }
            round += 1;
            // Line 4–5: Thompson draws over all live arms.
            session.charge_thompson_scan(live.len());
            let budget_left = (self.config.tau_max - tau) as usize;
            let take = batch.min(live.len()).min(budget_left).max(1);
            let mut draws: Vec<(usize, f64)> = Vec::with_capacity(live.len());
            for &i in &live {
                // Shape params start at 1 and only ever increment, so the
                // constructor can only fail on NaN corruption upstream —
                // surfaced as an error instead of a panic.
                let beta = Beta::new(arms[i].s, arms[i].f).map_err(|_| {
                    TmError::invalid(
                        "beta_shape",
                        format!(
                            "Beta({}, {}) is not a valid posterior",
                            arms[i].s, arms[i].f
                        ),
                    )
                })?;
                // VoI bias (0 without hints) handicaps low-weight arms:
                // they only win a round when every high-weight arm drew
                // badly.
                draws.push((i, beta.sample(&mut rng) + arms[i].bias));
            }
            // Line 6: the arg-min draw; TMerge-B takes the B smallest.
            draws.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            draws.truncate(take);

            // Line 7: sample a BBox pair (without replacement) from each
            // chosen arm; evaluate as one (GPU) round.
            let mut chosen: Vec<usize> = Vec::with_capacity(take);
            let mut items: Vec<tm_reid::BoxPairRef<'_>> = Vec::with_capacity(take);
            for &(i, _) in &draws {
                let flat = arms[i]
                    .sampler
                    .draw(&mut rng)
                    .ok_or(TmError::Empty("live arm bbox-pair pool"))?;
                // `arms[i].boxes` borrows from `input.tracks`, which outlives
                // the arms — re-borrow through a fresh binding for the batch.
                let (a, b) = arms[i].boxes.bbox_pair(flat);
                chosen.push(i);
                items.push((a, b));
            }
            let distances = session.try_pair_distances_batch(&items)?;

            // Lines 8–13: Bernoulli trials and posterior updates.
            for (&i, d) in chosen.iter().zip(&distances) {
                let d_norm = (d / NORMALIZER).clamp(0.0, 1.0);
                let arm = &mut arms[i];
                if rng.random_bool(d_norm) {
                    arm.s += 1.0;
                } else {
                    arm.f += 1.0;
                }
                arm.n += 1;
                arm.sum += d_norm;
                tau += 1;
                if self.config.record_history {
                    history.push(d_norm);
                }
            }

            // Line 14: ULB pruning (Algorithm 4).
            if self.config.use_ulb && round.is_multiple_of(self.config.ulb_every.max(1)) {
                ulb_prune(&mut arms, tau, m);
            }
        }

        // --- Line 15: top-m by posterior mean. ---
        let candidates = rank_candidates(&arms, m);
        let obs = session.obs();
        if obs.enabled() {
            obs.counter("selector.tmerge.selections", 1);
            obs.counter("selector.tmerge.rounds", round);
            obs.counter("selector.tmerge.pulls", tau);
            let locked = arms.iter().filter(|a| a.locked_in).count() as u64;
            let pruned = arms.iter().filter(|a| a.pruned_out).count() as u64;
            obs.counter("selector.tmerge.locked_in", locked);
            obs.counter("selector.tmerge.pruned_out", pruned);
            let voi_deferred = arms.iter().filter(|a| a.deferred).count() as u64;
            if voi_deferred > 0 {
                obs.counter("selector.tmerge.voi_deferred", voi_deferred);
            }
            obs.counter("selector.tmerge.accepted", candidates.len() as u64);
            obs.counter(
                "selector.tmerge.rejected",
                (arms.len() - candidates.len()) as u64,
            );
            let mean_posterior =
                arms.iter().map(|a| a.posterior_mean()).sum::<f64>() / arms.len() as f64;
            obs.event(
                "tmerge_select",
                &[
                    ("pairs", tm_obs::Value::U64(arms.len() as u64)),
                    ("m", tm_obs::Value::U64(m as u64)),
                    ("pulls", tm_obs::Value::U64(tau)),
                    ("locked_in", tm_obs::Value::U64(locked)),
                    ("pruned_out", tm_obs::Value::U64(pruned)),
                    ("mean_posterior", tm_obs::Value::F64(mean_posterior)),
                ],
            );
        }
        let scores = arms
            .iter()
            .map(|a| (a.boxes.pair, a.ranking_score()))
            .collect();
        Ok(SelectionResult {
            candidates,
            scores,
            distance_evals: tau,
            history,
        })
    }
}

/// Candidate ranking honouring ULB verdicts: pairs proven inside the top-m
/// come first, proven-outside pairs come last; within each class the
/// posterior mean orders ascending (ties by pair for determinism).
fn rank_candidates(arms: &[Arm<'_>], m: usize) -> Vec<TrackPair> {
    let class = |a: &Arm<'_>| -> u8 {
        if a.locked_in {
            0
        } else if a.pruned_out {
            2
        } else {
            1
        }
    };
    let mut order: Vec<usize> = (0..arms.len()).filter(|&i| !arms[i].deferred).collect();
    order.sort_by(|&x, &y| {
        class(&arms[x])
            .cmp(&class(&arms[y]))
            .then(
                arms[x]
                    .ranking_score()
                    .partial_cmp(&arms[y].ranking_score())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(arms[x].boxes.pair.cmp(&arms[y].boxes.pair))
    });
    order
        .into_iter()
        .take(m)
        .map(|i| arms[i].boxes.pair)
        .collect()
}

/// Minimum iterations / per-arm samples before Hoeffding bounds are
/// trusted. `U = √(2·ln τ / n)` degenerates at τ = 1 (ln 1 = 0 makes the
/// radius zero after a single sample); the paper relies on "a chosen τ that
/// makes the probability bound large enough", which this floor encodes.
const ULB_MIN_TAU: u64 = 8;
const ULB_MIN_SAMPLES: u64 = 2;

/// Algorithm 4 (ULB): lock arms provably inside the top-m and prune arms
/// provably outside, using Hoeffding radii `U = √(2·ln τ / n)`.
fn ulb_prune(arms: &mut [Arm<'_>], tau: u64, m: usize) {
    if tau < ULB_MIN_TAU {
        return;
    }
    let log_term = 2.0 * (tau as f64).ln();
    // Bounds for every arm (pruned ones included — the counts in Algorithm
    // 4 line 6 quantify over all of P_c).
    let bounds: Vec<(f64, f64)> = arms
        .iter()
        .map(|a| {
            if a.n < ULB_MIN_SAMPLES {
                (f64::NEG_INFINITY, f64::INFINITY)
            } else {
                let u = (log_term / a.n as f64).sqrt();
                let s = a.sample_mean();
                (s - u, s + u)
            }
        })
        .collect();
    let mut lbs: Vec<f64> = bounds.iter().map(|b| b.0).collect();
    let mut ubs: Vec<f64> = bounds.iter().map(|b| b.1).collect();
    lbs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ubs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    for (i, arm) in arms.iter_mut().enumerate() {
        if arm.locked_in || arm.pruned_out || arm.n < ULB_MIN_SAMPLES {
            continue;
        }
        let (lb, ub) = bounds[i];
        // |{p' : lb' < ub}| ≤ m−1  →  provably in the top-m.
        let n_lb_below = lbs.partition_point(|&x| x < ub);
        if n_lb_below < m {
            arm.locked_in = true;
            continue;
        }
        // |{p' : ub' < lb}| ≥ m  →  provably outside the top-m.
        let n_ub_below = ubs.partition_point(|&x| x < lb);
        if n_ub_below >= m {
            arm.pruned_out = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::TrackId;
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackSet};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    /// 8 tracks, 2 polyonymous pairs: (1,2) for actor 10 — spatially close
    /// fragments — and (3,4) for actor 11.
    fn fixture() -> (AppearanceModel, TrackSet, Vec<TrackPair>) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 10, 0.0),
            track(2, 10, 40, 10, 60.0),
            track(3, 11, 0, 10, 300.0),
            track(4, 11, 40, 10, 360.0),
            track(5, 12, 0, 10, 600.0),
            track(6, 13, 0, 10, 900.0),
            track(7, 14, 10, 10, 1200.0),
            track(8, 15, 10, 10, 1500.0),
        ]);
        let ids: Vec<u64> = (1..=8).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        (model, tracks, pairs)
    }

    fn poly_pairs() -> Vec<TrackPair> {
        vec![
            TrackPair::new(TrackId(1), TrackId(2)).unwrap(),
            TrackPair::new(TrackId(3), TrackId(4)).unwrap(),
        ]
    }

    #[test]
    fn finds_polyonymous_pairs_with_a_fraction_of_the_work() {
        let (model, tracks, pairs) = fixture();
        // 28 pairs; m = 2.
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 2.0 / 28.0,
            voi: None,
        };
        assert_eq!(input.m(), 2);
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 500,
            seed: 11,
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        for p in poly_pairs() {
            assert!(r.candidates.contains(&p), "missing {p}: {:?}", r.candidates);
        }
        // Full enumeration would be 28 × 100 = 2800 distances; we used ≤500.
        assert!(r.distance_evals <= 500);
    }

    #[test]
    fn respects_tau_budget_exactly() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 123,
            use_ulb: false,
            record_history: true,
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        assert_eq!(r.distance_evals, 123);
        assert_eq!(r.history.len(), 123);
    }

    #[test]
    fn batched_variant_respects_budget_and_quality() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 2.0 / 28.0,
            voi: None,
        };
        let mut gpu = ReidSession::new(&model, CostModel::calibrated(), Device::Gpu { batch: 10 });
        let tm = TMerge::new(TMergeConfig {
            tau_max: 600,
            seed: 3,
            ..Default::default()
        });
        let r = tm.select(&input, &mut gpu).unwrap();
        assert!(r.distance_evals <= 600);
        for p in poly_pairs() {
            assert!(r.candidates.contains(&p), "missing {p}");
        }
        // And it is much cheaper than the CPU run for the same budget.
        let mut cpu = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        tm.select(&input, &mut cpu).unwrap();
        assert!(gpu.elapsed_ms() < cpu.elapsed_ms() / 3.0);
    }

    #[test]
    fn sampling_is_biased_toward_low_score_pairs() {
        // Long tracks so no pool is exhausted within the budget (with tiny
        // pools, exhaustion of the best arms forces late samples onto bad
        // pairs, which is correct without-replacement behaviour but not
        // what this test measures).
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 30, 0.0),
            track(2, 10, 40, 30, 60.0),
            track(3, 11, 0, 30, 300.0),
            track(4, 12, 0, 30, 600.0),
            track(5, 13, 0, 30, 900.0),
            track(6, 14, 0, 30, 1200.0),
        ]);
        let ids: Vec<u64> = (1..=6).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 600,
            use_ulb: false,
            record_history: true,
            seed: 5,
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        let q = r.history.len() / 4;
        let early: f64 = r.history[..q].iter().sum::<f64>() / q as f64;
        let late: f64 = r.history[r.history.len() - q..].iter().sum::<f64>() / q as f64;
        assert!(late < early, "late {late} should be below early {early}");
    }

    #[test]
    fn beta_init_lowers_prior_of_close_pairs() {
        // With an enormous thr_S every pair gets F=2; with None, F=1.
        // Verify through the prior posterior mean on a zero-budget run.
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 0,
            thr_s: Some(1e9),
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        for s in r.scores.values() {
            assert!(
                (s - 1.0 / 3.0).abs() < 1e-12,
                "prior mean should be 1/3, got {s}"
            );
        }
        let tm = TMerge::new(TMergeConfig {
            tau_max: 0,
            thr_s: None,
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        for s in r.scores.values() {
            assert!((s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn ulb_prunes_and_preserves_quality() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 2.0 / 28.0,
            voi: None,
        };
        let run = |ulb: bool| {
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            let tm = TMerge::new(TMergeConfig {
                tau_max: 2000,
                use_ulb: ulb,
                seed: 9,
                ..Default::default()
            });
            tm.select(&input, &mut session).unwrap()
        };
        let with = run(true);
        let without = run(false);
        // ULB should terminate earlier (pruning shrinks the live set until
        // sampling stops) without losing the true pairs.
        assert!(with.distance_evals <= without.distance_evals);
        for p in poly_pairs() {
            assert!(with.candidates.contains(&p), "ULB lost {p}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.2,
            voi: None,
        };
        let run = || {
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            TMerge::new(TMergeConfig {
                tau_max: 300,
                seed: 42,
                ..Default::default()
            })
            .select(&input, &mut session)
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.distance_evals, b.distance_evals);
    }

    #[test]
    fn empty_inputs_and_zero_m() {
        let (model, tracks, pairs) = fixture();
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig::default());
        let r = tm
            .select(
                &SelectionInput {
                    pairs: &[],
                    tracks: &tracks,
                    k: 0.5,
                    voi: None,
                },
                &mut session,
            )
            .unwrap();
        assert!(r.candidates.is_empty());
        let r = tm
            .select(
                &SelectionInput {
                    pairs: &pairs,
                    tracks: &tracks,
                    k: 0.0,
                    voi: None,
                },
                &mut session,
            )
            .unwrap();
        assert!(r.candidates.is_empty());
        assert_eq!(r.distance_evals, 0);
    }

    #[test]
    fn voi_deferred_pairs_are_never_played_or_selected() {
        let (model, tracks, pairs) = fixture();
        let mut hints = crate::voi::VoiHints::new();
        for &p in &pairs {
            if !poly_pairs().contains(&p) {
                hints.set(p, 0.0);
            }
        }
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: Some(&hints),
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 10_000,
            seed: 7,
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        // m = 28, but the 26 deferred pairs must not appear; the two live
        // arms can spend at most their combined bbox-pair pools.
        let mut got = r.candidates.clone();
        got.sort();
        assert_eq!(got, poly_pairs());
        assert!(
            r.distance_evals <= 200,
            "deferred arms were played: {} evals",
            r.distance_evals
        );
    }

    #[test]
    fn all_ones_hints_match_no_hints_exactly() {
        let (model, tracks, pairs) = fixture();
        let mut hints = crate::voi::VoiHints::new();
        for &p in &pairs {
            hints.set(p, 1.0);
        }
        let run = |voi: Option<&crate::voi::VoiHints>| {
            let input = SelectionInput {
                pairs: &pairs,
                tracks: &tracks,
                k: 0.2,
                voi,
            };
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            TMerge::new(TMergeConfig {
                tau_max: 400,
                seed: 21,
                ..Default::default()
            })
            .select(&input, &mut session)
            .unwrap()
        };
        let plain = run(None);
        let hinted = run(Some(&hints));
        assert_eq!(plain.candidates, hinted.candidates);
        assert_eq!(plain.distance_evals, hinted.distance_evals);
        let mut a: Vec<_> = plain.scores.iter().collect();
        let mut b: Vec<_> = hinted.scores.iter().collect();
        a.sort_by_key(|(p, _)| **p);
        b.sort_by_key(|(p, _)| **p);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_beyond_all_pools_stops_at_exhaustion() {
        let (model, tracks, _) = fixture();
        let pairs = vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()];
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let tm = TMerge::new(TMergeConfig {
            tau_max: 100_000,
            use_ulb: false,
            ..Default::default()
        });
        let r = tm.select(&input, &mut session).unwrap();
        assert_eq!(r.distance_evals, 100, "1 pair × 10×10 boxes");
    }
}
