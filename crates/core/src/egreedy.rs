//! ε-greedy selection — an extension comparison point.
//!
//! The simplest bandit heuristic: with probability ε sample a uniformly
//! random live pair, otherwise sample the pair with the lowest current
//! sample mean. Classic bandit theory (and the paper's choice of Thompson
//! sampling) predicts it wastes exploration on clearly-bad arms at a
//! constant rate; the `extension` benches let that prediction be checked
//! against TMerge and LCB on the same workloads.

use crate::sampling::WithoutReplacement;
use crate::score::PairBoxes;
use crate::selector::{top_m_by_score, CandidateSelector, SelectionInput, SelectionResult};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, TmError, TrackPair};

/// ε-greedy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EGreedyConfig {
    /// Evaluation budget (`τ_max`).
    pub tau_max: u64,
    /// Exploration probability ε ∈ [0, 1].
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EGreedyConfig {
    fn default() -> Self {
        Self {
            tau_max: 10_000,
            epsilon: 0.1,
            seed: 0,
        }
    }
}

/// The ε-greedy selector.
#[derive(Debug, Clone, Copy)]
pub struct EpsilonGreedy {
    config: EGreedyConfig,
}

impl EpsilonGreedy {
    /// Creates the selector.
    pub fn new(config: EGreedyConfig) -> Self {
        Self { config }
    }
}

struct ArmState<'a> {
    boxes: PairBoxes<'a>,
    sampler: WithoutReplacement,
    n: u64,
    sum: f64,
}

impl ArmState<'_> {
    fn mean(&self) -> f64 {
        if self.n == 0 {
            // Optimistic-for-minimization prior so unexplored arms are
            // tried before committing to a greedy choice.
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

impl CandidateSelector for EpsilonGreedy {
    fn name(&self) -> String {
        format!("eGreedy(ε={})", self.config.epsilon)
    }

    fn obs_slug(&self) -> &'static str {
        "egreedy"
    }

    fn select(
        &self,
        input: &SelectionInput<'_>,
        session: &mut ReidSession<'_>,
    ) -> Result<SelectionResult> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let eps = self.config.epsilon.clamp(0.0, 1.0);
        let mut arms: Vec<ArmState<'_>> = Vec::with_capacity(input.pairs.len());
        for &p in input.pairs {
            let boxes = PairBoxes::resolve(p, input.tracks)?;
            let sampler = WithoutReplacement::new(boxes.total_bbox_pairs());
            arms.push(ArmState {
                boxes,
                sampler,
                n: 0,
                sum: 0.0,
            });
        }

        let mut tau = 0u64;
        while tau < self.config.tau_max {
            session.charge_thompson_scan(arms.len());
            let live: Vec<usize> = (0..arms.len())
                .filter(|&i| !arms[i].sampler.is_exhausted())
                .collect();
            if live.is_empty() {
                break;
            }
            let greedy = live.iter().copied().min_by(|&a, &b| {
                arms[a]
                    .mean()
                    .partial_cmp(&arms[b].mean())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let i = if rng.random_bool(eps) {
                live[rng.random_range(0..live.len())]
            } else {
                match greedy {
                    Some(i) => i,
                    None => break, // unreachable: live is non-empty
                }
            };
            let flat = arms[i]
                .sampler
                .draw(&mut rng)
                .ok_or(TmError::Empty("live arm bbox-pair pool"))?;
            let (a, b) = arms[i].boxes.bbox_pair(flat);
            let d = session.try_pair_distance(a, b)? / NORMALIZER;
            arms[i].n += 1;
            arms[i].sum += d;
            tau += 1;
        }

        let scores: Vec<(TrackPair, f64)> = arms
            .iter()
            .map(|a| {
                // Unexplored arms rank last, not first, in the final answer.
                let s = if a.n == 0 { 1.0 } else { a.mean() };
                (a.boxes.pair, s)
            })
            .collect();
        let candidates = top_m_by_score(&scores, input.m());
        Ok(SelectionResult {
            candidates,
            scores: scores.into_iter().collect(),
            distance_evals: tau,
            history: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet, Vec<TrackPair>) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 10),
            track(2, 10, 40, 10),
            track(3, 11, 0, 10),
            track(4, 12, 0, 10),
        ]);
        let ids: Vec<u64> = (1..=4).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        (model, tracks, pairs)
    }

    #[test]
    fn finds_the_polyonymous_pair() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0 / 6.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let eg = EpsilonGreedy::new(EGreedyConfig {
            tau_max: 300,
            epsilon: 0.15,
            seed: 3,
        });
        let r = eg.select(&input, &mut session).unwrap();
        assert_eq!(
            r.candidates,
            vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()]
        );
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.5,
            voi: None,
        };
        let run = || {
            let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
            EpsilonGreedy::new(EGreedyConfig {
                tau_max: 123,
                epsilon: 0.2,
                seed: 9,
            })
            .select(&input, &mut session)
            .unwrap()
        };
        let a = run();
        assert_eq!(a.distance_evals, 123);
        assert_eq!(a.candidates, run().candidates);
    }

    #[test]
    fn epsilon_zero_is_pure_greedy_and_still_terminates() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.5,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let eg = EpsilonGreedy::new(EGreedyConfig {
            tau_max: 10_000,
            epsilon: 0.0,
            seed: 0,
        });
        let r = eg.select(&input, &mut session).unwrap();
        // 6 pairs × 100 bbox pairs: budget exceeds all pools.
        assert_eq!(r.distance_evals, 600);
    }
}
