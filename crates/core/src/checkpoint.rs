//! Checkpoint/resume for [`StreamingMerger`].
//!
//! A long-running ingester must survive being killed: `checkpoint()`
//! serializes the merger's complete state — window cursor, watermark,
//! cross-window dedup set, committed merges, degraded stash, decision log,
//! breaker state and the ReID session (simulated clock, work counters and
//! feature cache) — and `resume()` reconstructs a merger that continues at
//! the last completed window with **byte-identical** output to a run that
//! was never interrupted.
//!
//! The format is a hand-rolled little-endian word stream (magic + version,
//! `u64` words, `f64` via `to_bits`, length-prefixed collections). Floats
//! round-trip through bits, never through text, so a resumed clock is
//! bit-equal to the uninterrupted one. The union-find is not serialized:
//! it is rebuilt by re-unioning the committed merges, which is equivalent
//! for every query the merger answers. The selector and the appearance
//! model are code, not data — `resume()` takes them as arguments and the
//! caller must pass the same ones (and re-install any fault backend with
//! [`StreamingMerger::with_backend`]) for identical continuation.

use crate::resilience::{
    Breaker, DecisionMode, DegradedConfig, RobustnessConfig, RobustnessReport,
};
use crate::selector::CandidateSelector;
use crate::stream::{
    RetentionSummary, StashedWindow, StreamConfig, StreamingMerger, WindowDecision,
};
use crate::union::UnionFind;
use crate::window::Window;
use std::collections::BTreeSet;
use tm_reid::{
    AppearanceModel, BoxKey, FeatureProvenance, GateConfig, GatePolicy, GateSnapshot, GateStats,
    ReidSession, ReidStats, RetryPolicy, SessionSnapshot, TrackPlan,
};
use tm_types::{
    BBox, ClassId, FrameIdx, GtObjectId, Result, TmError, Track, TrackBox, TrackId, TrackPair,
    TrackSet,
};

/// `TMCK` in ASCII.
const MAGIC: u64 = 0x544d_434b;
/// Version 2 added the observability recorder state (counters and
/// sim-clock histograms), so a resumed ingester's metrics snapshot is
/// byte-identical to an uninterrupted run's. Version 3 added the stream
/// id, so a resumed fleet shard keeps its per-stream identity. Version 4
/// added the extraction-gate policy and runtime state (plan, counters,
/// provenance), so a resumed gated session decides and charges
/// identically to an uninterrupted one. Version 5 added the serve-layer
/// state: the shed-load flags and the retention-compaction summary, so a
/// resumed shed tenant keeps shedding (and re-verifies on un-shed) and
/// compaction totals survive the kill. Version 6 added the VoI mode word
/// (DESIGN.md §17), so a resumed stream keeps the same selection
/// semantics; the hints themselves are ephemeral query-layer state and are
/// re-attached by the caller, not checkpointed.
const VERSION: u64 = 6;

fn corrupt(reason: &str) -> TmError {
    TmError::invalid("checkpoint", reason)
}

/// Little-endian word-stream writer behind every checkpoint format in the
/// workspace (`TMCK` mergers, `TMFL` fleets, `tm-serve`'s `TMSV`
/// envelope). Floats ride as bits, never text, so clocks round-trip
/// bit-exactly.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Appends one little-endian word.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a float as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_i128(&mut self, v: i128) {
        let bits = v as u128;
        self.put_u64(bits as u64);
        self.put_u64((bits >> 64) as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a boolean as one word.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u64(v as u64);
    }

    pub(crate) fn put_pair(&mut self, p: TrackPair) {
        self.put_u64(p.lo().get());
        self.put_u64(p.hi().get());
    }

    pub(crate) fn put_pairs(&mut self, ps: &[TrackPair]) {
        self.put_u64(ps.len() as u64);
        for &p in ps {
            self.put_pair(p);
        }
    }

    fn put_window(&mut self, w: &Window) {
        self.put_u64(w.index as u64);
        self.put_u64(w.start.get());
        self.put_u64(w.end.get());
        self.put_u64(w.half_end.get());
    }

    /// Appends a length-prefixed opaque blob (a nested checkpoint in the
    /// fleet or serve envelopes).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// The accumulated byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// The matching reader: every `take_*` validates against the remaining
/// bytes, so corrupt or truncated input yields an error, never a panic or
/// an unbounded allocation.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes one little-endian word.
    pub fn take_u64(&mut self) -> Result<u64> {
        let end = self
            .pos
            .checked_add(8)
            .ok_or_else(|| corrupt("truncated"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Takes a float written by [`Writer::put_f64`], bit-exactly.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    fn take_i128(&mut self) -> Result<i128> {
        let lo = self.take_u64()? as u128;
        let hi = self.take_u64()? as u128;
        Ok((lo | (hi << 64)) as i128)
    }

    /// Takes a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let n = self.take_len()?;
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("truncated"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated"))?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("metric name is not UTF-8"))
    }

    /// Takes a boolean word (anything other than 0 or 1 is corrupt).
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("invalid boolean word")),
        }
    }

    /// Takes a collection length, validated against the remaining bytes.
    pub fn take_len(&mut self) -> Result<usize> {
        let n = self.take_u64()?;
        // Each element is at least one word; a length claiming more than
        // the remaining bytes is corrupt, not an allocation request.
        if n as usize > self.buf.len().saturating_sub(self.pos) {
            return Err(corrupt("length prefix exceeds remaining bytes"));
        }
        Ok(n as usize)
    }

    pub(crate) fn take_pair(&mut self) -> Result<TrackPair> {
        let lo = TrackId(self.take_u64()?);
        let hi = TrackId(self.take_u64()?);
        TrackPair::new(lo, hi).ok_or_else(|| corrupt("degenerate track pair"))
    }

    pub(crate) fn take_pairs(&mut self) -> Result<Vec<TrackPair>> {
        let n = self.take_len()?;
        (0..n).map(|_| self.take_pair()).collect()
    }

    fn take_window(&mut self) -> Result<Window> {
        Ok(Window {
            index: self.take_u64()? as usize,
            start: FrameIdx(self.take_u64()?),
            end: FrameIdx(self.take_u64()?),
            half_end: FrameIdx(self.take_u64()?),
        })
    }

    /// Takes a length-prefixed opaque blob written by [`Writer::put_bytes`].
    pub fn take_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.take_len()?;
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("truncated"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated"))?;
        self.pos = end;
        Ok(bytes)
    }

    /// Asserts the payload was consumed exactly (no trailing bytes).
    pub fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after checkpoint payload"))
        }
    }
}

fn put_gate_config(w: &mut Writer, cfg: &GateConfig) {
    w.put_u64(cfg.fresh_frames);
    w.put_u64(cfg.occlusion_gap);
    w.put_u64(cfg.refresh_interval);
    w.put_u64(cfg.max_reuse_age);
    w.put_f64(cfg.decay_half_life);
    w.put_f64(cfg.defer_below);
    w.put_f64(cfg.ambiguity_iou);
}

fn take_gate_config(r: &mut Reader<'_>) -> Result<GateConfig> {
    Ok(GateConfig {
        fresh_frames: r.take_u64()?,
        occlusion_gap: r.take_u64()?,
        refresh_interval: r.take_u64()?,
        max_reuse_age: r.take_u64()?,
        decay_half_life: r.take_f64()?,
        defer_below: r.take_f64()?,
        ambiguity_iou: r.take_f64()?,
    })
}

fn put_gate_stats(w: &mut Writer, s: &GateStats) {
    w.put_u64(s.extracts);
    w.put_u64(s.reuses);
    w.put_u64(s.defers);
}

fn take_gate_stats(r: &mut Reader<'_>) -> Result<GateStats> {
    Ok(GateStats {
        extracts: r.take_u64()?,
        reuses: r.take_u64()?,
        defers: r.take_u64()?,
    })
}

fn put_box_key(w: &mut Writer, k: BoxKey) {
    w.put_u64(k.track.get());
    w.put_u64(k.frame.get());
}

fn take_box_key(r: &mut Reader<'_>) -> Result<BoxKey> {
    Ok(BoxKey {
        track: TrackId(r.take_u64()?),
        frame: FrameIdx(r.take_u64()?),
    })
}

fn put_track_box(w: &mut Writer, b: &TrackBox) {
    w.put_u64(b.frame.get());
    w.put_f64(b.bbox.x);
    w.put_f64(b.bbox.y);
    w.put_f64(b.bbox.w);
    w.put_f64(b.bbox.h);
    w.put_f64(b.confidence);
    w.put_f64(b.visibility);
    match b.provenance {
        Some(g) => {
            w.put_bool(true);
            w.put_u64(g.get());
        }
        None => w.put_bool(false),
    }
}

fn take_track_box(r: &mut Reader<'_>) -> Result<TrackBox> {
    let frame = FrameIdx(r.take_u64()?);
    let bbox = BBox::new(r.take_f64()?, r.take_f64()?, r.take_f64()?, r.take_f64()?);
    let confidence = r.take_f64()?;
    let visibility = r.take_f64()?;
    let mut b = TrackBox::new(frame, bbox)
        .with_confidence(confidence)
        .with_visibility(visibility);
    if r.take_bool()? {
        b = b.with_provenance(GtObjectId(r.take_u64()?));
    }
    Ok(b)
}

fn put_gate_snapshot(w: &mut Writer, g: &GateSnapshot) {
    put_gate_config(w, &g.config);
    put_gate_stats(w, &g.stats);
    put_gate_stats(w, &g.flushed);
    w.put_u64(g.provenance.len() as u64);
    for (target, p) in &g.provenance {
        put_box_key(w, *target);
        put_box_key(w, p.donor);
        w.put_u64(p.age);
        w.put_bool(p.deferred);
    }
    w.put_u64(g.plans.len() as u64);
    for (track, plan) in &g.plans {
        w.put_u64(track.get());
        w.put_u64(plan.planned as u64);
        w.put_u64(plan.planned_through);
        w.put_u64(plan.anchors.len() as u64);
        for a in &plan.anchors {
            put_track_box(w, a);
        }
    }
}

fn take_gate_snapshot(r: &mut Reader<'_>) -> Result<GateSnapshot> {
    let config = take_gate_config(r)?;
    let stats = take_gate_stats(r)?;
    let flushed = take_gate_stats(r)?;
    let n = r.take_len()?;
    let provenance: Vec<(BoxKey, FeatureProvenance)> = (0..n)
        .map(|_| {
            let target = take_box_key(r)?;
            let donor = take_box_key(r)?;
            let age = r.take_u64()?;
            let deferred = r.take_bool()?;
            Ok((
                target,
                FeatureProvenance {
                    donor,
                    age,
                    deferred,
                },
            ))
        })
        .collect::<Result<_>>()?;
    let n = r.take_len()?;
    let plans: Vec<(TrackId, TrackPlan)> = (0..n)
        .map(|_| {
            let track = TrackId(r.take_u64()?);
            let planned = r.take_u64()? as usize;
            let planned_through = r.take_u64()?;
            let n_anchors = r.take_len()?;
            let anchors: Vec<TrackBox> = (0..n_anchors)
                .map(|_| take_track_box(r))
                .collect::<Result<_>>()?;
            Ok((
                track,
                TrackPlan {
                    planned,
                    planned_through,
                    anchors,
                },
            ))
        })
        .collect::<Result<_>>()?;
    Ok(GateSnapshot {
        config,
        stats,
        flushed,
        provenance,
        plans,
    })
}

/// Serializes a [`SessionSnapshot`] (clock, work counters, feature cache,
/// gate state) into the word stream. Shared by the `TMCK` merger
/// checkpoint and the `TMGL` global-merger checkpoint
/// ([`crate::global`]); the byte layout is pinned by both envelopes.
pub(crate) fn put_session_snapshot(w: &mut Writer, snap: &SessionSnapshot) {
    w.put_f64(snap.elapsed_ms);
    w.put_u64(snap.stats.inferences);
    w.put_u64(snap.stats.cache_hits);
    w.put_u64(snap.stats.distances);
    w.put_u64(snap.stats.gpu_rounds);
    w.put_u64(snap.stats.retries);
    w.put_u64(snap.stats.backend_faults);
    w.put_u64(snap.cache.len() as u64);
    for (key, feat) in &snap.cache {
        w.put_u64(key.track.get());
        w.put_u64(key.frame.get());
        w.put_u64(feat.len() as u64);
        for &c in feat {
            w.put_f64(c);
        }
    }
    match &snap.gate {
        Some(g) => {
            w.put_bool(true);
            put_gate_snapshot(w, g);
        }
        None => w.put_bool(false),
    }
}

/// The matching reader for [`put_session_snapshot`].
pub(crate) fn take_session_snapshot(r: &mut Reader<'_>) -> Result<SessionSnapshot> {
    let elapsed_ms = r.take_f64()?;
    let stats = ReidStats {
        inferences: r.take_u64()?,
        cache_hits: r.take_u64()?,
        distances: r.take_u64()?,
        gpu_rounds: r.take_u64()?,
        retries: r.take_u64()?,
        backend_faults: r.take_u64()?,
    };
    let n = r.take_len()?;
    let cache: Vec<(BoxKey, Vec<f64>)> = (0..n)
        .map(|_| {
            let key = BoxKey {
                track: TrackId(r.take_u64()?),
                frame: FrameIdx(r.take_u64()?),
            };
            let len = r.take_len()?;
            let feat: Vec<f64> = (0..len).map(|_| r.take_f64()).collect::<Result<_>>()?;
            Ok((key, feat))
        })
        .collect::<Result<_>>()?;
    let gate = if r.take_bool()? {
        Some(take_gate_snapshot(r)?)
    } else {
        None
    };
    Ok(SessionSnapshot {
        elapsed_ms,
        stats,
        cache,
        gate,
    })
}

impl<'m, S: CandidateSelector> StreamingMerger<'m, S> {
    /// Serializes the merger's complete state. Call between `advance`
    /// calls (the merger is always consistent at those points).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.put_u64(MAGIC);
        w.put_u64(VERSION);

        w.put_u64(self.config.window_len);
        w.put_f64(self.config.k);
        match self.config.gate.config() {
            Some(cfg) => {
                w.put_bool(true);
                put_gate_config(&mut w, cfg);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.config.voi.to_word());
        w.put_u64(self.stream_id);

        w.put_u64(self.robustness.retry.max_attempts as u64);
        w.put_f64(self.robustness.retry.base_backoff_ms);
        w.put_f64(self.robustness.retry.backoff_factor);
        w.put_f64(self.robustness.retry.max_backoff_ms);
        w.put_u64(self.robustness.breaker_threshold as u64);
        w.put_f64(self.robustness.degraded.max_spatial_px);
        w.put_u64(self.robustness.degraded.max_temporal_gap as u64);

        w.put_u64(self.next_window as u64);
        w.put_u64(self.watermark);

        w.put_u64(self.prev_ids.len() as u64);
        for id in &self.prev_ids {
            w.put_u64(id.get());
        }
        let seen: Vec<TrackPair> = self.seen.iter().copied().collect();
        w.put_pairs(&seen);
        w.put_pairs(&self.merged_ids);

        w.put_u64(self.stash.len() as u64);
        for sw in &self.stash {
            w.put_window(&sw.window);
            w.put_pairs(&sw.pairs);
            w.put_pairs(&sw.provisional);
        }

        w.put_u64(self.decisions.len() as u64);
        for d in &self.decisions {
            w.put_window(&d.window);
            w.put_u64(d.n_pairs as u64);
            w.put_pairs(&d.candidates);
            w.put_bool(d.mode == DecisionMode::Degraded);
        }

        w.put_u64(self.breaker.threshold() as u64);
        w.put_u64(self.breaker.consecutive() as u64);
        w.put_bool(self.breaker.is_open());

        w.put_u64(self.counters.degraded_windows);
        w.put_u64(self.counters.reverified_windows);
        w.put_u64(self.counters.breaker_trips);

        w.put_bool(self.shed);
        w.put_bool(self.shed_recover);
        w.put_u64(self.retention.compacted_windows);
        w.put_u64(self.retention.compacted_pairs);
        w.put_u64(self.retention.compacted_candidates);
        w.put_u64(self.retention.expired_stash_windows);
        w.put_u64(self.retention.pruned_seen_pairs);
        w.put_u64(self.retention.evicted_features);

        put_session_snapshot(&mut w, &self.session.snapshot());

        // Observability recorder state: counters and sim-clock histograms
        // (the deterministic half of the recorder; wall-clock data never
        // enters the snapshot and is not checkpointed). Empty when the
        // merger runs with a no-op or non-recording sink.
        let state = self.obs.recorder().map(|r| r.state()).unwrap_or_default();
        w.put_u64(state.counters.len() as u64);
        for (name, v) in &state.counters {
            w.put_str(name);
            w.put_u64(*v);
        }
        w.put_u64(state.sim.len() as u64);
        for (name, h) in &state.sim {
            w.put_str(name);
            w.put_u64(h.count);
            w.put_i128(h.sum_ticks);
            w.put_i128(h.min_ticks);
            w.put_i128(h.max_ticks);
        }

        w.buf
    }

    /// Reconstructs a merger from a [`StreamingMerger::checkpoint`].
    ///
    /// `model`, `session_cost`, `device` and `selector` are the code half
    /// of the state and must match the original run; a fault backend, if
    /// any, is re-installed afterwards with
    /// [`StreamingMerger::with_backend`]. Corrupt or truncated bytes yield
    /// an error, never a panic.
    pub fn resume(
        model: &'m AppearanceModel,
        session_cost: tm_reid::CostModel,
        device: tm_reid::Device,
        selector: S,
        bytes: &[u8],
    ) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.take_u64()? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if r.take_u64()? != VERSION {
            return Err(corrupt("unsupported version"));
        }

        let config = StreamConfig {
            window_len: r.take_u64()?,
            k: r.take_f64()?,
            gate: if r.take_bool()? {
                GatePolicy::On(take_gate_config(&mut r)?)
            } else {
                GatePolicy::Off
            },
            voi: crate::voi::VoiMode::from_word(r.take_u64()?)
                .ok_or_else(|| corrupt("unknown VoI mode word"))?,
        };
        let stream_id = r.take_u64()?;
        let robustness = RobustnessConfig {
            retry: RetryPolicy {
                max_attempts: r.take_u64()? as u32,
                base_backoff_ms: r.take_f64()?,
                backoff_factor: r.take_f64()?,
                max_backoff_ms: r.take_f64()?,
            },
            breaker_threshold: r.take_u64()? as u32,
            degraded: DegradedConfig {
                max_spatial_px: r.take_f64()?,
                max_temporal_gap: r.take_u64()? as i64,
            },
        };

        let next_window = r.take_u64()? as usize;
        let watermark = r.take_u64()?;

        let n = r.take_len()?;
        let prev_ids: Vec<TrackId> = (0..n)
            .map(|_| r.take_u64().map(TrackId))
            .collect::<Result<_>>()?;
        let seen: BTreeSet<TrackPair> = r.take_pairs()?.into_iter().collect();
        let merged_ids = r.take_pairs()?;

        let n = r.take_len()?;
        let stash: Vec<StashedWindow> = (0..n)
            .map(|_| {
                Ok(StashedWindow {
                    window: r.take_window()?,
                    pairs: r.take_pairs()?,
                    provisional: r.take_pairs()?,
                })
            })
            .collect::<Result<_>>()?;

        let n = r.take_len()?;
        let decisions: Vec<WindowDecision> = (0..n)
            .map(|_| {
                Ok(WindowDecision {
                    window: r.take_window()?,
                    n_pairs: r.take_u64()? as usize,
                    candidates: r.take_pairs()?,
                    mode: if r.take_bool()? {
                        DecisionMode::Degraded
                    } else {
                        DecisionMode::Normal
                    },
                })
            })
            .collect::<Result<_>>()?;

        let breaker = Breaker::restore(r.take_u64()? as u32, r.take_u64()? as u32, r.take_bool()?);

        let counters = RobustnessReport {
            degraded_windows: r.take_u64()?,
            reverified_windows: r.take_u64()?,
            breaker_trips: r.take_u64()?,
            ..RobustnessReport::default()
        };

        let shed = r.take_bool()?;
        let shed_recover = r.take_bool()?;
        let retention = RetentionSummary {
            compacted_windows: r.take_u64()?,
            compacted_pairs: r.take_u64()?,
            compacted_candidates: r.take_u64()?,
            expired_stash_windows: r.take_u64()?,
            pruned_seen_pairs: r.take_u64()?,
            evicted_features: r.take_u64()?,
        };

        let session_snap = take_session_snapshot(&mut r)?;

        let n = r.take_len()?;
        let rec_counters: Vec<(String, u64)> = (0..n)
            .map(|_| Ok((r.take_str()?, r.take_u64()?)))
            .collect::<Result<_>>()?;
        let n = r.take_len()?;
        let rec_sim: Vec<(String, tm_obs::SimHist)> = (0..n)
            .map(|_| {
                Ok((
                    r.take_str()?,
                    tm_obs::SimHist {
                        count: r.take_u64()?,
                        sum_ticks: r.take_i128()?,
                        min_ticks: r.take_i128()?,
                        max_ticks: r.take_i128()?,
                    },
                ))
            })
            .collect::<Result<_>>()?;
        r.finish()?;

        // Reinstate the recorder state into the ambient observer (if it
        // records): the resumed run's metrics continue from exactly the
        // aggregates the killed run had accumulated.
        let obs = tm_obs::current();
        if let Some(rec) = obs.recorder() {
            rec.restore(&tm_obs::RecorderState {
                counters: rec_counters,
                sim: rec_sim,
            });
        }

        let mut session = ReidSession::new(model, session_cost, device)
            .with_obs(obs.clone())
            .with_retry_policy(robustness.retry)
            .with_gate(config.gate);
        session.restore_snapshot(&session_snap);

        // The union-find is derived state: re-union the committed merges.
        let mut uf = UnionFind::new();
        for p in &merged_ids {
            uf.union(p.lo(), p.hi());
        }

        Ok(StreamingMerger {
            config,
            stream_id,
            robustness,
            selector,
            session,
            next_window,
            watermark,
            prev_ids,
            seen,
            uf,
            merged_ids,
            breaker,
            stash,
            decisions,
            counters,
            shed,
            shed_recover,
            retention,
            voi_hints: None,
            obs,
        })
    }
}

/// Serializes a full [`TrackSet`] (ids, classes, boxes with provenance)
/// into the word stream. `tm-serve` uses this to checkpoint each tenant's
/// retained per-stream feeds inside the `TMSV` envelope.
pub fn put_track_set(w: &mut Writer, tracks: &TrackSet) {
    w.put_u64(tracks.len() as u64);
    for t in tracks.iter() {
        w.put_u64(t.id.get());
        w.put_u64(t.class.get() as u64);
        w.put_u64(t.boxes.len() as u64);
        for b in &t.boxes {
            put_track_box(w, b);
        }
    }
}

/// Reads back a track set written by [`put_track_set`]. Corrupt input —
/// including a class id wider than 16 bits — is a typed error.
pub fn take_track_set(r: &mut Reader<'_>) -> Result<TrackSet> {
    let n = r.take_len()?;
    let tracks: Vec<Track> = (0..n)
        .map(|_| {
            let id = TrackId(r.take_u64()?);
            let class = ClassId(
                u16::try_from(r.take_u64()?).map_err(|_| corrupt("class id exceeds 16 bits"))?,
            );
            let n_boxes = r.take_len()?;
            let boxes: Vec<TrackBox> = (0..n_boxes)
                .map(|_| take_track_box(r))
                .collect::<Result<_>>()?;
            Ok(Track::with_boxes(id, class, boxes))
        })
        .collect::<Result<_>>()?;
    Ok(TrackSet::from_tracks(tracks))
}

/// Reads just the stream id out of a `TMCK` blob without reconstructing
/// the merger — the fleet's lenient superset-resume path uses this to name
/// the shards it skips.
pub(crate) fn peek_stream_id(bytes: &[u8]) -> Result<u64> {
    let mut r = Reader::new(bytes);
    if r.take_u64()? != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if r.take_u64()? != VERSION {
        return Err(corrupt("unsupported version"));
    }
    r.take_u64()?; // window_len
    r.take_f64()?; // k
    if r.take_bool()? {
        take_gate_config(&mut r)?;
    }
    r.take_u64()?; // voi mode
    r.take_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;
    use crate::tmerge::{TMerge, TMergeConfig};
    use tm_reid::{AppearanceConfig, CostModel, Device};
    use tm_types::{ids::classes, BBox, Track, TrackBox, TrackSet};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(tm_types::GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 30, 0.0),
            track(2, 10, 80, 30, 160.0),
            track(3, 11, 0, 40, 400.0),
            track(4, 12, 60, 40, 800.0),
            track(5, 13, 200, 40, 1200.0),
            track(6, 13, 280, 30, 1400.0),
        ]);
        (model, tracks)
    }

    fn selector() -> TMerge {
        TMerge::new(TMergeConfig {
            tau_max: 1_500,
            seed: 4,
            ..TMergeConfig::default()
        })
    }

    fn config() -> StreamConfig {
        StreamConfig {
            window_len: 200,
            k: 0.1,
            gate: GatePolicy::Off,
            voi: crate::voi::VoiMode::Off,
        }
    }

    fn gated_config() -> StreamConfig {
        StreamConfig {
            gate: GatePolicy::On(GateConfig::default()),
            ..config()
        }
    }

    #[test]
    fn checkpoint_roundtrips_mid_stream() {
        let (model, tracks) = fixture();
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            config(),
        )
        .unwrap();
        m.advance(&tracks, 250).unwrap();
        let bytes = m.checkpoint();

        let mut resumed = StreamingMerger::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            &bytes,
        )
        .unwrap();
        assert_eq!(resumed.accepted(), m.accepted());
        assert_eq!(resumed.decisions(), m.decisions());
        assert_eq!(
            resumed.elapsed_ms().to_bits(),
            m.elapsed_ms().to_bits(),
            "clock must resume bit-exactly"
        );
        assert_eq!(resumed.mapping(), m.mapping());
    }

    #[test]
    fn resume_restores_the_recorder_state() {
        use std::sync::Arc;
        let (model, tracks) = fixture();
        let run_to_end = |m: &mut StreamingMerger<'_, TMerge>| {
            m.advance(&tracks, 400).unwrap();
            m.finish(&tracks, 400).unwrap();
            m.accepted().to_vec()
        };

        // Uninterrupted run, recorded.
        let rec_full = Arc::new(tm_obs::Recorder::new());
        let full = tm_obs::scoped(tm_obs::Obs::new(rec_full.clone()), || {
            let mut m = StreamingMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                config(),
            )
            .unwrap();
            run_to_end(&mut m)
        });

        // Same run killed after the first advance…
        let rec_mid = Arc::new(tm_obs::Recorder::new());
        let bytes = tm_obs::scoped(tm_obs::Obs::new(rec_mid.clone()), || {
            let mut m = StreamingMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                config(),
            )
            .unwrap();
            m.advance(&tracks, 250).unwrap();
            m.checkpoint()
        });

        // …and resumed under a brand-new recorder: the checkpoint carries
        // the counter/histogram state across the kill.
        let rec_resumed = Arc::new(tm_obs::Recorder::new());
        let resumed = tm_obs::scoped(tm_obs::Obs::new(rec_resumed.clone()), || {
            let mut m = StreamingMerger::resume(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                &bytes,
            )
            .unwrap();
            run_to_end(&mut m)
        });

        assert_eq!(full, resumed);
        let snap = rec_full.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(
            snap,
            rec_resumed.snapshot(),
            "kill-and-resume must reproduce the metrics snapshot byte-for-byte"
        );
    }

    #[test]
    fn gated_checkpoint_resumes_bit_identically() {
        let (model, tracks) = fixture();
        let run_on = |m: &mut StreamingMerger<'_, TMerge>| {
            m.advance(&tracks, 400).unwrap();
            m.finish(&tracks, 400).unwrap();
        };

        // Uninterrupted gated run.
        let mut full = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            gated_config(),
        )
        .unwrap();
        run_on(&mut full);

        // Same gated run killed mid-stream and resumed.
        let mut killed = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            gated_config(),
        )
        .unwrap();
        killed.advance(&tracks, 250).unwrap();
        assert!(
            killed.session.gate_stats().saved_charges() > 0,
            "fixture must exercise the gate before the kill"
        );
        let bytes = killed.checkpoint();
        let mut resumed = StreamingMerger::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            &bytes,
        )
        .unwrap();
        assert_eq!(resumed.session.gate_policy(), killed.session.gate_policy());
        assert_eq!(resumed.session.snapshot(), killed.session.snapshot());
        run_on(&mut resumed);

        assert_eq!(resumed.accepted(), full.accepted());
        assert_eq!(resumed.mapping(), full.mapping());
        assert_eq!(
            resumed.elapsed_ms().to_bits(),
            full.elapsed_ms().to_bits(),
            "resumed gated clock must match the uninterrupted one bit-exactly"
        );
        assert_eq!(
            resumed.session.gate_stats(),
            full.session.gate_stats(),
            "gate decision counters must survive the kill"
        );
    }

    #[test]
    fn corrupt_bytes_are_clean_errors() {
        let (model, tracks) = fixture();
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            config(),
        )
        .unwrap();
        m.advance(&tracks, 250).unwrap();
        let bytes = m.checkpoint();

        for bad in [
            &[] as &[u8],
            &bytes[..bytes.len() / 2], // truncated
            &bytes[8..],               // magic stripped
        ] {
            let r = StreamingMerger::<TMerge>::resume(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                bad,
            );
            assert!(r.is_err(), "{} bytes must not resume", bad.len());
        }
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xff;
        assert!(StreamingMerger::<TMerge>::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            &flipped,
        )
        .is_err());
    }
}
