//! Degraded-mode merging and the circuit breaker.
//!
//! Real ingestion survives ReID outages. When the backend keeps failing
//! past the retry budget, the merging layer must not stall the stream or
//! panic — it keeps windows moving on the evidence that *never* needs the
//! model: the spatio-temporal layout of the tracks. Decisions made that way
//! are conservative and explicitly tagged [`DecisionMode::Degraded`]; when
//! the backend recovers, stashed windows are re-scored with real ReID
//! before their merges are committed for good.
//!
//! The components here are deliberately small and deterministic:
//!
//! * [`RobustnessConfig`] — retry policy, breaker threshold and the
//!   degraded gating thresholds, bundled so pipelines and streams share one
//!   knob set.
//! * [`degraded_candidates`] — the fallback selector: spatial/temporal
//!   gating plus a distance ranking, no model calls, no RNG.
//! * [`Breaker`] (crate-private) — counts consecutive window-level backend
//!   failures and trips after `breaker_threshold` of them.

use crate::score::PairBoxes;
use crate::selector::top_m_by_score;
use tm_reid::RetryPolicy;
use tm_types::{Result, TrackPair, TrackSet};

/// Gating thresholds for degraded (ReID-less) candidate selection.
///
/// A pair survives the gate only when the chronologically earlier track's
/// last box and the later track's first box are close in space **and**
/// properly ordered and close in time. Both thresholds are deliberately
/// tighter than BetaInit's `thr_S = 200` px prior: with no appearance
/// evidence to overrule a bad prior, the gate must be conservative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedConfig {
    /// Maximum endpoint distance `DisS` in pixels.
    pub max_spatial_px: f64,
    /// Maximum (strictly positive) endpoint gap `DisT` in frames.
    pub max_temporal_gap: i64,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        Self {
            max_spatial_px: 100.0,
            max_temporal_gap: 150,
        }
    }
}

/// Everything the fault-tolerant paths need to know, with defaults that
/// match production behaviour (retries on, breaker at 2 consecutive window
/// failures, conservative degraded gating).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RobustnessConfig {
    /// Retry/backoff policy installed on the ReID session.
    pub retry: RetryPolicy,
    /// Consecutive window-level backend failures before the circuit breaker
    /// opens (clamped to ≥ 1).
    pub breaker_threshold: u32,
    /// Degraded-mode gating thresholds.
    pub degraded: DegradedConfig,
}

impl RobustnessConfig {
    /// The default production configuration.
    pub fn new() -> Self {
        Self {
            retry: RetryPolicy::default(),
            breaker_threshold: 2,
            degraded: DegradedConfig::default(),
        }
    }
}

/// How a window's candidates were decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionMode {
    /// The configured selector ran with real ReID evidence.
    Normal,
    /// The ReID backend was down; candidates come from spatio-temporal
    /// gating only and are provisional until re-verified.
    Degraded,
}

/// Robustness counters for one pipeline/stream run. All zero on a
/// fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessReport {
    /// Windows decided without ReID evidence.
    pub degraded_windows: u64,
    /// Degraded windows later re-scored with real ReID.
    pub reverified_windows: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Backend attempts that were retried (mirror of
    /// [`tm_reid::ReidStats::retries`]).
    pub retries: u64,
    /// Faulted backend attempts (mirror of
    /// [`tm_reid::ReidStats::backend_faults`]).
    pub backend_faults: u64,
}

/// Selects up to `m` candidates from `pairs` using **only** spatio-temporal
/// evidence: pairs pass the [`DegradedConfig`] gate and are ranked by
/// ascending endpoint distance `DisS` (ties broken by pair order). No model
/// is consulted and nothing is charged to the simulated clock — the backend
/// is down, after all.
pub fn degraded_candidates(
    pairs: &[TrackPair],
    tracks: &TrackSet,
    m: usize,
    cfg: &DegradedConfig,
) -> Result<Vec<TrackPair>> {
    if m == 0 || pairs.is_empty() {
        return Ok(Vec::new());
    }
    let mut scored: Vec<(TrackPair, f64)> = Vec::new();
    for &p in pairs {
        let pb = PairBoxes::resolve(p, tracks)?;
        let (Some(dis_s), Some(dis_t)) = (pb.spatial_distance(), pb.temporal_distance()) else {
            continue; // an empty track carries no endpoint evidence
        };
        if dis_s <= cfg.max_spatial_px && dis_t > 0 && dis_t <= cfg.max_temporal_gap {
            scored.push((p, dis_s));
        }
    }
    Ok(top_m_by_score(&scored, m))
}

/// A window-level circuit breaker: `record_failure` after every window the
/// selector could not finish because of the backend; once `threshold`
/// consecutive windows have failed the breaker opens and callers stop
/// attempting real selection until an availability probe succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Breaker {
    threshold: u32,
    consecutive: u32,
    open: bool,
}

impl Breaker {
    pub(crate) fn new(threshold: u32) -> Self {
        Self {
            threshold: threshold.max(1),
            consecutive: 0,
            open: false,
        }
    }

    pub(crate) fn is_open(&self) -> bool {
        self.open
    }

    pub(crate) fn record_success(&mut self) {
        self.consecutive = 0;
    }

    /// Records a window-level backend failure; returns `true` when this
    /// failure tripped the breaker open.
    pub(crate) fn record_failure(&mut self) -> bool {
        self.consecutive = self.consecutive.saturating_add(1);
        if !self.open && self.consecutive >= self.threshold {
            self.open = true;
            return true;
        }
        false
    }

    pub(crate) fn close(&mut self) {
        self.open = false;
        self.consecutive = 0;
    }

    // Checkpoint accessors.
    pub(crate) fn threshold(&self) -> u32 {
        self.threshold
    }

    pub(crate) fn consecutive(&self) -> u32 {
        self.consecutive
    }

    pub(crate) fn restore(threshold: u32, consecutive: u32, open: bool) -> Self {
        Self {
            threshold: threshold.max(1),
            consecutive,
            open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, Track, TrackBox, TrackId};

    fn track(id: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 2.0, 100.0, 40.0, 80.0),
                    )
                })
                .collect(),
        )
    }

    fn pair(a: u64, b: u64) -> TrackPair {
        TrackPair::new(TrackId(a), TrackId(b)).unwrap()
    }

    #[test]
    fn gate_passes_close_sequential_fragments_only() {
        let tracks = TrackSet::from_tracks(vec![
            track(1, 0, 10, 0.0),    // ends frame 9 at x≈18
            track(2, 20, 10, 30.0),  // starts frame 20 nearby → passes
            track(3, 20, 10, 900.0), // spatially far → gated out
            track(4, 500, 10, 30.0), // temporal gap 490 → gated out
            track(5, 5, 10, 30.0),   // overlaps in time (DisT ≤ 0) → out
        ]);
        let pairs = vec![pair(1, 2), pair(1, 3), pair(1, 4), pair(1, 5)];
        let got = degraded_candidates(&pairs, &tracks, 4, &DegradedConfig::default()).unwrap();
        assert_eq!(got, vec![pair(1, 2)]);
    }

    #[test]
    fn ranking_is_by_spatial_distance_and_m_caps() {
        let tracks = TrackSet::from_tracks(vec![
            track(1, 0, 10, 0.0),
            track(2, 20, 10, 80.0), // farther
            track(3, 20, 10, 30.0), // closer
        ]);
        let pairs = vec![pair(1, 2), pair(1, 3)];
        let got = degraded_candidates(&pairs, &tracks, 2, &DegradedConfig::default()).unwrap();
        assert_eq!(got, vec![pair(1, 3), pair(1, 2)]);
        let got = degraded_candidates(&pairs, &tracks, 1, &DegradedConfig::default()).unwrap();
        assert_eq!(got, vec![pair(1, 3)]);
    }

    #[test]
    fn unknown_track_is_an_error_not_a_panic() {
        let tracks = TrackSet::from_tracks(vec![track(1, 0, 5, 0.0)]);
        let pairs = vec![pair(1, 99)];
        assert!(degraded_candidates(&pairs, &tracks, 1, &DegradedConfig::default()).is_err());
    }

    #[test]
    fn breaker_opens_after_threshold_and_resets_on_success() {
        let mut b = Breaker::new(2);
        assert!(!b.record_failure());
        assert!(!b.is_open());
        b.record_success();
        assert!(!b.record_failure());
        assert!(b.record_failure(), "second consecutive failure trips");
        assert!(b.is_open());
        assert!(!b.record_failure(), "already open: no second trip event");
        b.close();
        assert!(!b.is_open());
        assert_eq!(b.consecutive(), 0);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut b = Breaker::new(0);
        assert!(b.record_failure(), "threshold 1: first failure trips");
    }
}
