//! # tm-core
//!
//! The paper's primary contribution: identifying and merging **polyonymous
//! tracks** — fragments of one physical object's trajectory that a tracker
//! reported under several tracking IDs — with a bounded number of ReID
//! invocations.
//!
//! ## Layout
//!
//! | Paper section | Module |
//! |---|---|
//! | §II windows & pair sets (Eq. 1) | [`window`], [`pairs`] |
//! | §III scores (Def. 3.1) & baseline (Alg. 1) | [`score`], [`baseline`] |
//! | §IV-A/B TMerge (Alg. 2) | [`tmerge`] |
//! | §IV-C BetaInit (Alg. 3) | [`tmerge`] (`thr_s`) |
//! | §IV-D ULB pruning (Alg. 4) | [`tmerge`] (`use_ulb`) |
//! | §IV-F batched `-B` variants | every selector via a GPU [`tm_reid::Device`] |
//! | §V-B compared algorithms PS, LCB | [`ps`], [`lcb`] |
//! | merge application | [`union`], [`pipeline`] |
//! | §II streaming deployment | [`stream`] |
//! | fault tolerance, degraded mode, restart | [`resilience`], [`checkpoint`] |
//!
//! ## Quick start
//!
//! ```
//! use tm_core::{run_pipeline, PipelineConfig};
//! use tm_reid::{AppearanceConfig, AppearanceModel};
//! use tm_types::TrackSet;
//!
//! let model = AppearanceModel::new(AppearanceConfig::default());
//! let tracks = TrackSet::new(); // tracker output goes here
//! let report = run_pipeline(&tracks, 2000, &model, &PipelineConfig::default(), None).unwrap();
//! assert!(report.merged.is_empty());
//! ```

pub mod baseline;
pub mod checkpoint;
pub mod egreedy;
mod exec;
pub mod fleet;
pub mod global;
pub mod lcb;
pub mod pairs;
pub mod pipeline;
pub mod ps;
pub mod resilience;
pub mod sampling;
pub mod score;
pub mod scratch;
pub mod selector;
pub mod simd;
pub mod stream;
pub mod tmerge;
pub mod union;
pub mod voi;
pub mod window;

pub use baseline::Baseline;
pub use egreedy::{EGreedyConfig, EpsilonGreedy};
pub use fleet::FleetIngester;
pub use global::{
    compose_global_mapping, CameraTopology, GlobalConfig, GlobalDecision, GlobalMerger,
    TravelProfile,
};
pub use lcb::{LcbConfig, LowerConfidenceBound};
pub use pairs::{all_pairs, build_window_pairs, WindowPairs};
pub use pipeline::{
    run_pipeline, run_pipeline_parallel, run_pipeline_with_backend, run_pipeline_with_backend_voi,
    PipelineConfig, PipelineReport, SelectorKind,
};
pub use ps::{ProportionalSampling, PsConfig};
pub use resilience::{
    degraded_candidates, DecisionMode, DegradedConfig, RobustnessConfig, RobustnessReport,
};
pub use score::{
    exact_scores, exact_scores_reference, exact_scores_with, sum_pairwise_unit_distances,
    with_score_scratch, ScoreScratch,
};
pub use scratch::{Arena, DenseStore};
pub use selector::{CandidateSelector, SelectionInput, SelectionResult};
pub use stream::{RetentionSummary, StreamConfig, StreamingMerger, WindowDecision};
pub use tmerge::{TMerge, TMergeConfig};
pub use union::{merge_mapping, UnionFind};
pub use voi::{VoiHints, VoiMode};
pub use window::{windows, Window};
