//! Track-pair set construction per window — Eq. (1) of the paper.
//!
//! For window `W_c`, `T_c` is the set of tracks present in the window's
//! first `L/2` frames, and
//!
//! ```text
//! P_c = { p_{i,j} | t_i ∈ T_c, t_j ∈ T_c ∪ T_{c−1}, t_i ≠ t_j }
//! ```
//!
//! Pairs are canonical ([`TrackPair`]) and deduplicated across windows, so
//! no pair is ever examined twice ("to avoid ... visiting any track pair
//! more than once", §II).

use crate::window::{windows, Window};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tm_types::{Result, TrackId, TrackPair, TrackSet};

/// The pair set of one window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowPairs {
    /// The window these pairs belong to.
    pub window: Window,
    /// The deduplicated pair set `P_c`, in deterministic order.
    pub pairs: Vec<TrackPair>,
}

/// Tracks whose lifetime intersects the first half of `w`.
///
/// Linear scan — right for streaming callers whose track set changes
/// between windows. The batch path ([`build_window_pairs`]) uses a
/// [`tm_types::FrameIndex`] instead, answering the same query in
/// O(log n + k) per window.
pub fn tracks_in_first_half(tracks: &TrackSet, w: &Window) -> Vec<TrackId> {
    let mut ids: Vec<TrackId> = tracks
        .overlapping_range(w.start, w.half_end)
        .map(|t| t.id)
        .collect();
    ids.sort();
    ids
}

/// Builds `P_c` for every window of a video.
///
/// Only tracks of equal class are paired — a pedestrian track and a car
/// track can never be polyonymous, and the paper's per-class datasets make
/// the same assumption implicitly.
pub fn build_window_pairs(
    tracks: &TrackSet,
    n_frames: u64,
    window_len: u64,
) -> Result<Vec<WindowPairs>> {
    let ws = windows(n_frames, window_len)?;
    let idx = tracks.frame_index();
    let mut positions: Vec<u32> = Vec::new();
    let mut seen: BTreeSet<TrackPair> = BTreeSet::new();
    let mut out = Vec::with_capacity(ws.len());
    let mut prev_ids: Vec<TrackId> = Vec::new();
    for w in ws {
        idx.overlapping_positions(w.start, w.half_end, &mut positions);
        let mut cur_ids: Vec<TrackId> = positions.iter().map(|&p| idx.track(p).id).collect();
        cur_ids.sort();
        let mut pairs: Vec<TrackPair> = Vec::new();
        let mut push = |a: TrackId, b: TrackId, pairs: &mut Vec<TrackPair>| {
            let (Some(ta), Some(tb)) = (tracks.get(a), tracks.get(b)) else {
                return;
            };
            if ta.class != tb.class {
                return;
            }
            if let Some(p) = TrackPair::new(a, b) {
                if seen.insert(p) {
                    pairs.push(p);
                }
            }
        };
        // Pairs inside T_c.
        for (i, &a) in cur_ids.iter().enumerate() {
            for &b in &cur_ids[i + 1..] {
                push(a, b, &mut pairs);
            }
        }
        // Pairs across T_c × T_{c−1}.
        for &a in &cur_ids {
            for &b in &prev_ids {
                push(a, b, &mut pairs);
            }
        }
        pairs.sort();
        out.push(WindowPairs { window: w, pairs });
        prev_ids = cur_ids;
    }
    Ok(out)
}

/// Convenience: the union of all windows' pair sets (e.g. for treating an
/// entire MOT-17 video as a single processing unit, §V-A).
pub fn all_pairs(tracks: &TrackSet, n_frames: u64, window_len: u64) -> Result<Vec<TrackPair>> {
    Ok(build_window_pairs(tracks, n_frames, window_len)?
        .into_iter()
        .flat_map(|wp| wp.pairs)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, ClassId, FrameIdx, Track, TrackBox};

    fn track_span(id: u64, class: ClassId, start: u64, end: u64) -> Track {
        Track::with_boxes(
            TrackId(id),
            class,
            (start..end)
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(0.0, 0.0, 10.0, 10.0)))
                .collect(),
        )
    }

    fn ped(id: u64, start: u64, end: u64) -> Track {
        track_span(id, classes::PEDESTRIAN, start, end)
    }

    #[test]
    fn pairs_within_one_window() {
        let ts = TrackSet::from_tracks(vec![ped(1, 0, 10), ped(2, 0, 10), ped(3, 0, 10)]);
        let wp = build_window_pairs(&ts, 100, 100).unwrap();
        assert_eq!(wp.len(), 2);
        // First window holds all C(3,2) = 3 pairs.
        assert_eq!(wp[0].pairs.len(), 3);
        // Second window re-derives the same pairs → deduplicated away.
        assert!(wp[1].pairs.is_empty());
    }

    #[test]
    fn cross_window_pairs_are_formed() {
        // Track 1 lives in window 0's first half only; track 2 appears in
        // window 1's first half only. They must still be paired via
        // T_1 × T_0.
        let ts = TrackSet::from_tracks(vec![ped(1, 0, 40), ped(2, 60, 100)]);
        let wp = build_window_pairs(&ts, 200, 100).unwrap();
        // Window 0 first half = [0, 50): only track 1 → no pairs.
        assert!(wp[0].pairs.is_empty());
        // Window 1 first half = [50, 100): track 2; T_0 = {1} → pair (1,2).
        assert_eq!(
            wp[1].pairs,
            vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()]
        );
    }

    #[test]
    fn no_pair_is_visited_twice() {
        let ts = TrackSet::from_tracks(vec![ped(1, 0, 300), ped(2, 0, 300), ped(3, 100, 250)]);
        let wp = build_window_pairs(&ts, 300, 100).unwrap();
        let mut seen = BTreeSet::new();
        for w in &wp {
            for p in &w.pairs {
                assert!(seen.insert(*p), "pair {p} appears twice");
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn different_classes_are_never_paired() {
        let ts = TrackSet::from_tracks(vec![ped(1, 0, 50), track_span(2, classes::CAR, 0, 50)]);
        let wp = build_window_pairs(&ts, 100, 100).unwrap();
        assert!(wp.iter().all(|w| w.pairs.is_empty()));
    }

    #[test]
    fn all_pairs_flattens() {
        let ts = TrackSet::from_tracks(vec![ped(1, 0, 40), ped(2, 0, 40), ped(3, 160, 200)]);
        let pairs = all_pairs(&ts, 200, 100).unwrap();
        // (1,2) co-windowed; 3 is too far from both (two windows away).
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn distant_tracks_never_pair() {
        // Tracks more than a full window apart cannot be polyonymous under
        // the L ≥ 2·L_max assumption, and must not be paired.
        let ts = TrackSet::from_tracks(vec![ped(1, 0, 10), ped(2, 500, 510)]);
        let pairs = all_pairs(&ts, 600, 100).unwrap();
        assert!(pairs.is_empty());
    }

    #[test]
    fn empty_track_set() {
        let ts = TrackSet::new();
        let wp = build_window_pairs(&ts, 100, 50).unwrap();
        assert!(wp.iter().all(|w| w.pairs.is_empty()));
    }

    /// The indexed window scan must produce exactly the pair sets the
    /// direct per-window filter produces, on a crowded synthetic layout.
    #[test]
    fn indexed_pairs_match_direct_filter() {
        // 40 tracks with staggered, overlapping, duplicate and edge-case
        // spans, two classes interleaved.
        let mut tracks = Vec::new();
        for i in 0u64..40 {
            let class = if i % 3 == 0 {
                classes::CAR
            } else {
                classes::PEDESTRIAN
            };
            let start = (i * 37) % 500;
            let end = start + 1 + (i * 13) % 160;
            tracks.push(track_span(i + 1, class, start, end));
        }
        let ts = TrackSet::from_tracks(tracks);

        // Direct-filter reimplementation of Eq. (1) over the same windows.
        let ws = crate::window::windows(600, 100).unwrap();
        let mut seen: BTreeSet<TrackPair> = BTreeSet::new();
        let mut expected: Vec<Vec<TrackPair>> = Vec::new();
        let mut prev_ids: Vec<TrackId> = Vec::new();
        for w in ws {
            let cur_ids = tracks_in_first_half(&ts, &w);
            let mut pairs = Vec::new();
            let mut push = |a: TrackId, b: TrackId, pairs: &mut Vec<TrackPair>| {
                let (ta, tb) = (ts.get(a).unwrap(), ts.get(b).unwrap());
                if ta.class != tb.class {
                    return;
                }
                if let Some(p) = TrackPair::new(a, b) {
                    if seen.insert(p) {
                        pairs.push(p);
                    }
                }
            };
            for (i, &a) in cur_ids.iter().enumerate() {
                for &b in &cur_ids[i + 1..] {
                    push(a, b, &mut pairs);
                }
            }
            for &a in &cur_ids {
                for &b in &prev_ids {
                    push(a, b, &mut pairs);
                }
            }
            pairs.sort();
            expected.push(pairs);
            prev_ids = cur_ids;
        }

        let got: Vec<Vec<TrackPair>> = build_window_pairs(&ts, 600, 100)
            .unwrap()
            .into_iter()
            .map(|wp| wp.pairs)
            .collect();
        assert_eq!(got, expected);
    }
}
