//! LCB — Lower-Confidence-Bound selection (§V-B, compared algorithm 3).
//!
//! The UCB1 algorithm of the bandit literature adapted to *minimization*:
//! each iteration recomputes every pair's lower confidence bound
//! `s̃' − √(2·ln τ / n)`, samples one BBox pair from the minimizer, and
//! updates. Each iteration depends on the previous one's result, so the
//! `-B` variant can only batch the (two) feature inferences of a single
//! iteration — the reason LCB "cannot benefit much from GPU acceleration"
//! (§V-B, Fig. 6).

use crate::sampling::WithoutReplacement;
use crate::score::PairBoxes;
use crate::selector::{top_m_by_score, CandidateSelector, SelectionInput, SelectionResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tm_reid::{ReidSession, NORMALIZER};
use tm_types::{Result, TmError, TrackPair};

/// LCB parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcbConfig {
    /// Total BBox-pair evaluation budget `τ_max` (shared with TMerge's
    /// notion of iterations; the initial one-sample-per-pair pass counts).
    pub tau_max: u64,
    /// RNG seed.
    pub seed: u64,
    /// Record the per-iteration normalized distances.
    pub record_history: bool,
}

impl Default for LcbConfig {
    fn default() -> Self {
        Self {
            tau_max: 10_000,
            seed: 0,
            record_history: false,
        }
    }
}

/// The LCB selector.
#[derive(Debug, Clone, Copy)]
pub struct LowerConfidenceBound {
    config: LcbConfig,
}

impl LowerConfidenceBound {
    /// Creates the selector.
    pub fn new(config: LcbConfig) -> Self {
        Self { config }
    }
}

struct PairState<'a> {
    boxes: PairBoxes<'a>,
    sampler: WithoutReplacement,
    n: u64,
    sum: f64,
    /// Additive VoI rank bias (`1 - weight`, [`crate::voi`]); 0 without
    /// hints. Added to the LCB index so exploration favors high-weight
    /// pairs.
    bias: f64,
    /// Deferred by a weight-0 VoI hint: never played, never a candidate.
    deferred: bool,
}

impl PairState<'_> {
    fn mean(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.sum / self.n as f64
        }
    }
}

impl CandidateSelector for LowerConfidenceBound {
    fn name(&self) -> String {
        "LCB".to_string()
    }

    fn obs_slug(&self) -> &'static str {
        "lcb"
    }

    fn select(
        &self,
        input: &SelectionInput<'_>,
        session: &mut ReidSession<'_>,
    ) -> Result<SelectionResult> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut history = Vec::new();
        let mut states: Vec<PairState<'_>> = Vec::with_capacity(input.pairs.len());
        for &p in input.pairs {
            let boxes = PairBoxes::resolve(p, input.tracks)?;
            let sampler = WithoutReplacement::new(boxes.total_bbox_pairs());
            let (bias, deferred) = match input.voi {
                Some(h) => (h.bias(&p), h.deferred(&p)),
                None => (0.0, false),
            };
            states.push(PairState {
                boxes,
                sampler,
                n: 0,
                sum: 0.0,
                bias,
                deferred,
            });
        }

        let mut tau = 0u64;
        // Initialization: play every arm once (standard UCB bootstrap;
        // VoI-deferred arms are never played).
        for st in states.iter_mut() {
            if st.deferred || tau >= self.config.tau_max || st.sampler.is_exhausted() {
                continue;
            }
            let flat = st
                .sampler
                .draw(&mut rng)
                .ok_or(TmError::Empty("bbox-pair pool"))?;
            let (a, b) = st.boxes.bbox_pair(flat);
            let d = session.try_pair_distance(a, b)? / NORMALIZER;
            st.n += 1;
            st.sum += d;
            tau += 1;
            if self.config.record_history {
                history.push(d);
            }
        }

        // Main loop: one sequentially dependent evaluation per iteration.
        while tau < self.config.tau_max {
            session.charge_lcb_scan(states.len());
            let mut best: Option<(usize, f64)> = None;
            let log_term = 2.0 * (tau.max(2) as f64).ln();
            for (i, st) in states.iter().enumerate() {
                if st.deferred || st.sampler.is_exhausted() || st.n == 0 {
                    continue;
                }
                // The VoI bias (0 without hints) handicaps low-weight arms.
                let lcb = st.mean() - (log_term / st.n as f64).sqrt() + st.bias;
                if best.is_none_or(|(_, b)| lcb < b) {
                    best = Some((i, lcb));
                }
            }
            let Some((i, _)) = best else { break };
            let st = &mut states[i];
            let flat = st
                .sampler
                .draw(&mut rng)
                .ok_or(TmError::Empty("bbox-pair pool"))?;
            let (a, b) = st.boxes.bbox_pair(flat);
            let d = session.try_pair_distance(a, b)? / NORMALIZER;
            st.n += 1;
            st.sum += d;
            tau += 1;
            if self.config.record_history {
                history.push(d);
            }
        }

        let scores: Vec<(TrackPair, f64)> =
            states.iter().map(|st| (st.boxes.pair, st.mean())).collect();
        // Deferred pairs are excluded from candidacy entirely.
        let rankable: Vec<(TrackPair, f64)> = states
            .iter()
            .filter(|st| !st.deferred)
            .map(|st| (st.boxes.pair, st.mean()))
            .collect();
        let candidates = top_m_by_score(&rankable, input.m());
        let obs = session.obs();
        if obs.enabled() {
            obs.counter("selector.lcb.selections", 1);
            obs.counter("selector.lcb.pulls", tau);
            let voi_deferred = states.iter().filter(|st| st.deferred).count() as u64;
            if voi_deferred > 0 {
                obs.counter("selector.lcb.voi_deferred", voi_deferred);
            }
            obs.counter("selector.lcb.accepted", candidates.len() as u64);
            obs.counter(
                "selector.lcb.rejected",
                (scores.len() - candidates.len()) as u64,
            );
        }
        Ok(SelectionResult {
            candidates,
            scores: scores.into_iter().collect(),
            distance_evals: tau,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet, Vec<TrackPair>) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 10),
            track(2, 10, 40, 10),
            track(3, 11, 0, 10),
            track(4, 12, 0, 10),
            track(5, 13, 0, 10),
        ]);
        let ids: Vec<u64> = (1..=5).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        (model, tracks, pairs)
    }

    #[test]
    fn finds_polyonymous_pair_with_small_budget() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let lcb = LowerConfidenceBound::new(LcbConfig {
            tau_max: 120,
            seed: 4,
            record_history: false,
        });
        let r = lcb.select(&input, &mut session).unwrap();
        assert_eq!(
            r.candidates,
            vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()]
        );
    }

    #[test]
    fn respects_budget() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let lcb = LowerConfidenceBound::new(LcbConfig {
            tau_max: 37,
            seed: 0,
            record_history: true,
        });
        let r = lcb.select(&input, &mut session).unwrap();
        assert_eq!(r.distance_evals, 37);
        assert_eq!(r.history.len(), 37);
        assert_eq!(session.stats().distances, 37);
    }

    #[test]
    fn biases_sampling_toward_the_low_score_pair() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let lcb = LowerConfidenceBound::new(LcbConfig {
            tau_max: 200,
            seed: 2,
            record_history: true,
        });
        let r = lcb.select(&input, &mut session).unwrap();
        // Late samples should be dominated by low distances (the
        // polyonymous pair); compare mean of last quarter vs first quarter.
        let q = r.history.len() / 4;
        let early: f64 = r.history[..q].iter().sum::<f64>() / q as f64;
        let late: f64 = r.history[r.history.len() - q..].iter().sum::<f64>() / q as f64;
        assert!(late < early, "late {late} should be below early {early}");
    }

    #[test]
    fn exhausted_pools_stop_gracefully() {
        let (model, tracks, _) = fixture();
        let pairs = vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()];
        // Budget far beyond the pool size (100 bbox pairs).
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let lcb = LowerConfidenceBound::new(LcbConfig {
            tau_max: 10_000,
            seed: 0,
            record_history: false,
        });
        let r = lcb.select(&input, &mut session).unwrap();
        assert_eq!(r.distance_evals, 100, "must stop at pool exhaustion");
    }

    #[test]
    fn voi_deferred_pairs_are_never_played_or_selected() {
        let (model, tracks, pairs) = fixture();
        let keep = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        let mut hints = crate::voi::VoiHints::new();
        for &p in &pairs {
            if p != keep {
                hints.set(p, 0.0);
            }
        }
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: Some(&hints),
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let lcb = LowerConfidenceBound::new(LcbConfig {
            tau_max: 10_000,
            seed: 3,
            record_history: false,
        });
        let r = lcb.select(&input, &mut session).unwrap();
        assert_eq!(r.candidates, vec![keep]);
        assert_eq!(
            r.distance_evals, 100,
            "only the undeferred pair's pool may be spent"
        );
    }

    #[test]
    fn gpu_batching_barely_helps_lcb() {
        // The paper's point: LCB-B pays a round per iteration.
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let cfg = LcbConfig {
            tau_max: 150,
            seed: 1,
            record_history: false,
        };
        let mut gpu10 =
            ReidSession::new(&model, CostModel::calibrated(), Device::Gpu { batch: 10 });
        LowerConfidenceBound::new(cfg)
            .select(&input, &mut gpu10)
            .unwrap();
        let mut gpu100 =
            ReidSession::new(&model, CostModel::calibrated(), Device::Gpu { batch: 100 });
        LowerConfidenceBound::new(cfg)
            .select(&input, &mut gpu100)
            .unwrap();
        // Larger batch size changes essentially nothing.
        let ratio = gpu10.elapsed_ms() / gpu100.elapsed_ms();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
