//! Multi-stream sharded ingestion.
//!
//! A deployment rarely ingests one camera. [`FleetIngester`] drives N
//! independent [`StreamingMerger`] shards — one per video stream, each
//! with its own simulated clock, circuit breaker, degraded stash and
//! checkpoint state — fanning `advance`/`finish` calls out across threads
//! with [`tm_par::par_map_mut`].
//!
//! ## Per-stream invariance
//!
//! The fleet is an *execution* optimisation, never a *semantic* one: every
//! stream's decisions, accepted merges, mapping, robustness counters and
//! simulated clock are byte-identical to running that stream alone through
//! its own [`StreamingMerger`] (same fault plan, any `TMERGE_THREADS`, any
//! shard interleaving). This holds because shards share no mutable state —
//! each owns its session and breaker — and cross-stream coupling is
//! confined to the [`tm_reid::BatchScheduler`] lanes installed as shard
//! backends, whose replies are contractually identical to the bare
//! backend's (see `tm_reid::batch`). The differential harness
//! (`crates/bench/tests/fleet_differential.rs`) enforces this.
//!
//! ## Cost semantics
//!
//! Each shard's clock is charged only for its own boxes plus the batching
//! lane's amortized per-request overhead
//! ([`tm_reid::BatchConfig::amortized_overhead_ms`]); fleet fan-out never
//! charges simulated time, exactly as `run_pipeline_parallel` never does.
//!
//! ## Restart
//!
//! [`FleetIngester::checkpoint`] wraps the per-shard checkpoints in a
//! versioned envelope (`TMFL`); [`FleetIngester::resume`] restores every
//! shard at its last completed window, with the same byte-identity
//! guarantee as a single resumed merger. Batching lanes are stateless
//! beyond their shared feature cache, which is derived data (features are
//! recomputable), so the caller simply constructs fresh lanes on resume.

use crate::checkpoint::{Reader, Writer};
use crate::selector::CandidateSelector;
use crate::stream::{StreamConfig, StreamingMerger, WindowDecision};
use tm_obs::Obs;
use tm_reid::{AppearanceModel, CostModel, Device, InferenceBackend};
use tm_types::{Result, TmError, TrackSet};

/// `TMFL` in ASCII.
const FLEET_MAGIC: u64 = 0x544d_464c;
/// Version 1: magic, version, shard count, then one length-prefixed
/// [`StreamingMerger::checkpoint`] blob per shard, in stream order.
const FLEET_VERSION: u64 = 1;

fn invalid(reason: &str) -> TmError {
    TmError::invalid("fleet", reason)
}

/// N per-stream [`StreamingMerger`] shards advanced concurrently.
///
/// Stream `i` is shard `i` is feed `i`: the order of `backends` at
/// construction fixes the stream identity for the fleet's whole life,
/// including across [`FleetIngester::resume`].
pub struct FleetIngester<'m, S> {
    shards: Vec<StreamingMerger<'m, S>>,
    /// Fleet-level observability (per-shard lifecycle events ride each
    /// shard's own observer, reinstalled inside the fan-out workers).
    obs: Obs,
}

impl<'m, S: CandidateSelector + Send> FleetIngester<'m, S> {
    /// Creates one shard per backend. `make_selector(i)` builds stream
    /// `i`'s selector — selectors are per-window seeded, so handing every
    /// stream an identically configured instance preserves solo-run
    /// byte-identity.
    pub fn new(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        config: StreamConfig,
        mut make_selector: impl FnMut(usize) -> S,
        backends: &[&'m dyn InferenceBackend],
    ) -> Result<Self> {
        if backends.is_empty() {
            return Err(invalid("a fleet needs at least one stream backend"));
        }
        let shards = backends
            .iter()
            .enumerate()
            .map(|(i, &backend)| {
                Ok(
                    StreamingMerger::new(model, session_cost, device, make_selector(i), config)?
                        .with_backend(backend)
                        .with_stream_id(i as u64),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shards,
            obs: tm_obs::current(),
        })
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet has no streams (never true for a constructed
    /// fleet; kept for the idiomatic `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Stream `i`'s shard, for querying decisions, mapping and counters.
    pub fn shard(&self, i: usize) -> &StreamingMerger<'m, S> {
        &self.shards[i]
    }

    /// Stream `i`'s shard, mutably (e.g. for [`StreamingMerger::mapping`]).
    pub fn shard_mut(&mut self, i: usize) -> &mut StreamingMerger<'m, S> {
        &mut self.shards[i]
    }

    /// Feeds every stream its current tracker state — `feeds[i]` is stream
    /// `i`'s `(tracks, frames_available)` — advancing all shards
    /// concurrently. Returns the newly emitted decisions per stream.
    ///
    /// # Errors
    ///
    /// `feeds` must have exactly one entry per stream. Shard errors are
    /// reported in stream order (first failing stream wins,
    /// deterministically, regardless of which worker hit it first); the
    /// failing shard is untouched, and siblings may have advanced —
    /// re-calling with a repaired feed is safe because an already-advanced
    /// shard treats an unchanged watermark as a no-op.
    pub fn advance(&mut self, feeds: &[(&TrackSet, u64)]) -> Result<Vec<Vec<WindowDecision>>> {
        self.drive(feeds, false)
    }

    /// Flushes every stream's final (possibly partial) window and makes the
    /// last recovery attempt for still-degraded windows, concurrently.
    /// `feeds[i].1` is stream `i`'s total frame count.
    pub fn finish(&mut self, feeds: &[(&TrackSet, u64)]) -> Result<Vec<Vec<WindowDecision>>> {
        self.drive(feeds, true)
    }

    fn drive(
        &mut self,
        feeds: &[(&TrackSet, u64)],
        finish: bool,
    ) -> Result<Vec<Vec<WindowDecision>>> {
        if feeds.len() != self.shards.len() {
            return Err(invalid("feed count must match stream count"));
        }
        let per_stream = tm_par::par_map_mut(&mut self.shards, |i, shard| {
            let (tracks, frames) = feeds[i];
            if finish {
                shard.finish(tracks, frames)
            } else {
                shard.advance(tracks, frames)
            }
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        if self.obs.enabled() {
            self.obs.counter("fleet.advances", 1);
            for (shard, decisions) in self.shards.iter().zip(&per_stream) {
                self.obs.counter("fleet.windows", decisions.len() as u64);
                self.obs.counter(
                    &format!("fleet.stream.{}.windows", shard.stream_id()),
                    decisions.len() as u64,
                );
            }
        }
        Ok(per_stream)
    }

    /// Serializes every shard's complete state in one envelope. Call
    /// between `advance` calls, like [`StreamingMerger::checkpoint`].
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.put_u64(FLEET_MAGIC);
        w.put_u64(FLEET_VERSION);
        w.put_u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.put_bytes(&shard.checkpoint());
        }
        w.into_bytes()
    }

    /// Reconstructs a fleet from a [`FleetIngester::checkpoint`]. The code
    /// half of the state — model, cost, device, selectors, backends — must
    /// match the original construction, in the same stream order. Corrupt
    /// or truncated bytes yield an error, never a panic.
    ///
    /// A checkpoint describing *more* streams than `backends` is a
    /// tolerated superset — the shrink-a-tenant restart case, where a
    /// stream was decommissioned between checkpoint and resume. The
    /// leading `backends.len()` shards resume; the trailing shards are
    /// skipped with a typed warning (see
    /// [`FleetIngester::resume_reporting`] to observe which). A checkpoint
    /// describing *fewer* streams than `backends` is still a hard error:
    /// inventing fresh state for a stream the caller expects to have
    /// history would silently violate the byte-identity contract.
    pub fn resume(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        make_selector: impl FnMut(usize) -> S,
        backends: &[&'m dyn InferenceBackend],
        bytes: &[u8],
    ) -> Result<Self> {
        let (fleet, _skipped) =
            Self::resume_reporting(model, session_cost, device, make_selector, backends, bytes)?;
        Ok(fleet)
    }

    /// [`FleetIngester::resume`], also returning the stream ids of any
    /// superset shards that were present in the checkpoint but skipped
    /// because no backend was supplied for them.
    pub fn resume_reporting(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        mut make_selector: impl FnMut(usize) -> S,
        backends: &[&'m dyn InferenceBackend],
        bytes: &[u8],
    ) -> Result<(Self, Vec<u64>)> {
        if backends.is_empty() {
            return Err(invalid("a fleet needs at least one stream backend"));
        }
        let mut r = Reader::new(bytes);
        if r.take_u64()? != FLEET_MAGIC {
            return Err(invalid("bad fleet magic"));
        }
        if r.take_u64()? != FLEET_VERSION {
            return Err(invalid("unsupported fleet version"));
        }
        let n = r.take_u64()? as usize;
        if n < backends.len() {
            return Err(invalid("checkpoint has fewer streams than backends"));
        }
        let mut shards = Vec::with_capacity(backends.len());
        for (i, &backend) in backends.iter().enumerate() {
            let blob = r.take_bytes()?;
            let shard =
                StreamingMerger::resume(model, session_cost, device, make_selector(i), blob)?
                    .with_backend(backend);
            if shard.stream_id() != i as u64 {
                return Err(invalid("shard checkpoint carries the wrong stream id"));
            }
            shards.push(shard);
        }
        let mut skipped = Vec::with_capacity(n - backends.len());
        for _ in backends.len()..n {
            let blob = r.take_bytes()?;
            skipped.push(crate::checkpoint::peek_stream_id(blob)?);
        }
        r.finish()?;
        let obs = tm_obs::current();
        // Announce the skips only after every shard restore: restoring a
        // shard replaces the ambient recorder's whole state, so anything
        // emitted earlier would be silently clobbered.
        if !skipped.is_empty() {
            obs.counter("fleet.resume.skipped_shards", skipped.len() as u64);
            for id in &skipped {
                obs.log(
                    tm_obs::Level::Warn,
                    &format!("fleet resume: skipping checkpointed stream {id} (no backend supplied; stream decommissioned?)"),
                );
            }
        }
        Ok((Self { shards, obs }, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;
    use crate::tmerge::{TMerge, TMergeConfig};
    use tm_reid::{AppearanceConfig, CostModel, Device};
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 30, 0.0),
            track(2, 10, 80, 30, 160.0),
            track(3, 11, 0, 40, 400.0),
            track(4, 12, 60, 40, 800.0),
            track(5, 13, 200, 40, 1200.0),
            track(6, 13, 280, 30, 1400.0),
        ]);
        (model, tracks)
    }

    fn selector() -> TMerge {
        TMerge::new(TMergeConfig {
            tau_max: 1_500,
            seed: 4,
            ..TMergeConfig::default()
        })
    }

    fn config() -> StreamConfig {
        StreamConfig {
            window_len: 200,
            k: 0.1,
            gate: tm_reid::GatePolicy::Off,
            voi: crate::voi::VoiMode::Off,
        }
    }

    /// Stream `i`'s feed: the shared fixture plus one stream-unique track,
    /// so sibling streams are similar but not identical.
    fn stream_tracks(base: &TrackSet, i: usize) -> TrackSet {
        let mut tracks: Vec<Track> = base.iter().cloned().collect();
        tracks.push(track(
            100 + i as u64,
            50 + i as u64,
            40,
            30,
            2000.0 + i as f64 * 37.0,
        ));
        TrackSet::from_tracks(tracks)
    }

    #[test]
    fn fleet_streams_match_solo_runs() {
        let (model, base) = fixture();
        let feeds: Vec<TrackSet> = (0..3).map(|i| stream_tracks(&base, i)).collect();
        let backends: Vec<&dyn InferenceBackend> = vec![&model; 3];

        let mut fleet = FleetIngester::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            config(),
            |_| selector(),
            &backends,
        )
        .unwrap();
        for frames in [250, 400] {
            let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, frames)).collect();
            fleet.advance(&refs).unwrap();
        }
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, 400)).collect();
        fleet.finish(&refs).unwrap();

        for (i, tracks) in feeds.iter().enumerate() {
            let mut solo = StreamingMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                config(),
            )
            .unwrap()
            .with_backend(&model);
            for frames in [250, 400] {
                solo.advance(tracks, frames).unwrap();
            }
            solo.finish(tracks, 400).unwrap();

            let shard = fleet.shard_mut(i);
            assert_eq!(shard.decisions(), solo.decisions(), "stream {i} decisions");
            assert_eq!(shard.accepted(), solo.accepted(), "stream {i} merges");
            assert_eq!(shard.robustness(), solo.robustness(), "stream {i} counters");
            assert_eq!(
                shard.elapsed_ms().to_bits(),
                solo.elapsed_ms().to_bits(),
                "stream {i} clock must be bit-identical"
            );
            assert_eq!(shard.mapping(), solo.mapping(), "stream {i} mapping");
            assert_eq!(shard.stream_id(), i as u64);
        }
    }

    #[test]
    fn mismatched_feed_count_is_a_clean_error() {
        let (model, tracks) = fixture();
        let backends: Vec<&dyn InferenceBackend> = vec![&model; 2];
        let mut fleet = FleetIngester::new(
            &model,
            CostModel::zero(),
            Device::Cpu,
            config(),
            |_| selector(),
            &backends,
        )
        .unwrap();
        assert!(fleet.advance(&[(&tracks, 250)]).is_err());
        // The failed call changed nothing.
        assert_eq!(
            fleet.advance(&[(&tracks, 250), (&tracks, 250)]).unwrap()[0].len(),
            1
        );
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let (model, _) = fixture();
        assert!(FleetIngester::<TMerge>::new(
            &model,
            CostModel::zero(),
            Device::Cpu,
            config(),
            |_| selector(),
            &[],
        )
        .is_err());
    }

    #[test]
    fn fleet_checkpoint_roundtrips_mid_stream() {
        let (model, base) = fixture();
        let feeds: Vec<TrackSet> = (0..2).map(|i| stream_tracks(&base, i)).collect();
        let backends: Vec<&dyn InferenceBackend> = vec![&model; 2];
        let build = |bytes: Option<&[u8]>| {
            let make = |_| selector();
            match bytes {
                None => FleetIngester::new(
                    &model,
                    CostModel::calibrated(),
                    Device::Cpu,
                    config(),
                    make,
                    &backends,
                ),
                Some(b) => FleetIngester::resume(
                    &model,
                    CostModel::calibrated(),
                    Device::Cpu,
                    make,
                    &backends,
                    b,
                ),
            }
        };

        let mut fleet = build(None).unwrap();
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, 250)).collect();
        fleet.advance(&refs).unwrap();
        let bytes = fleet.checkpoint();

        let mut resumed = build(Some(&bytes)).unwrap();
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, 400)).collect();
        fleet.finish(&refs).unwrap();
        resumed.finish(&refs).unwrap();
        for i in 0..feeds.len() {
            assert_eq!(fleet.shard(i).decisions(), resumed.shard(i).decisions());
            assert_eq!(fleet.shard(i).accepted(), resumed.shard(i).accepted());
            assert_eq!(
                fleet.shard(i).elapsed_ms().to_bits(),
                resumed.shard(i).elapsed_ms().to_bits(),
            );
        }

        // Corruption is a clean error; so is a checkpoint with *fewer*
        // streams than backends (a fleet that grew since the kill has no
        // history to resume for the new stream). Fewer backends than
        // streams is the tolerated superset case, tested separately.
        assert!(build(Some(&bytes[..bytes.len() / 2])).is_err());
        assert!(build(Some(&[])).is_err());
        let three: Vec<&dyn InferenceBackend> = vec![&model; 3];
        assert!(FleetIngester::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            |_| selector(),
            &three,
            &bytes,
        )
        .is_err());
    }

    #[test]
    fn superset_checkpoint_resumes_surviving_prefix() {
        use std::sync::Arc;
        let (model, base) = fixture();
        let feeds: Vec<TrackSet> = (0..3).map(|i| stream_tracks(&base, i)).collect();
        let backends: Vec<&dyn InferenceBackend> = vec![&model; 3];
        let mut fleet = FleetIngester::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            config(),
            |_| selector(),
            &backends,
        )
        .unwrap();
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, 250)).collect();
        fleet.advance(&refs).unwrap();
        let bytes = fleet.checkpoint();

        // Stream 2 is decommissioned between checkpoint and resume: the
        // 3-stream envelope resumes onto 2 backends, skipping the tail
        // shard with a typed warning instead of a count-mismatch error.
        let rec = Arc::new(tm_obs::Recorder::new());
        let two: Vec<&dyn InferenceBackend> = vec![&model; 2];
        let (mut resumed, skipped) = tm_obs::scoped(tm_obs::Obs::new(rec.clone()), || {
            FleetIngester::resume_reporting(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                |_| selector(),
                &two,
                &bytes,
            )
        })
        .unwrap();
        assert_eq!(resumed.len(), 2);
        assert_eq!(skipped, vec![2]);
        assert_eq!(rec.counter_value("fleet.resume.skipped_shards"), 1);
        assert!(rec
            .logs()
            .iter()
            .any(|(l, m)| *l == tm_obs::Level::Warn && m.contains("stream 2")));

        // The surviving prefix continues byte-identically to the full fleet.
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, 400)).collect();
        fleet.finish(&refs).unwrap();
        resumed.finish(&refs[..2]).unwrap();
        for i in 0..2 {
            assert_eq!(fleet.shard(i).decisions(), resumed.shard(i).decisions());
            assert_eq!(fleet.shard(i).accepted(), resumed.shard(i).accepted());
            assert_eq!(
                fleet.shard(i).elapsed_ms().to_bits(),
                resumed.shard(i).elapsed_ms().to_bits(),
            );
        }
    }

    #[test]
    fn fleet_counters_reach_the_recorder() {
        use std::sync::Arc;
        let (model, base) = fixture();
        let feeds: Vec<TrackSet> = (0..2).map(|i| stream_tracks(&base, i)).collect();
        let rec = Arc::new(tm_obs::Recorder::new());
        let per_stream = tm_obs::scoped(tm_obs::Obs::new(rec.clone()), || {
            let backends: Vec<&dyn InferenceBackend> = vec![&model; 2];
            let mut fleet = FleetIngester::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                config(),
                |_| selector(),
                &backends,
            )
            .unwrap();
            let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, 400)).collect();
            let mut out = fleet.advance(&refs).unwrap();
            for (s, more) in out.iter_mut().zip(fleet.finish(&refs).unwrap()) {
                s.extend(more);
            }
            out
        });
        let total: u64 = per_stream.iter().map(|d| d.len() as u64).sum();
        assert!(total > 0);
        assert_eq!(rec.counter_value("fleet.advances"), 2);
        assert_eq!(rec.counter_value("fleet.windows"), total);
        for (i, d) in per_stream.iter().enumerate() {
            assert_eq!(
                rec.counter_value(&format!("fleet.stream.{i}.windows")),
                d.len() as u64
            );
        }
        // Shard lifecycle events flow into the same recorder from the
        // fan-out workers.
        assert_eq!(rec.counter_value("pipeline.windows"), total);
    }
}
