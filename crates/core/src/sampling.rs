//! Sampling BBox pairs from a track pair **without replacement** (Algorithm
//! 2, line 7).
//!
//! A track pair `(t_i, t_j)` owns `|t_i| · |t_j|` BBox pairs, addressed by a
//! flat index `k = α·|t_j| + β`. Uniform sampling without replacement uses a
//! *virtual Fisher–Yates shuffle*: instead of materializing the (possibly
//! ~10⁴-element) index range, displaced entries are kept in a small hash
//! map, giving O(1) time and O(samples) memory per draw.

use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashMap;

/// Uniform without-replacement sampler over `0..total`.
#[derive(Debug, Clone)]
pub struct WithoutReplacement {
    total: u64,
    remaining: u64,
    displaced: HashMap<u64, u64>,
}

impl WithoutReplacement {
    /// A sampler over the range `0..total`.
    pub fn new(total: u64) -> Self {
        Self {
            total,
            remaining: total,
            displaced: HashMap::new(),
        }
    }

    /// Number of indices not yet drawn.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// True once every index has been drawn.
    pub fn is_exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Total size of the range.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Draws one index uniformly among those not yet drawn.
    pub fn draw(&mut self, rng: &mut StdRng) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let slot = rng.random_range(0..self.remaining);
        let value = self.displaced.get(&slot).copied().unwrap_or(slot);
        let last = self.remaining - 1;
        // Move whatever occupies the last slot into the drawn slot.
        let last_value = self.displaced.remove(&last).unwrap_or(last);
        if slot != last {
            self.displaced.insert(slot, last_value);
        }
        self.remaining = last;
        Some(value)
    }
}

/// Converts a flat BBox-pair index back to `(α, β)` box indices given the
/// second track's box count.
pub fn split_flat_index(flat: u64, b_len: usize) -> (usize, usize) {
    debug_assert!(b_len > 0);
    (
        (flat / b_len as u64) as usize,
        (flat % b_len as u64) as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn draws_every_index_exactly_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = WithoutReplacement::new(100);
        let mut seen = BTreeSet::new();
        while let Some(v) = s.draw(&mut rng) {
            assert!(v < 100);
            assert!(seen.insert(v), "index {v} drawn twice");
        }
        assert_eq!(seen.len(), 100);
        assert!(s.is_exhausted());
        assert!(s.draw(&mut rng).is_none());
    }

    #[test]
    fn zero_total_is_immediately_exhausted() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = WithoutReplacement::new(0);
        assert!(s.is_exhausted());
        assert!(s.draw(&mut rng).is_none());
    }

    #[test]
    fn remaining_decrements() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = WithoutReplacement::new(5);
        assert_eq!(s.remaining(), 5);
        s.draw(&mut rng);
        s.draw(&mut rng);
        assert_eq!(s.remaining(), 3);
    }

    #[test]
    fn draws_are_roughly_uniform() {
        // First draw over 0..10, repeated with many seeds: every index
        // should appear a reasonable number of times.
        let mut counts = [0usize; 10];
        for seed in 0..2000 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = WithoutReplacement::new(10);
            counts[s.draw(&mut rng).unwrap() as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((120..=280).contains(&c), "index {i} drawn {c}/2000 times");
        }
    }

    #[test]
    fn split_flat_index_round_trips() {
        let b_len = 7;
        for alpha in 0..5usize {
            for beta in 0..b_len {
                let flat = (alpha * b_len + beta) as u64;
                assert_eq!(split_flat_index(flat, b_len), (alpha, beta));
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn exhaustive_and_unique(total in 0u64..200, seed in 0u64..1000) {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut s = WithoutReplacement::new(total);
                let mut seen = BTreeSet::new();
                while let Some(v) = s.draw(&mut rng) {
                    prop_assert!(v < total);
                    prop_assert!(seen.insert(v));
                }
                prop_assert_eq!(seen.len() as u64, total);
            }
        }
    }
}
