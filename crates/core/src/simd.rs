//! The dense scoring kernel with explicit SIMD dispatch.
//!
//! [`sum_pairwise_unit_distances`] is the arithmetic heart of
//! [`crate::score::exact_scores`]: the sum of Euclidean distances over all
//! row pairs of two unit-norm feature matrices, via
//! `‖a−b‖ = √(max(2 − 2·a·b, 0))` with cache-blocked tiling. This module
//! hosts both implementations:
//!
//! * [`sum_pairwise_unit_distances_scalar`] — the pinned pre-SIMD kernel
//!   (four-accumulator scalar dot, fixed fold order). It is the reference
//!   the proptests and the perf-trajectory speedup gate compare against
//!   and must never change behaviour.
//! * An AVX2+FMA path built on [`tm_types::simd::dot_avx2`], selected at
//!   runtime (see `tm_types::simd` for the dispatch & determinism
//!   contract). FMA fuses the multiply-add rounding step, so SIMD results
//!   may differ from scalar by a few ULPs; the workspace pins the paths to
//!   within `1e-9` and all determinism suites compare within one build,
//!   where the dispatch choice is fixed.
//!
//! Tiling: `BLOCK_B · dim` doubles of the B side (with an A tile) stay
//! inside L1 at the default `dim = 32`, so B rows are hot across the A rows
//! of a tile. Both paths traverse tiles in the same fixed order.

use tm_types::simd::{dot_scalar, simd_enabled};

/// Rows of the `A`-side matrix per tile of the blocked kernel.
const BLOCK_A: usize = 16;
/// Rows of the `B`-side matrix per tile.
const BLOCK_B: usize = 64;

/// Sum of Euclidean distances over all row pairs of two flat row-major
/// matrices of **unit-norm** rows. Dispatches to AVX2+FMA when the host
/// supports it (and `TMERGE_SIMD=0` doesn't veto), otherwise runs the
/// pinned scalar kernel. Deterministic per build: the traversal, fold and
/// lane-reduction orders are fixed, and the dispatch decision is constant
/// for the process lifetime.
pub fn sum_pairwise_unit_distances(fa: &[f64], fb: &[f64], dim: usize) -> f64 {
    debug_assert!(dim > 0 && fa.len().is_multiple_of(dim) && fb.len().is_multiple_of(dim));
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: simd_enabled() implies runtime-detected AVX2 and FMA.
        return unsafe { sum_pairwise_unit_distances_avx2(fa, fb, dim) };
    }
    sum_pairwise_unit_distances_scalar(fa, fb, dim)
}

/// The pinned scalar kernel (pre-SIMD `tm_core::score` implementation):
/// blocked tiling over a four-accumulator scalar dot product.
pub fn sum_pairwise_unit_distances_scalar(fa: &[f64], fb: &[f64], dim: usize) -> f64 {
    debug_assert!(dim > 0 && fa.len().is_multiple_of(dim) && fb.len().is_multiple_of(dim));
    let mut sum = 0.0f64;
    for tile_a in fa.chunks(BLOCK_A * dim) {
        for tile_b in fb.chunks(BLOCK_B * dim) {
            for ra in tile_a.chunks_exact(dim) {
                for rb in tile_b.chunks_exact(dim) {
                    sum += (2.0 - 2.0 * dot_scalar(ra, rb)).max(0.0).sqrt();
                }
            }
        }
    }
    sum
}

/// The AVX2+FMA kernel: identical tiling, vectorized dot.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn sum_pairwise_unit_distances_avx2(fa: &[f64], fb: &[f64], dim: usize) -> f64 {
    let mut sum = 0.0f64;
    for tile_a in fa.chunks(BLOCK_A * dim) {
        for tile_b in fb.chunks(BLOCK_B * dim) {
            for ra in tile_a.chunks_exact(dim) {
                for rb in tile_b.chunks_exact(dim) {
                    sum += (2.0 - 2.0 * tm_types::simd::dot_avx2(ra, rb))
                        .max(0.0)
                        .sqrt();
                }
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A flat row-major matrix of `rows` unit-norm rows.
    fn unit_matrix(rows: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut out = Vec::with_capacity(rows * dim);
        for _ in 0..rows {
            let mut row: Vec<f64> = (0..dim).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
            let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            row.iter_mut().for_each(|x| *x /= norm);
            out.extend_from_slice(&row);
        }
        out
    }

    #[test]
    fn simd_matches_scalar_across_shapes() {
        for &(na, nb, dim) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (16, 64, 32),
            (17, 65, 32),
            (40, 200, 31),
            (2, 2, 128),
        ] {
            let fa = unit_matrix(na, dim, 1 + na as u64);
            let fb = unit_matrix(nb, dim, 99 + nb as u64);
            let got = sum_pairwise_unit_distances(&fa, &fb, dim);
            let want = sum_pairwise_unit_distances_scalar(&fa, &fb, dim);
            let tol = 1e-9 * (na * nb).max(1) as f64;
            assert!(
                (got - want).abs() <= tol,
                "kernel drift at ({na},{nb},{dim}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn identical_rows_have_zero_distance_without_nan() {
        let fa = unit_matrix(4, 32, 5);
        let sum = sum_pairwise_unit_distances(&fa, &fa, 32);
        assert!(sum.is_finite());
        // 4 of the 16 pairs are identical rows: the clamp must keep each of
        // those at exactly 0 contribution (no NaN from -0 under sqrt).
        let scalar = sum_pairwise_unit_distances_scalar(&fa, &fa, 32);
        assert!((sum - scalar).abs() <= 1e-9 * 16.0);
    }

    #[test]
    fn dispatch_is_run_to_run_stable() {
        let fa = unit_matrix(9, 32, 42);
        let fb = unit_matrix(13, 32, 43);
        let first = sum_pairwise_unit_distances(&fa, &fb, 32);
        for _ in 0..5 {
            assert_eq!(
                first.to_bits(),
                sum_pairwise_unit_distances(&fa, &fb, 32).to_bits()
            );
        }
    }

    proptest! {
        #[test]
        fn prop_simd_matches_scalar(
            na in 0usize..12,
            nb in 0usize..12,
            dim in 1usize..48,
            seed in 0u64..1_000_000,
        ) {
            let fa = unit_matrix(na, dim, seed.wrapping_add(1));
            let fb = unit_matrix(nb, dim, seed.wrapping_add(2));
            let got = sum_pairwise_unit_distances(&fa, &fb, dim);
            let want = sum_pairwise_unit_distances_scalar(&fa, &fb, dim);
            let tol = 1e-9 * (na * nb).max(1) as f64;
            prop_assert!((got - want).abs() <= tol, "drift {} vs {}", got, want);
        }
    }
}
