//! Cross-camera global identity resolution over a fleet of streams.
//!
//! The paper's merging recurrence — and the [`crate::fleet`] built on it —
//! stops at the camera boundary: N shards share a feature cache but never
//! an identity, so a person walking between viewports is N different
//! people. This module adds the city-scale tier on top: a
//! [`GlobalMerger`] consumes the *same* per-camera feeds a
//! [`crate::FleetIngester`] ingests (read-only — it never touches shard
//! state, so every shard stays byte-identical to its solo run; see
//! `crates/bench/tests/global_differential.rs`) and resolves identities
//! *across* cameras.
//!
//! ## Topology pruning (Clique)
//!
//! The cross-camera candidate space is quadratic in tracks; most of it is
//! physically impossible. A [`CameraTopology`] keeps one
//! [`TravelProfile`] per directed camera pair — an integer-tick
//! travel-time histogram, updated online from *confirmed* cross-camera
//! merges — and a pair (track exiting camera A, track entering camera B)
//! is admissible only if its Δt (entry's first frame − exit's last
//! frame) falls inside the profile's envelope. Until a profile has
//! [`GlobalConfig::min_confirmations`] observations, a permissive prior
//! envelope (`prior_min_dt ..= prior_max_dt`) keeps cold-start
//! exploring. Profile updates are pure histogram increments, so they are
//! permutation-commutative and prefix-stable
//! (`crates/core/tests/topology_properties.rs` pins both).
//!
//! ## Budget discipline (TRACER)
//!
//! Admissible pairs feed the same Thompson-sampling selector machinery a
//! window uses ([`crate::selector::CandidateSelector`]), through a
//! [`tm_reid::ReidSession`] that can route extraction through any
//! [`tm_reid::InferenceBackend`] — hand it a lane of the same
//! `tm_reid::BatchScheduler` the fleet's shards use and cross-camera
//! inferences batch with intra-shard ones. Because cross-camera evidence
//! is appearance-only (spatio-temporal proximity means nothing between
//! viewports), accepted candidates additionally pass a normalized-score
//! acceptance threshold ([`GlobalConfig::accept_threshold`]) — the
//! within-window merger inherits the paper's thresholdless top-`m` rule,
//! but across cameras a wrong merge chains whole identities together, so
//! the global tier is deliberately conservative.
//!
//! Fault semantics carry over from the stream layer: a backend failure
//! trips the same [`crate::resilience::Breaker`]; degraded rounds accept
//! *nothing* provisionally (there is no spatio-temporal fallback across
//! viewports) and stash their frame bounds for re-verification on
//! recovery, where each round's pairs are rebuilt under the topology
//! state produced by every earlier commit and replayed in round order —
//! so an outage defers global links but never fabricates them, and a
//! recovered run converges to the fault-free answer exactly.
//!
//! ## Identity namespace and determinism
//!
//! Per-camera track ids are lifted into disjoint namespaces with
//! [`tm_types::TrackId::in_camera`] (camera 0 is the identity map, so a
//! single-camera world through the global merger reproduces the shard
//! mapping exactly). Rounds are fixed `round_len`-frame spans processed
//! when every feed's watermark passes the round boundary; decisions are
//! a function of (feed contents, round index) only, which is what makes
//! kill-and-resume from the `TMGL` envelope byte-identical.

use crate::checkpoint::{put_session_snapshot, take_session_snapshot, Reader, Writer};
use crate::exec;
use crate::resilience::{Breaker, DecisionMode, RobustnessConfig, RobustnessReport};
use crate::selector::{CandidateSelector, SelectionInput};
use crate::union::{merge_mapping, UnionFind};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use tm_obs::{Obs, Value};
use tm_reid::{
    AppearanceModel, CostModel, Device, GatePolicy, InferenceBackend, ReidSession, RetryPolicy,
};
use tm_types::{FrameIdx, Result, TmError, TrackId, TrackPair, TrackSet};

/// `TMGL` in ASCII: the global-merger checkpoint envelope.
const MAGIC: u64 = 0x544d_474c;
const VERSION: u64 = 1;

fn corrupt(reason: &str) -> TmError {
    TmError::invalid("global checkpoint", reason)
}

fn invalid(reason: &str) -> TmError {
    TmError::invalid("global", reason)
}

/// Tuning for a [`GlobalMerger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalConfig {
    /// Frames per global round. Each round resolves the tracks that
    /// *entered* some camera during it against earlier exits everywhere
    /// else; a round is processed once every feed's watermark passes its
    /// end.
    pub round_len: u64,
    /// Budget fraction: the selector considers `⌈k·|admissible|⌉`
    /// top-ranked pairs per round (before the acceptance threshold).
    pub k: f64,
    /// Cold-start envelope floor, in frames (clamped to ≥ 1): with an
    /// unlearned profile, Δt ≥ this is required.
    pub prior_min_dt: u64,
    /// Cold-start envelope ceiling, in frames: with an unlearned
    /// profile, Δt ≤ this is required. This is also the hard lookback
    /// bound on how old an exit can be and still pair with a new entry.
    pub prior_max_dt: u64,
    /// Confirmed merges a directed camera pair needs before its learned
    /// envelope replaces the prior.
    pub min_confirmations: u64,
    /// Slack added on both sides of a learned `[min_dt, max_dt]`
    /// envelope. Choose ≥ the world's travel-time jitter or sound
    /// transits may be pruned once the profile tightens.
    pub envelope_pad: u64,
    /// Normalized-score ceiling for accepting a selector candidate as a
    /// cross-camera merge (`None` disables the filter and inherits the
    /// paper's thresholdless top-`m` rule; see the module docs for why
    /// the global tier defaults to filtering).
    pub accept_threshold: Option<f64>,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            round_len: 200,
            k: 1.0,
            prior_min_dt: 1,
            prior_max_dt: 400,
            min_confirmations: 3,
            envelope_pad: 40,
            // Empirically the synthetic appearance space separates
            // cleanly: same-actor cross-camera pairs score ≲ 0.25,
            // distinct actors ≳ 0.35 (see the cross_camera bench); 0.30
            // sits mid-margin.
            accept_threshold: Some(0.30),
        }
    }
}

/// One directed camera pair's travel-time profile: an integer-tick
/// histogram of confirmed transit Δts. Updates are pure increments, so
/// observing the same multiset of Δts in any order yields the same
/// profile (permutation-commutative) and a prefix of observations never
/// rewrites what it already recorded (prefix-stable).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TravelProfile {
    hist: BTreeMap<u64, u64>,
    count: u64,
    min_dt: u64,
    max_dt: u64,
}

impl TravelProfile {
    /// Records one confirmed transit taking `dt` frames.
    pub fn observe(&mut self, dt: u64) {
        *self.hist.entry(dt).or_insert(0) += 1;
        if self.count == 0 {
            self.min_dt = dt;
            self.max_dt = dt;
        } else {
            self.min_dt = self.min_dt.min(dt);
            self.max_dt = self.max_dt.max(dt);
        }
        self.count += 1;
    }

    /// Confirmed transits recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observed `[min_dt, max_dt]`, `None` before the first observation.
    pub fn range(&self) -> Option<(u64, u64)> {
        (self.count > 0).then_some((self.min_dt, self.max_dt))
    }

    /// The tick histogram (Δt → observations).
    pub fn histogram(&self) -> &BTreeMap<u64, u64> {
        &self.hist
    }
}

/// The learned camera-adjacency graph: one [`TravelProfile`] per
/// directed `(from, to)` camera pair that has ever confirmed a transit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CameraTopology {
    profiles: BTreeMap<(u64, u64), TravelProfile>,
}

impl CameraTopology {
    /// An empty topology (every pair on the permissive prior).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a confirmed transit `from → to` taking `dt` frames.
    pub fn observe(&mut self, from: u64, to: u64, dt: u64) {
        self.profiles.entry((from, to)).or_default().observe(dt);
    }

    /// The profile for a directed pair, if any transit ever confirmed.
    pub fn profile(&self, from: u64, to: u64) -> Option<&TravelProfile> {
        self.profiles.get(&(from, to))
    }

    /// Directed pairs with at least one confirmed transit.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no transit has ever been confirmed.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The admissible Δt envelope for a directed pair: the learned
    /// `[min−pad, max+pad]` once the profile has
    /// [`GlobalConfig::min_confirmations`] observations, the permissive
    /// prior before that.
    pub fn envelope(&self, from: u64, to: u64, config: &GlobalConfig) -> (u64, u64) {
        match self.profiles.get(&(from, to)) {
            Some(p) if p.count >= config.min_confirmations => (
                p.min_dt.saturating_sub(config.envelope_pad).max(1),
                p.max_dt + config.envelope_pad,
            ),
            _ => (config.prior_min_dt.max(1), config.prior_max_dt),
        }
    }

    /// Whether a transit `from → to` taking `dt` frames passes the gate.
    pub fn admissible(&self, from: u64, to: u64, dt: u64, config: &GlobalConfig) -> bool {
        let (lo, hi) = self.envelope(from, to, config);
        dt >= lo && dt <= hi
    }

    /// Serializes the topology (bit-exact round trip through
    /// [`CameraTopology::from_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        put_topology(&mut w, self);
        w.into_bytes()
    }

    /// Deserializes [`CameraTopology::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let t = take_topology(&mut r)?;
        r.finish()?;
        Ok(t)
    }
}

fn put_topology(w: &mut Writer, t: &CameraTopology) {
    w.put_u64(t.profiles.len() as u64);
    for (&(from, to), p) in &t.profiles {
        w.put_u64(from);
        w.put_u64(to);
        w.put_u64(p.count);
        w.put_u64(p.min_dt);
        w.put_u64(p.max_dt);
        w.put_u64(p.hist.len() as u64);
        for (&dt, &n) in &p.hist {
            w.put_u64(dt);
            w.put_u64(n);
        }
    }
}

fn take_topology(r: &mut Reader<'_>) -> Result<CameraTopology> {
    let n = r.take_len()?;
    let mut profiles = BTreeMap::new();
    for _ in 0..n {
        let from = r.take_u64()?;
        let to = r.take_u64()?;
        let count = r.take_u64()?;
        let min_dt = r.take_u64()?;
        let max_dt = r.take_u64()?;
        let buckets = r.take_len()?;
        let mut hist = BTreeMap::new();
        for _ in 0..buckets {
            let dt = r.take_u64()?;
            let c = r.take_u64()?;
            hist.insert(dt, c);
        }
        if hist.values().sum::<u64>() != count {
            return Err(corrupt("profile count disagrees with histogram"));
        }
        profiles.insert(
            (from, to),
            TravelProfile {
                hist,
                count,
                min_dt,
                max_dt,
            },
        );
    }
    Ok(CameraTopology { profiles })
}

/// One decided global round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecision {
    /// Round index (frames `round·L .. (round+1)·L`).
    pub round: u64,
    /// Admissible (topology-gated, deduped) cross-camera pairs offered.
    pub n_pairs: usize,
    /// Accepted cross-camera merges, in namespaced global ids.
    pub candidates: Vec<TrackPair>,
    /// Whether the round ran real ReID or was stashed behind the breaker.
    pub mode: DecisionMode,
}

/// A degraded round awaiting re-verification (no provisional merges —
/// see the module docs). Only the frame bounds are stashed, not the pair
/// set: pairs are *rebuilt* at re-verification time, so each replayed
/// round is gated by the topology state produced by every earlier commit
/// — exactly the envelope a fault-free run would have used.
#[derive(Debug, Clone)]
struct StashedRound {
    round: u64,
    lo: u64,
    hi: u64,
}

/// The cross-camera identity resolver. See the module docs.
pub struct GlobalMerger<'m, S> {
    config: GlobalConfig,
    robustness: RobustnessConfig,
    selector: S,
    session: ReidSession<'m>,
    topology: CameraTopology,
    /// Camera count bound on first `advance` (0 = unbound).
    cameras: u64,
    next_round: u64,
    watermark: u64,
    seen: BTreeSet<TrackPair>,
    accepted: Vec<TrackPair>,
    uf: UnionFind,
    stash: Vec<StashedRound>,
    breaker: Breaker,
    counters: RobustnessReport,
    decisions: Vec<GlobalDecision>,
    pairs_total: u64,
    pairs_admitted: u64,
    obs: Obs,
}

impl<'m, S: CandidateSelector> GlobalMerger<'m, S> {
    /// Creates a global merger over its own ReID session (route it
    /// through a shared batching lane with
    /// [`GlobalMerger::with_backend`]).
    pub fn new(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        selector: S,
        config: GlobalConfig,
    ) -> Result<Self> {
        if config.round_len == 0 {
            return Err(invalid("round_len must be positive"));
        }
        if config.prior_min_dt > config.prior_max_dt {
            return Err(invalid("prior envelope is inverted"));
        }
        let robustness = RobustnessConfig::default();
        Ok(Self {
            config,
            robustness,
            selector,
            session: exec::window_session(
                model,
                session_cost,
                device,
                None,
                None,
                Some(robustness.retry),
                GatePolicy::Off,
            ),
            topology: CameraTopology::new(),
            cameras: 0,
            next_round: 0,
            watermark: 0,
            seen: BTreeSet::new(),
            accepted: Vec::new(),
            uf: UnionFind::new(),
            stash: Vec::new(),
            breaker: Breaker::new(robustness.breaker_threshold),
            counters: RobustnessReport::default(),
            decisions: Vec::new(),
            pairs_total: 0,
            pairs_admitted: 0,
            obs: tm_obs::current(),
        })
    }

    /// Routes cross-camera feature extraction through `backend` — hand
    /// this a `tm_reid::BatchScheduler` lane shared with the fleet's
    /// shards and global inferences batch with intra-shard ones (and
    /// inherit the same fault plan).
    pub fn with_backend(mut self, backend: &'m dyn InferenceBackend) -> Self {
        self.session = self.session.with_backend(backend);
        self
    }

    /// Routes round lifecycle counters and session charges through `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.session = self.session.with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Overrides the robustness configuration (retry/backoff, breaker
    /// threshold; the degraded spatio-temporal gate is unused here).
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self.session = self.session.with_retry_policy(robustness.retry);
        self.breaker = Breaker::new(robustness.breaker_threshold);
        self
    }

    /// Feeds the current per-camera tracker states — the same
    /// `(tracks, frames_available)` slice a [`crate::FleetIngester`]
    /// advance takes, read-only. Processes every global round whose end
    /// has passed on *every* feed and returns the new decisions.
    ///
    /// # Errors
    ///
    /// The camera count is bound on the first call and must never
    /// change; the fleet-wide watermark (the minimum of the feeds') must
    /// not regress; every feed must pass [`TrackSet::validate`]. Any
    /// error leaves the merger untouched.
    pub fn advance(&mut self, feeds: &[(&TrackSet, u64)]) -> Result<Vec<GlobalDecision>> {
        let combined = self.bind_and_combine(feeds)?;
        let frames = feeds.iter().map(|&(_, f)| f).min().unwrap_or(0);
        self.watermark = frames;
        let mut out = Vec::new();
        while (self.next_round + 1) * self.config.round_len <= frames {
            let round = self.next_round;
            let hi = (round + 1) * self.config.round_len;
            out.push(self.process_round(round, hi, feeds, &combined)?);
            self.next_round += 1;
        }
        Ok(out)
    }

    /// Flushes the final (possibly partial) round at end of stream, then
    /// makes one last recovery attempt for any still-degraded rounds.
    pub fn finish(&mut self, feeds: &[(&TrackSet, u64)]) -> Result<Vec<GlobalDecision>> {
        let mut out = self.advance(feeds)?;
        let combined = self.bind_and_combine(feeds)?;
        let frames = feeds.iter().map(|&(_, f)| f).min().unwrap_or(0);
        if self.next_round * self.config.round_len < frames {
            let round = self.next_round;
            out.push(self.process_round(round, frames, feeds, &combined)?);
            self.next_round += 1;
        }
        if !self.stash.is_empty() {
            self.session.set_epoch(self.next_round);
            if self.session.backend_available() {
                if self.breaker.is_open() {
                    self.breaker.close();
                    exec::emit_breaker_recovery(&self.obs, self.next_round);
                }
                self.reverify_stash(feeds, &combined)?;
            }
        }
        Ok(out)
    }

    /// Validates feeds, binds the camera count, and builds the
    /// namespaced union the selector scores against.
    fn bind_and_combine(&mut self, feeds: &[(&TrackSet, u64)]) -> Result<TrackSet> {
        if feeds.is_empty() {
            return Err(invalid("at least one camera feed is required"));
        }
        if self.cameras == 0 {
            self.cameras = feeds.len() as u64;
        } else if self.cameras != feeds.len() as u64 {
            return Err(invalid("camera count changed across advances"));
        }
        let frames = feeds.iter().map(|&(_, f)| f).min().unwrap_or(0);
        if frames < self.watermark {
            return Err(TmError::FrameRegression {
                frame: FrameIdx(frames),
                watermark: FrameIdx(self.watermark),
            });
        }
        let mut tracks = Vec::new();
        for (camera, (set, _)) in feeds.iter().enumerate() {
            set.validate()?;
            tracks.extend(set.in_camera(camera as u64).into_tracks());
        }
        Ok(TrackSet::from_tracks(tracks))
    }

    /// Resolves one round: entries with first frame in `[round·L, hi)`
    /// against admissible earlier exits in every other camera.
    fn process_round(
        &mut self,
        round: u64,
        hi: u64,
        feeds: &[(&TrackSet, u64)],
        combined: &TrackSet,
    ) -> Result<GlobalDecision> {
        let span = self.obs.span("global.round", self.session.elapsed_ms());
        // The round index is the fault epoch, exactly like a window index
        // on the stream layer: deterministic fault plans address outages
        // to specific rounds.
        self.session.set_epoch(round);
        if self.breaker.is_open() && self.session.backend_available() {
            self.breaker.close();
            exec::emit_breaker_recovery(&self.obs, round);
            self.reverify_stash(feeds, combined)?;
        }
        let lo = round * self.config.round_len;
        // Snapshot the gate counters and remember the round's pairs so a
        // degraded round can be rolled back: its pairs are rebuilt (and
        // recounted) at re-verification, under the recovered topology.
        let counts = (self.pairs_total, self.pairs_admitted);
        let pairs = self.build_pairs(lo, hi, feeds);

        let (candidates, mode) = if pairs.is_empty() {
            (Vec::new(), DecisionMode::Normal)
        } else if self.breaker.is_open() {
            self.degrade_round(round, lo, hi, &pairs, counts);
            (Vec::new(), DecisionMode::Degraded)
        } else {
            let input = SelectionInput {
                pairs: &pairs,
                tracks: combined,
                k: self.config.k,
                voi: None,
            };
            let outcome = self.selector.select(&input, &mut self.session);
            exec::flush_gate_obs(&mut self.session, &self.obs, self.selector.obs_slug());
            match outcome {
                Ok(result) => {
                    self.breaker.record_success();
                    let kept = self.filter_candidates(result.candidates, &result.scores);
                    self.commit(&kept, combined);
                    (kept, DecisionMode::Normal)
                }
                Err(e) if e.is_backend() => {
                    exec::note_breaker_failure(
                        &mut self.breaker,
                        &mut self.counters,
                        &self.obs,
                        round,
                    );
                    self.degrade_round(round, lo, hi, &pairs, counts);
                    (Vec::new(), DecisionMode::Degraded)
                }
                Err(e) => return Err(e),
            }
        };

        let decision = GlobalDecision {
            round,
            n_pairs: pairs.len(),
            candidates,
            mode,
        };
        if self.obs.enabled() {
            self.obs.counter("global.rounds", 1);
            self.obs.counter("global.pairs", decision.n_pairs as u64);
            self.obs
                .counter("global.merges", decision.candidates.len() as u64);
            self.obs.event(
                "global_round",
                &[
                    ("id", Value::U64(round)),
                    ("pairs", Value::U64(decision.n_pairs as u64)),
                    ("merges", Value::U64(decision.candidates.len() as u64)),
                    (
                        "mode",
                        Value::Str(if decision.mode == DecisionMode::Degraded {
                            "degraded"
                        } else {
                            "normal"
                        }),
                    ),
                ],
            );
        }
        span.finish(self.session.elapsed_ms());
        self.decisions.push(decision.clone());
        Ok(decision)
    }

    /// Builds the round's admissible pair set: for every track entering
    /// some camera during `[lo, hi)`, every same-class track in every
    /// *other* camera that ended first, gated by the topology envelope
    /// and deduped across rounds. Counts the unpruned and admitted pair
    /// totals for the pruning-ratio metric.
    fn build_pairs(&mut self, lo: u64, hi: u64, feeds: &[(&TrackSet, u64)]) -> Vec<TrackPair> {
        let mut pairs = Vec::new();
        for (to_cam, (to_set, _)) in feeds.iter().enumerate() {
            for entry in to_set.iter() {
                let Some(first) = entry.first_frame() else {
                    continue;
                };
                if first.get() < lo || first.get() >= hi {
                    continue;
                }
                for (from_cam, (from_set, _)) in feeds.iter().enumerate() {
                    if from_cam == to_cam {
                        continue;
                    }
                    for exit in from_set.iter() {
                        if exit.class != entry.class {
                            continue;
                        }
                        let Some(last) = exit.last_frame() else {
                            continue;
                        };
                        if last >= first {
                            continue;
                        }
                        let dt = first.get() - last.get();
                        self.pairs_total += 1;
                        if !self.topology.admissible(
                            from_cam as u64,
                            to_cam as u64,
                            dt,
                            &self.config,
                        ) {
                            continue;
                        }
                        self.pairs_admitted += 1;
                        let Some(p) = TrackPair::new(
                            exit.id.in_camera(from_cam as u64),
                            entry.id.in_camera(to_cam as u64),
                        ) else {
                            continue;
                        };
                        if self.seen.insert(p) {
                            pairs.push(p);
                        }
                    }
                }
            }
        }
        pairs.sort();
        pairs
    }

    /// Applies the acceptance threshold to a selector's ranked
    /// candidates (no-op when disabled).
    fn filter_candidates(
        &self,
        mut candidates: Vec<TrackPair>,
        scores: &HashMap<TrackPair, f64>,
    ) -> Vec<TrackPair> {
        if let Some(threshold) = self.config.accept_threshold {
            candidates.retain(|p| scores.get(p).is_some_and(|&s| s <= threshold));
        }
        candidates
    }

    /// Commits accepted merges: union-find, the accepted log, and the
    /// topology profile of each pair's directed camera hop.
    fn commit(&mut self, accepted: &[TrackPair], combined: &TrackSet) {
        for p in accepted {
            self.uf.union(p.lo(), p.hi());
            self.accepted.push(*p);
            observe_transit(&mut self.topology, *p, combined);
        }
    }

    /// Stashes a round decided behind the breaker. No provisional
    /// merges: cross-camera evidence is appearance-only, so a degraded
    /// round defers its links instead of guessing them. The pairs built
    /// for the decision record are rolled back out of the dedup set and
    /// the gate counters — re-verification rebuilds them under the
    /// topology state produced by every earlier commit, so the replayed
    /// candidate set (and the counted totals) match a fault-free run's.
    fn degrade_round(
        &mut self,
        round: u64,
        lo: u64,
        hi: u64,
        pairs: &[TrackPair],
        counts: (u64, u64),
    ) {
        for p in pairs {
            self.seen.remove(p);
        }
        (self.pairs_total, self.pairs_admitted) = counts;
        self.counters.degraded_windows += 1;
        self.obs.counter("global.rounds_degraded", 1);
        self.stash.push(StashedRound { round, lo, hi });
    }

    /// Replays stashed rounds with the recovered backend, in round
    /// order: each round's pairs are rebuilt from the feeds under the
    /// *current* topology, re-scored, committed, and observed before the
    /// next round rebuilds — the same build→select→commit→learn cadence
    /// a healthy run follows, so a recovered run converges to the
    /// fault-free links exactly. On renewed failure the just-rebuilt
    /// round is rolled back and the remainder stays stashed.
    fn reverify_stash(&mut self, feeds: &[(&TrackSet, u64)], combined: &TrackSet) -> Result<()> {
        let pending = std::mem::take(&mut self.stash);
        for (i, sr) in pending.iter().enumerate() {
            let counts = (self.pairs_total, self.pairs_admitted);
            let pairs = self.build_pairs(sr.lo, sr.hi, feeds);
            let item = exec::ReverifyItem {
                slot: sr.round as usize,
                window_index: sr.round,
                pairs: &pairs,
            };
            let uf = &mut self.uf;
            let accepted = &mut self.accepted;
            let topology = &mut self.topology;
            let config = &self.config;
            let committed = exec::reverify_windows(
                &[item],
                combined,
                self.config.k,
                &self.selector,
                &mut self.session,
                &mut self.breaker,
                &mut self.counters,
                &self.obs,
                |_, result| {
                    let mut kept = result.candidates;
                    if let Some(threshold) = config.accept_threshold {
                        kept.retain(|p| result.scores.get(p).is_some_and(|&s| s <= threshold));
                    }
                    for p in &kept {
                        uf.union(p.lo(), p.hi());
                        accepted.push(*p);
                        observe_transit(topology, *p, combined);
                    }
                },
            )?;
            if committed == 0 {
                for p in &pairs {
                    self.seen.remove(p);
                }
                (self.pairs_total, self.pairs_admitted) = counts;
                self.stash.extend(pending.into_iter().skip(i));
                return Ok(());
            }
        }
        Ok(())
    }

    /// The cross-camera relabelling implied by all confirmed global
    /// merges, over namespaced global ids. Compose with per-shard
    /// mappings via [`compose_global_mapping`].
    pub fn mapping(&self) -> HashMap<TrackId, TrackId> {
        merge_mapping(&self.accepted)
    }

    /// All cross-camera merges confirmed so far (namespaced ids).
    pub fn accepted(&self) -> &[TrackPair] {
        &self.accepted
    }

    /// Every decided round, in order.
    pub fn decisions(&self) -> &[GlobalDecision] {
        &self.decisions
    }

    /// The learned camera-adjacency graph.
    pub fn topology(&self) -> &CameraTopology {
        &self.topology
    }

    /// The merger configuration.
    pub fn config(&self) -> GlobalConfig {
        self.config
    }

    /// Fault-handling counters so far (all zero on a clean run).
    pub fn robustness(&self) -> RobustnessReport {
        let stats = self.session.stats();
        RobustnessReport {
            retries: stats.retries,
            backend_faults: stats.backend_faults,
            ..self.counters
        }
    }

    /// Simulated time consumed by the global ReID session.
    pub fn elapsed_ms(&self) -> f64 {
        self.session.elapsed_ms()
    }

    /// Index of the next unprocessed round.
    pub fn next_round(&self) -> u64 {
        self.next_round
    }

    /// High-water mark of the fleet-wide minimum watermark.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Whether the global breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// Degraded rounds stashed awaiting re-verification.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Size of the cross-round pair-dedup set.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// `(unpruned, admitted)` cross-camera pair counts: every exit×entry
    /// pair examined versus those that passed the topology gate. The
    /// quotient is the pruning ratio the `cross_camera` bench reports.
    pub fn pair_counts(&self) -> (u64, u64) {
        (self.pairs_total, self.pairs_admitted)
    }

    /// Serializes the merger's complete state into the `TMGL` envelope.
    /// Call between `advance` calls. The ambient observability recorder
    /// is *not* included — it rides the `TMCK`/`TMSV` envelopes of the
    /// fleet this merger overlays.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.put_u64(MAGIC);
        w.put_u64(VERSION);

        w.put_u64(self.config.round_len);
        w.put_f64(self.config.k);
        w.put_u64(self.config.prior_min_dt);
        w.put_u64(self.config.prior_max_dt);
        w.put_u64(self.config.min_confirmations);
        w.put_u64(self.config.envelope_pad);
        match self.config.accept_threshold {
            Some(t) => {
                w.put_bool(true);
                w.put_f64(t);
            }
            None => w.put_bool(false),
        }

        w.put_u64(self.robustness.retry.max_attempts as u64);
        w.put_f64(self.robustness.retry.base_backoff_ms);
        w.put_f64(self.robustness.retry.backoff_factor);
        w.put_f64(self.robustness.retry.max_backoff_ms);
        w.put_u64(self.robustness.breaker_threshold as u64);
        w.put_f64(self.robustness.degraded.max_spatial_px);
        w.put_u64(self.robustness.degraded.max_temporal_gap as u64);

        w.put_u64(self.cameras);
        w.put_u64(self.next_round);
        w.put_u64(self.watermark);

        let seen: Vec<TrackPair> = self.seen.iter().copied().collect();
        w.put_pairs(&seen);
        w.put_pairs(&self.accepted);

        w.put_u64(self.stash.len() as u64);
        for sr in &self.stash {
            w.put_u64(sr.round);
            w.put_u64(sr.lo);
            w.put_u64(sr.hi);
        }

        w.put_u64(self.decisions.len() as u64);
        for d in &self.decisions {
            w.put_u64(d.round);
            w.put_u64(d.n_pairs as u64);
            w.put_pairs(&d.candidates);
            w.put_bool(d.mode == DecisionMode::Degraded);
        }

        w.put_u64(self.breaker.threshold() as u64);
        w.put_u64(self.breaker.consecutive() as u64);
        w.put_bool(self.breaker.is_open());

        w.put_u64(self.counters.degraded_windows);
        w.put_u64(self.counters.reverified_windows);
        w.put_u64(self.counters.breaker_trips);

        w.put_u64(self.pairs_total);
        w.put_u64(self.pairs_admitted);

        put_topology(&mut w, &self.topology);
        put_session_snapshot(&mut w, &self.session.snapshot());
        w.into_bytes()
    }

    /// Reconstructs a merger from a [`GlobalMerger::checkpoint`].
    ///
    /// `model`, `session_cost`, `device` and `selector` are the code
    /// half of the state and must match the original run; a fault
    /// backend, if any, is re-installed afterwards with
    /// [`GlobalMerger::with_backend`]. Corrupt or truncated bytes yield
    /// an error, never a panic.
    pub fn resume(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        selector: S,
        bytes: &[u8],
    ) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.take_u64()? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if r.take_u64()? != VERSION {
            return Err(corrupt("unsupported version"));
        }

        let config = GlobalConfig {
            round_len: r.take_u64()?,
            k: r.take_f64()?,
            prior_min_dt: r.take_u64()?,
            prior_max_dt: r.take_u64()?,
            min_confirmations: r.take_u64()?,
            envelope_pad: r.take_u64()?,
            accept_threshold: if r.take_bool()? {
                Some(r.take_f64()?)
            } else {
                None
            },
        };

        let robustness = RobustnessConfig {
            retry: RetryPolicy {
                max_attempts: r.take_u64()? as u32,
                base_backoff_ms: r.take_f64()?,
                backoff_factor: r.take_f64()?,
                max_backoff_ms: r.take_f64()?,
            },
            breaker_threshold: r.take_u64()? as u32,
            degraded: crate::resilience::DegradedConfig {
                max_spatial_px: r.take_f64()?,
                max_temporal_gap: r.take_u64()? as i64,
            },
        };

        let cameras = r.take_u64()?;
        let next_round = r.take_u64()?;
        let watermark = r.take_u64()?;

        let seen: BTreeSet<TrackPair> = r.take_pairs()?.into_iter().collect();
        let accepted = r.take_pairs()?;

        let n = r.take_len()?;
        let stash: Vec<StashedRound> = (0..n)
            .map(|_| {
                Ok(StashedRound {
                    round: r.take_u64()?,
                    lo: r.take_u64()?,
                    hi: r.take_u64()?,
                })
            })
            .collect::<Result<_>>()?;

        let n = r.take_len()?;
        let decisions: Vec<GlobalDecision> = (0..n)
            .map(|_| {
                Ok(GlobalDecision {
                    round: r.take_u64()?,
                    n_pairs: r.take_u64()? as usize,
                    candidates: r.take_pairs()?,
                    mode: if r.take_bool()? {
                        DecisionMode::Degraded
                    } else {
                        DecisionMode::Normal
                    },
                })
            })
            .collect::<Result<_>>()?;

        let breaker = Breaker::restore(r.take_u64()? as u32, r.take_u64()? as u32, r.take_bool()?);
        let counters = RobustnessReport {
            degraded_windows: r.take_u64()?,
            reverified_windows: r.take_u64()?,
            breaker_trips: r.take_u64()?,
            ..RobustnessReport::default()
        };

        let pairs_total = r.take_u64()?;
        let pairs_admitted = r.take_u64()?;

        let topology = take_topology(&mut r)?;
        let session_snap = take_session_snapshot(&mut r)?;
        r.finish()?;

        let obs = tm_obs::current();
        let mut session = ReidSession::new(model, session_cost, device)
            .with_obs(obs.clone())
            .with_retry_policy(robustness.retry)
            .with_gate(GatePolicy::Off);
        session.restore_snapshot(&session_snap);

        // The union-find is derived state: re-union the confirmed merges.
        let mut uf = UnionFind::new();
        for p in &accepted {
            uf.union(p.lo(), p.hi());
        }

        Ok(Self {
            config,
            robustness,
            selector,
            session,
            topology,
            cameras,
            next_round,
            watermark,
            seen,
            accepted,
            uf,
            stash,
            breaker,
            counters,
            decisions,
            pairs_total,
            pairs_admitted,
            obs,
        })
    }
}

/// Records one accepted pair's directed camera hop on the topology.
/// Direction follows time: the chronologically earlier track is the
/// exit. Pairs whose tracks are missing or overlap in time (impossible
/// for pairs this module built) are skipped.
fn observe_transit(topology: &mut CameraTopology, p: TrackPair, combined: &TrackSet) {
    let (Some(a), Some(b)) = (combined.get(p.lo()), combined.get(p.hi())) else {
        return;
    };
    let (Some(a_last), Some(b_first)) = (a.last_frame(), b.first_frame()) else {
        return;
    };
    let (exit, entry, dt) = if a_last < b_first {
        (a, b, b_first.get() - a_last.get())
    } else {
        let (Some(b_last), Some(a_first)) = (b.last_frame(), a.first_frame()) else {
            return;
        };
        if b_last >= a_first {
            return;
        }
        (b, a, a_first.get() - b_last.get())
    };
    topology.observe(exit.id.camera(), entry.id.camera(), dt);
}

/// Composes per-shard (within-camera) accepted merges with the global
/// merger's cross-camera merges into one relabelling over namespaced
/// global ids: shard `i`'s pairs are lifted with
/// [`TrackId::in_camera`]`(i)` and unioned with `cross`. With a single
/// camera the namespace is the identity, so the result equals the
/// shard's own mapping.
pub fn compose_global_mapping(
    shard_accepted: &[&[TrackPair]],
    cross: &[TrackPair],
) -> HashMap<TrackId, TrackId> {
    let mut all: Vec<TrackPair> = Vec::new();
    for (camera, pairs) in shard_accepted.iter().enumerate() {
        for p in pairs.iter() {
            if let Some(lifted) = TrackPair::new(
                p.lo().in_camera(camera as u64),
                p.hi().in_camera(camera as u64),
            ) {
                all.push(lifted);
            }
        }
    }
    all.extend_from_slice(cross);
    merge_mapping(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmerge::{TMerge, TMergeConfig};
    use tm_reid::{AppearanceConfig, AppearanceModel};
    use tm_synth::{MultiCameraWorld, WorldConfig};

    fn selector() -> TMerge {
        TMerge::new(TMergeConfig {
            tau_max: 3_000,
            seed: 4,
            ..TMergeConfig::default()
        })
    }

    fn world() -> MultiCameraWorld {
        MultiCameraWorld::new(WorldConfig {
            cameras: 4,
            actors: 3,
            hops: 2,
            ..WorldConfig::default()
        })
    }

    fn run_world<'a>(
        model: &'a AppearanceModel,
        w: &MultiCameraWorld,
    ) -> (GlobalMerger<'a, TMerge>, Vec<TrackSet>) {
        let mut global = GlobalMerger::new(
            model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            GlobalConfig::default(),
        )
        .unwrap();
        let horizon = w.horizon();
        let feeds = w.all_camera_tracks(horizon);
        let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|s| (s, horizon)).collect();
        global.finish(&refs).unwrap();
        (global, feeds)
    }

    #[test]
    fn recovers_cross_camera_identities() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let w = world();
        let (global, feeds) = run_world(&model, &w);
        // Every ground-truth transit's exit/entry tracks end up in one
        // global identity group.
        let mapping = global.mapping();
        let resolve = |id: TrackId| *mapping.get(&id).unwrap_or(&id);
        let horizon = w.horizon();
        let mut linked = 0usize;
        let transits = w.transits(horizon);
        for tr in &transits {
            let ident = MultiCameraWorld::identity(tr.actor);
            let exit = feeds[tr.from as usize]
                .iter()
                .filter(|t| t.boxes[0].provenance == Some(ident))
                .max_by_key(|t| t.last_frame())
                .unwrap();
            let entry = feeds[tr.to as usize]
                .iter()
                .filter(|t| t.boxes[0].provenance == Some(ident))
                .min_by_key(|t| t.first_frame())
                .unwrap();
            if resolve(exit.id.in_camera(tr.from)) == resolve(entry.id.in_camera(tr.to)) {
                linked += 1;
            }
        }
        assert!(
            linked * 2 > transits.len(),
            "most transits should link: {linked}/{}",
            transits.len()
        );
        // No two distinct actors were chained into one identity.
        let mut actor_of_root: HashMap<TrackId, u64> = HashMap::new();
        for (cam, feed) in feeds.iter().enumerate() {
            for t in feed.iter() {
                let actor = t.boxes[0].provenance.unwrap().get();
                let root = resolve(t.id.in_camera(cam as u64));
                if let Some(&other) = actor_of_root.get(&root) {
                    assert_eq!(other, actor, "two actors merged into one identity");
                } else {
                    actor_of_root.insert(root, actor);
                }
            }
        }
    }

    #[test]
    fn topology_learns_and_prunes() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let w = world();
        let (global, _) = run_world(&model, &w);
        assert!(!global.topology().is_empty(), "transits confirmed");
        let (total, admitted) = global.pair_counts();
        assert!(total > 0 && admitted > 0);
        assert!(admitted < total, "the gate must prune something");
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let w = world();
        let horizon = w.horizon();
        let feeds = w.all_camera_tracks(horizon);
        // Checkpoint mid-transit: after the first actor's first hop has
        // started but before the horizon.
        let mid = horizon / 2;
        let make = || {
            GlobalMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                GlobalConfig::default(),
            )
            .unwrap()
        };
        let refs_at = |f: u64| -> Vec<(&TrackSet, u64)> { feeds.iter().map(|s| (s, f)).collect() };

        let mut solo = make();
        solo.advance(&refs_at(mid)).unwrap();
        solo.finish(&refs_at(horizon)).unwrap();

        let mut first = make();
        first.advance(&refs_at(mid)).unwrap();
        let envelope = first.checkpoint();
        let mut revived = GlobalMerger::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            &envelope,
        )
        .unwrap();
        assert_eq!(revived.checkpoint(), envelope, "resume is a fixpoint");
        revived.finish(&refs_at(horizon)).unwrap();

        assert_eq!(solo.decisions(), revived.decisions());
        assert_eq!(solo.accepted(), revived.accepted());
        assert_eq!(solo.topology(), revived.topology());
        assert_eq!(
            solo.elapsed_ms().to_bits(),
            revived.elapsed_ms().to_bits(),
            "clock must be bit-equal"
        );
        assert_eq!(solo.checkpoint(), revived.checkpoint());
    }

    #[test]
    fn single_camera_has_no_cross_pairs() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut global = GlobalMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            GlobalConfig::default(),
        )
        .unwrap();
        let w = MultiCameraWorld::new(WorldConfig {
            cameras: 1,
            actors: 3,
            ..WorldConfig::default()
        });
        let horizon = w.horizon();
        let feed = w.camera_tracks(0, horizon);
        global.finish(&[(&feed, horizon)]).unwrap();
        assert!(global.accepted().is_empty());
        assert_eq!(global.pair_counts(), (0, 0));
        assert!(global.mapping().is_empty());
    }

    #[test]
    fn camera_count_is_bound_and_watermark_monotone() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut global = GlobalMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            GlobalConfig::default(),
        )
        .unwrap();
        let a = TrackSet::new();
        let b = TrackSet::new();
        global.advance(&[(&a, 100), (&b, 100)]).unwrap();
        assert!(global.advance(&[(&a, 150)]).is_err(), "camera count bound");
        assert!(
            global.advance(&[(&a, 50), (&b, 50)]).is_err(),
            "watermark regression"
        );
        assert!(global.advance(&[]).is_err(), "empty fleet");
    }

    #[test]
    fn config_is_validated() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        for bad in [
            GlobalConfig {
                round_len: 0,
                ..GlobalConfig::default()
            },
            GlobalConfig {
                prior_min_dt: 10,
                prior_max_dt: 5,
                ..GlobalConfig::default()
            },
        ] {
            assert!(GlobalMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                bad,
            )
            .is_err());
        }
    }
}
