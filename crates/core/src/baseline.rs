//! BL — the brute-force baseline (Algorithm 1 of the paper).
//!
//! Computes the exact score of every pair by evaluating **all** BBox pairs,
//! ranks ascending, and returns the top-`⌈K·|P_c|⌉`. Exact but quadratic in
//! boxes per pair — the scalability problem motivating TMerge (Fig. 4).
//! Running it on a GPU session makes it the paper's BL-B.

use crate::score::exact_scores;
use crate::selector::{top_m_by_score, CandidateSelector, SelectionInput, SelectionResult};
use tm_reid::ReidSession;
use tm_types::Result;

/// The baseline selector (Algorithm 1). Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl CandidateSelector for Baseline {
    fn name(&self) -> String {
        "BL".to_string()
    }

    fn obs_slug(&self) -> &'static str {
        "baseline"
    }

    fn select(
        &self,
        input: &SelectionInput<'_>,
        session: &mut ReidSession<'_>,
    ) -> Result<SelectionResult> {
        let before = session.stats().distances;
        let scores = exact_scores(input, session)?;
        let candidates = top_m_by_score(&scores, input.m());
        let distance_evals = session.stats().distances - before;
        let obs = session.obs();
        if obs.enabled() {
            obs.counter("selector.baseline.selections", 1);
            obs.counter("selector.baseline.pulls", distance_evals);
            obs.counter("selector.baseline.accepted", candidates.len() as u64);
            obs.counter(
                "selector.baseline.rejected",
                (scores.len() - candidates.len()) as u64,
            );
        }
        Ok(SelectionResult {
            candidates,
            scores: scores.into_iter().collect(),
            distance_evals,
            history: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device};
    use tm_types::{
        ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
    };

    fn track(id: u64, actor: u64, start: u64, n: usize) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    /// 6 tracks: actors 10 and 11 fragmented into two tracks each, plus two
    /// singleton actors. True polyonymous pairs: (1,2) and (3,4).
    fn fixture() -> (AppearanceModel, TrackSet, Vec<TrackPair>) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 8),
            track(2, 10, 40, 8),
            track(3, 11, 0, 8),
            track(4, 11, 40, 8),
            track(5, 12, 0, 8),
            track(6, 13, 0, 8),
        ]);
        let ids: Vec<u64> = (1..=6).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
            }
        }
        (model, tracks, pairs)
    }

    #[test]
    fn baseline_finds_polyonymous_pairs_at_small_k() {
        let (model, tracks, pairs) = fixture();
        // K chosen so m = 2 (15 pairs → ⌈0.14·15⌉ = 3... use 2/15).
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 2.0 / 15.0,
            voi: None,
        };
        assert_eq!(input.m(), 2);
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let result = Baseline.select(&input, &mut session).unwrap();
        let expect_a = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        let expect_b = TrackPair::new(TrackId(3), TrackId(4)).unwrap();
        assert!(
            result.candidates.contains(&expect_a),
            "{:?}",
            result.candidates
        );
        assert!(
            result.candidates.contains(&expect_b),
            "{:?}",
            result.candidates
        );
    }

    #[test]
    fn baseline_evaluates_every_bbox_pair() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.1,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let result = Baseline.select(&input, &mut session).unwrap();
        // 15 pairs × 64 bbox pairs.
        assert_eq!(result.distance_evals, 15 * 64);
        assert_eq!(session.stats().distances, 15 * 64);
    }

    #[test]
    fn gpu_variant_is_cheaper_and_identical() {
        let (model, tracks, pairs) = fixture();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.2,
            voi: None,
        };
        let mut cpu = ReidSession::new(&model, CostModel::calibrated(), Device::Cpu);
        let r_cpu = Baseline.select(&input, &mut cpu).unwrap();
        let mut gpu = ReidSession::new(&model, CostModel::calibrated(), Device::Gpu { batch: 10 });
        let r_gpu = Baseline.select(&input, &mut gpu).unwrap();
        assert_eq!(r_cpu.candidates, r_gpu.candidates);
        assert!(gpu.elapsed_ms() < cpu.elapsed_ms());
    }

    #[test]
    fn empty_pair_set_is_fine() {
        let (model, tracks, _) = fixture();
        let input = SelectionInput {
            pairs: &[],
            tracks: &tracks,
            k: 0.5,
            voi: None,
        };
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let result = Baseline.select(&input, &mut session).unwrap();
        assert!(result.candidates.is_empty());
        assert_eq!(result.distance_evals, 0);
    }
}
