//! Streaming ingestion: process an unbounded video feed window by window.
//!
//! §II frames the video as potentially unbounded, with windows processed
//! "in order of succession" during metadata extraction. The offline
//! [`crate::run_pipeline`] needs the whole video; [`StreamingMerger`] is
//! the online counterpart: feed it the tracker's output as frames arrive,
//! and it runs candidate selection for each window as soon as that window
//! has fully elapsed, maintaining the cross-window pair deduplication and a
//! running union-find of accepted merges.
//!
//! The decisions are *incremental*: after any `advance` call you can ask
//! for the current id [`StreamingMerger::mapping`] and relabel the metadata
//! emitted so far — exactly what a query engine ingesting a live feed
//! needs.

use crate::pairs::tracks_in_first_half;
use crate::selector::{CandidateSelector, SelectionInput};
use crate::union::UnionFind;
use crate::window::Window;
use std::collections::{BTreeSet, HashMap};
use tm_reid::{AppearanceModel, ReidSession};
use tm_types::{FrameIdx, Result, TmError, TrackId, TrackPair, TrackSet};

/// Configuration of the streaming merger (mirrors
/// [`crate::PipelineConfig`] minus the device/cost, which live on the
/// session).
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Window length `L` (frames, even, ≥ 2·L_max).
    pub window_len: u64,
    /// Candidate budget `K`.
    pub k: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            window_len: 2000,
            k: 0.05,
        }
    }
}

/// What one processed window produced.
#[derive(Debug, Clone)]
pub struct WindowDecision {
    /// The window that was processed.
    pub window: Window,
    /// Pairs examined in this window (`|P_c|`).
    pub n_pairs: usize,
    /// Candidates selected in this window.
    pub candidates: Vec<TrackPair>,
}

/// An online, window-at-a-time merger.
pub struct StreamingMerger<'m, S> {
    config: StreamConfig,
    selector: S,
    session: ReidSession<'m>,
    /// Index of the next unprocessed window.
    next_window: usize,
    /// `T_{c−1}`: tracks of the previous window's first half.
    prev_ids: Vec<TrackId>,
    /// Pairs already examined (never re-examined, §II).
    seen: BTreeSet<TrackPair>,
    /// Accepted merges so far.
    uf: UnionFind,
    merged_ids: Vec<TrackPair>,
}

impl<'m, S: CandidateSelector> StreamingMerger<'m, S> {
    /// Creates a streaming merger over a ReID session.
    pub fn new(
        model: &'m AppearanceModel,
        session_cost: tm_reid::CostModel,
        device: tm_reid::Device,
        selector: S,
        config: StreamConfig,
    ) -> Result<Self> {
        if config.window_len == 0 || !config.window_len.is_multiple_of(2) {
            return Err(TmError::invalid("window_len", "must be positive and even"));
        }
        Ok(Self {
            config,
            selector,
            session: ReidSession::new(model, session_cost, device),
            next_window: 0,
            prev_ids: Vec::new(),
            seen: BTreeSet::new(),
            uf: UnionFind::new(),
            merged_ids: Vec::new(),
        })
    }

    /// The window with index `c` (start `c·L/2`, unbounded stream).
    fn window(&self, c: usize) -> Window {
        let half = self.config.window_len / 2;
        let start = c as u64 * half;
        Window {
            index: c,
            start: FrameIdx(start),
            end: FrameIdx(start + self.config.window_len),
            half_end: FrameIdx(start + half),
        }
    }

    /// Feeds the current tracker state. `tracks` must contain every track
    /// observed so far (with boxes up to `frames_available`); the merger
    /// processes every window that has fully elapsed and returns one
    /// decision per newly processed window.
    pub fn advance(&mut self, tracks: &TrackSet, frames_available: u64) -> Vec<WindowDecision> {
        let mut out = Vec::new();
        loop {
            let w = self.window(self.next_window);
            if w.end.get() > frames_available {
                break;
            }
            out.push(self.process_window(tracks, w));
            self.next_window += 1;
        }
        out
    }

    /// Flushes the final (possibly partial) window at end of stream.
    pub fn finish(&mut self, tracks: &TrackSet, total_frames: u64) -> Vec<WindowDecision> {
        let mut out = self.advance(tracks, total_frames);
        let w = self.window(self.next_window);
        if w.start.get() < total_frames {
            let clipped = Window {
                end: FrameIdx(total_frames.min(w.end.get())),
                half_end: FrameIdx(total_frames.min(w.half_end.get())),
                ..w
            };
            out.push(self.process_window(tracks, clipped));
            self.next_window += 1;
        }
        out
    }

    fn process_window(&mut self, tracks: &TrackSet, w: Window) -> WindowDecision {
        let cur_ids = tracks_in_first_half(tracks, &w);
        let mut pairs: Vec<TrackPair> = Vec::new();
        {
            let mut push = |a: TrackId, b: TrackId| {
                let (Some(ta), Some(tb)) = (tracks.get(a), tracks.get(b)) else {
                    return;
                };
                if ta.class != tb.class {
                    return;
                }
                if let Some(p) = TrackPair::new(a, b) {
                    if self.seen.insert(p) {
                        pairs.push(p);
                    }
                }
            };
            for (i, &a) in cur_ids.iter().enumerate() {
                for &b in &cur_ids[i + 1..] {
                    push(a, b);
                }
            }
            for &a in &cur_ids {
                for &b in &self.prev_ids {
                    push(a, b);
                }
            }
        }
        pairs.sort();
        self.prev_ids = cur_ids;

        let candidates = if pairs.is_empty() {
            Vec::new()
        } else {
            let input = SelectionInput {
                pairs: &pairs,
                tracks,
                k: self.config.k,
            };
            self.selector.select(&input, &mut self.session).candidates
        };
        for p in &candidates {
            self.uf.union(p.lo(), p.hi());
            self.merged_ids.push(*p);
        }
        WindowDecision {
            window: w,
            n_pairs: pairs.len(),
            candidates,
        }
    }

    /// The current relabelling implied by all accepted merges: each merged
    /// group maps to its smallest id.
    pub fn mapping(&mut self) -> HashMap<TrackId, TrackId> {
        crate::union::merge_mapping(&self.merged_ids)
    }

    /// All candidates accepted so far.
    pub fn accepted(&self) -> &[TrackPair] {
        &self.merged_ids
    }

    /// Simulated time consumed by the ReID session so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.session.elapsed_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig, SelectorKind};
    use crate::tmerge::{TMerge, TMergeConfig};
    use tm_reid::{AppearanceConfig, CostModel, Device};
    use tm_types::{ids::classes, BBox, GtObjectId, Track, TrackBox};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 30, 0.0),
            track(2, 10, 80, 30, 160.0), // fragment of actor 10
            track(3, 11, 0, 40, 400.0),
            track(4, 12, 60, 40, 800.0),
            track(5, 13, 200, 40, 1200.0),
            track(6, 13, 280, 30, 1400.0), // fragment of actor 13
        ]);
        (model, tracks)
    }

    fn selector() -> TMerge {
        TMerge::new(TMergeConfig {
            tau_max: 1_500,
            seed: 4,
            ..TMergeConfig::default()
        })
    }

    fn config() -> StreamConfig {
        StreamConfig {
            window_len: 200,
            k: 0.1,
        }
    }

    #[test]
    fn rejects_odd_window() {
        let (model, _) = fixture();
        assert!(StreamingMerger::new(
            &model,
            CostModel::zero(),
            Device::Cpu,
            selector(),
            StreamConfig {
                window_len: 99,
                k: 0.1
            },
        )
        .is_err());
    }

    #[test]
    fn advance_processes_only_elapsed_windows() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        // 150 frames available: window [0,200) has not elapsed yet.
        assert!(m.advance(&tracks, 150).is_empty());
        let d = m.advance(&tracks, 250);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].window.index, 0);
        // Re-advancing with the same frame count does nothing.
        assert!(m.advance(&tracks, 250).is_empty());
    }

    #[test]
    fn streaming_finds_fragments_incrementally() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let mut decisions = Vec::new();
        for frames in [200, 300, 320, 400] {
            decisions.extend(m.advance(&tracks, frames));
        }
        decisions.extend(m.finish(&tracks, 400));
        let early = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        assert!(
            m.accepted().contains(&early),
            "early fragment pair not merged: {:?}",
            m.accepted()
        );
        let late = TrackPair::new(TrackId(5), TrackId(6)).unwrap();
        assert!(
            m.accepted().contains(&late),
            "late fragment pair not merged: {:?}",
            m.accepted()
        );
        // The mapping merges both groups.
        let mapping = m.mapping();
        assert_eq!(mapping.get(&TrackId(2)), Some(&TrackId(1)));
        assert_eq!(mapping.get(&TrackId(6)), Some(&TrackId(5)));
    }

    #[test]
    fn no_pair_is_examined_twice_across_windows() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let mut seen = BTreeSet::new();
        let mut decisions = m.advance(&tracks, 400);
        decisions.extend(m.finish(&tracks, 400));
        for d in &decisions {
            for p in crate::pairs::build_window_pairs(&tracks, 400, 200)
                .unwrap()
                .iter()
                .filter(|wp| wp.window.index == d.window.index)
                .flat_map(|wp| &wp.pairs)
            {
                assert!(seen.insert(*p), "pair {p} seen twice");
            }
        }
    }

    #[test]
    fn streaming_matches_offline_pipeline() {
        let (model, tracks) = fixture();
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            config(),
        )
        .unwrap();
        // Feed in irregular increments.
        for frames in [100, 230, 390, 400] {
            m.advance(&tracks, frames);
        }
        m.finish(&tracks, 400);

        let offline = run_pipeline(
            &tracks,
            400,
            &model,
            &PipelineConfig {
                window_len: 200,
                k: 0.1,
                selector: SelectorKind::TMerge(TMergeConfig {
                    tau_max: 1_500,
                    seed: 4,
                    ..TMergeConfig::default()
                }),
                device: Device::Cpu,
                cost: CostModel::calibrated(),
            },
            None,
        )
        .unwrap();
        let mut streaming: Vec<TrackPair> = m.accepted().to_vec();
        let mut batch: Vec<TrackPair> = offline.candidates.clone();
        streaming.sort();
        batch.sort();
        assert_eq!(streaming, batch, "streaming and offline disagree");
        assert!((m.elapsed_ms() - offline.elapsed_ms).abs() < 1e-6);
    }
}
