//! Streaming ingestion: process an unbounded video feed window by window.
//!
//! §II frames the video as potentially unbounded, with windows processed
//! "in order of succession" during metadata extraction. The offline
//! [`crate::run_pipeline`] needs the whole video; [`StreamingMerger`] is
//! the online counterpart: feed it the tracker's output as frames arrive,
//! and it runs candidate selection for each window as soon as that window
//! has fully elapsed, maintaining the cross-window pair deduplication and a
//! running union-find of accepted merges.
//!
//! The decisions are *incremental*: after any `advance` call you can ask
//! for the current id [`StreamingMerger::mapping`] and relabel the metadata
//! emitted so far — exactly what a query engine ingesting a live feed
//! needs.
//!
//! The merger is also *fault-tolerant*: install a fallible
//! [`InferenceBackend`] with [`StreamingMerger::with_backend`] and windows
//! whose selection fails (even after the session's retry budget) fall back
//! to degraded spatio-temporal selection behind a circuit breaker. Degraded
//! decisions are provisional — visible in [`StreamingMerger::mapping`] so
//! queries keep working through an outage, but re-scored with real ReID and
//! only then committed once the backend recovers. And it is *restartable*:
//! [`StreamingMerger::checkpoint`] serializes the full merger state, and
//! [`StreamingMerger::resume`] (see `crate::checkpoint`) continues a killed
//! ingester at the last completed window with byte-identical results.

use crate::exec::{self, ReverifyItem, WindowVerdict};
use crate::pairs::tracks_in_first_half;
use crate::resilience::{Breaker, DecisionMode, RobustnessConfig, RobustnessReport};
use crate::selector::{CandidateSelector, SelectionInput};
use crate::union::UnionFind;
use crate::voi::{VoiHints, VoiMode};
use crate::window::Window;
use std::collections::{BTreeSet, HashMap};
use tm_obs::Obs;
use tm_reid::{AppearanceModel, GatePolicy, InferenceBackend, ReidSession};
use tm_types::{FrameIdx, Result, TmError, TrackId, TrackPair, TrackSet};

/// Configuration of the streaming merger (mirrors
/// [`crate::PipelineConfig`] minus the device/cost, which live on the
/// session).
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Window length `L` (frames, even, ≥ 2·L_max).
    pub window_len: u64,
    /// Candidate budget `K`.
    pub k: f64,
    /// Selective feature extraction (DESIGN.md §14). `Off` (the default)
    /// is bit-identical to the pre-gating merger. Rides the checkpoint so
    /// resumed streams keep gating identically.
    pub gate: GatePolicy,
    /// Query-driven VoI reweighting (DESIGN.md §17). `Off` (the default)
    /// is bit-identical to the query-agnostic merger; `Reweight` consumes
    /// hints attached via [`StreamingMerger::set_voi_hints`]. Rides the
    /// checkpoint so resumed streams keep the same selection semantics.
    pub voi: VoiMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            window_len: 2000,
            k: 0.05,
            gate: GatePolicy::Off,
            voi: VoiMode::Off,
        }
    }
}

/// What one processed window produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDecision {
    /// The window that was processed.
    pub window: Window,
    /// Pairs examined in this window (`|P_c|`).
    pub n_pairs: usize,
    /// Candidates selected in this window.
    pub candidates: Vec<TrackPair>,
    /// How the candidates were decided (degraded decisions are provisional
    /// at the time they are emitted).
    pub mode: DecisionMode,
}

/// A window processed without ReID, awaiting re-verification.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StashedWindow {
    pub(crate) window: Window,
    /// The window's full pair set (needed to re-run the real selector).
    pub(crate) pairs: Vec<TrackPair>,
    /// Candidates chosen on spatio-temporal evidence only.
    pub(crate) provisional: Vec<TrackPair>,
}

/// Aggregate of everything [`StreamingMerger::compact_before`] has dropped
/// so far. Totals (window/pair/candidate counts) survive compaction here
/// even after the per-window [`StreamingMerger::decisions`] entries are
/// gone, so long-horizon reports still add up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionSummary {
    /// Decided windows whose per-window log entry was dropped.
    pub compacted_windows: u64,
    /// Pairs examined across the compacted windows.
    pub compacted_pairs: u64,
    /// Candidates selected across the compacted windows.
    pub compacted_candidates: u64,
    /// Stashed degraded windows that aged past the horizon with their
    /// provisional merges committed for good (the backend never recovered
    /// in time to re-verify them).
    pub expired_stash_windows: u64,
    /// Dedup-set pairs pruned because both members ended before the
    /// horizon.
    pub pruned_seen_pairs: u64,
    /// Cached features evicted from the session.
    pub evicted_features: u64,
}

impl RetentionSummary {
    fn accumulate(&mut self, d: RetentionSummary) {
        self.compacted_windows += d.compacted_windows;
        self.compacted_pairs += d.compacted_pairs;
        self.compacted_candidates += d.compacted_candidates;
        self.expired_stash_windows += d.expired_stash_windows;
        self.pruned_seen_pairs += d.pruned_seen_pairs;
        self.evicted_features += d.evicted_features;
    }

    /// True when compaction has never dropped anything.
    pub fn is_empty(&self) -> bool {
        *self == RetentionSummary::default()
    }
}

/// An online, window-at-a-time merger.
pub struct StreamingMerger<'m, S> {
    pub(crate) config: StreamConfig,
    /// Which stream of a fleet this merger serves (0 outside a fleet).
    /// Purely descriptive — it labels per-stream observability counters and
    /// rides the checkpoint so a resumed fleet reattaches shards to the
    /// right feeds; it never influences decisions.
    pub(crate) stream_id: u64,
    pub(crate) robustness: RobustnessConfig,
    pub(crate) selector: S,
    pub(crate) session: ReidSession<'m>,
    /// Index of the next unprocessed window.
    pub(crate) next_window: usize,
    /// High-water mark of `frames_available` seen so far.
    pub(crate) watermark: u64,
    /// `T_{c−1}`: tracks of the previous window's first half.
    pub(crate) prev_ids: Vec<TrackId>,
    /// Pairs already examined (never re-examined, §II).
    pub(crate) seen: BTreeSet<TrackPair>,
    /// Accepted merges so far.
    pub(crate) uf: UnionFind,
    pub(crate) merged_ids: Vec<TrackPair>,
    pub(crate) breaker: Breaker,
    /// Degraded windows whose merges are provisional.
    pub(crate) stash: Vec<StashedWindow>,
    /// Serve-level shed-load flag: while set, every window takes the
    /// degraded spatio-temporal path without charging ReID or consulting
    /// the breaker (DESIGN.md §15).
    pub(crate) shed: bool,
    /// Set when shed-load mode ended with stashed windows pending: the
    /// next processed window re-verifies them, exactly like breaker
    /// recovery.
    pub(crate) shed_recover: bool,
    /// Aggregate of state dropped by retention compaction.
    pub(crate) retention: RetentionSummary,
    /// Every decision emitted so far, in window order (bounded by
    /// [`StreamingMerger::compact_before`] when a retention horizon is
    /// configured upstream).
    pub(crate) decisions: Vec<WindowDecision>,
    /// Degraded/re-verified/breaker counters (retry counters live on the
    /// session's stats).
    pub(crate) counters: RobustnessReport,
    /// Query-driven VoI hints, consumed only under [`VoiMode::Reweight`].
    /// Ephemeral: refreshed by the query layer between advances, so they do
    /// NOT ride the checkpoint (the mode does; a resumed stream re-attaches
    /// hints before its next window, or runs un-hinted — both sound).
    pub(crate) voi_hints: Option<VoiHints>,
    /// Observability sink for window lifecycle events (see `tm-obs`).
    pub(crate) obs: Obs,
}

impl<'m, S: CandidateSelector> StreamingMerger<'m, S> {
    /// Creates a streaming merger over a ReID session.
    pub fn new(
        model: &'m AppearanceModel,
        session_cost: tm_reid::CostModel,
        device: tm_reid::Device,
        selector: S,
        config: StreamConfig,
    ) -> Result<Self> {
        if config.window_len == 0 || !config.window_len.is_multiple_of(2) {
            return Err(TmError::invalid("window_len", "must be positive and even"));
        }
        let robustness = RobustnessConfig::default();
        Ok(Self {
            config,
            stream_id: 0,
            robustness,
            selector,
            session: exec::window_session(
                model,
                session_cost,
                device,
                None,
                None,
                Some(robustness.retry),
                config.gate,
            ),
            next_window: 0,
            watermark: 0,
            prev_ids: Vec::new(),
            seen: BTreeSet::new(),
            uf: UnionFind::new(),
            merged_ids: Vec::new(),
            breaker: Breaker::new(robustness.breaker_threshold),
            stash: Vec::new(),
            shed: false,
            shed_recover: false,
            retention: RetentionSummary::default(),
            decisions: Vec::new(),
            counters: RobustnessReport::default(),
            voi_hints: None,
            obs: tm_obs::current(),
        })
    }

    /// Routes the session's feature extraction through `backend` (e.g. a
    /// `tm-chaos` `FaultyModel`). With the default backend — the model
    /// itself — the fault path is never taken.
    pub fn with_backend(mut self, backend: &'m dyn InferenceBackend) -> Self {
        self.session = self.session.with_backend(backend);
        self
    }

    /// Labels this merger as stream `id` of a fleet. Affects observability
    /// labels and the checkpoint header only — never decisions.
    pub fn with_stream_id(mut self, id: u64) -> Self {
        self.stream_id = id;
        self
    }

    /// The fleet stream this merger serves (0 outside a fleet).
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// Routes the merger's window lifecycle — and the session's ReID
    /// charges — through `obs` instead of the ambient
    /// [`tm_obs::current`] observer captured at construction.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.session = self.session.with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Overrides the robustness configuration (retry/backoff policy,
    /// breaker threshold, degraded gating).
    pub fn with_robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.robustness = robustness;
        self.session = self.session.with_retry_policy(robustness.retry);
        self.breaker = Breaker::new(robustness.breaker_threshold);
        self
    }

    /// The window with index `c` (start `c·L/2`, unbounded stream).
    pub(crate) fn window(&self, c: usize) -> Window {
        let half = self.config.window_len / 2;
        let start = c as u64 * half;
        Window {
            index: c,
            start: FrameIdx(start),
            end: FrameIdx(start + self.config.window_len),
            half_end: FrameIdx(start + half),
        }
    }

    /// Feeds the current tracker state. `tracks` must contain every track
    /// observed so far (with boxes up to `frames_available`); the merger
    /// processes every window that has fully elapsed and returns one
    /// decision per newly processed window.
    ///
    /// # Errors
    ///
    /// `frames_available` must not move backwards across calls
    /// ([`TmError::FrameRegression`]); `tracks` must pass
    /// [`TrackSet::validate`]. Either error leaves the merger state
    /// untouched, so the caller can repair the feed and retry.
    pub fn advance(
        &mut self,
        tracks: &TrackSet,
        frames_available: u64,
    ) -> Result<Vec<WindowDecision>> {
        if frames_available < self.watermark {
            return Err(TmError::FrameRegression {
                frame: FrameIdx(frames_available),
                watermark: FrameIdx(self.watermark),
            });
        }
        tracks.validate()?;
        self.watermark = frames_available;
        let mut out = Vec::new();
        loop {
            let w = self.window(self.next_window);
            if w.end.get() > frames_available {
                break;
            }
            out.push(self.process_window(tracks, w)?);
            self.next_window += 1;
        }
        Ok(out)
    }

    /// Flushes the final (possibly partial) window at end of stream, then
    /// makes one last recovery attempt for any still-degraded windows.
    pub fn finish(&mut self, tracks: &TrackSet, total_frames: u64) -> Result<Vec<WindowDecision>> {
        let mut out = self.advance(tracks, total_frames)?;
        let w = self.window(self.next_window);
        if w.start.get() < total_frames {
            let clipped = Window {
                end: FrameIdx(total_frames.min(w.end.get())),
                half_end: FrameIdx(total_frames.min(w.half_end.get())),
                ..w
            };
            out.push(self.process_window(tracks, clipped)?);
            self.next_window += 1;
        }
        if !self.stash.is_empty() && !self.shed {
            self.session.set_epoch(self.next_window as u64);
            if self.session.backend_available() {
                if self.breaker.is_open() {
                    exec::emit_breaker_recovery(&self.obs, self.next_window as u64);
                }
                self.breaker.close();
                self.shed_recover = false;
                self.reverify_stash(tracks)?;
            }
        }
        Ok(out)
    }

    fn process_window(&mut self, tracks: &TrackSet, w: Window) -> Result<WindowDecision> {
        let span = self.obs.span("pipeline.window", self.session.elapsed_ms());
        // Extend the gate's plan over boxes that arrived since the last
        // window (no-op when the gate is off; prefix-stable, charges
        // nothing).
        self.session.gate_update_plan(tracks);
        // The window index is the fault epoch: deterministic fault plans
        // address outages to specific windows.
        self.session.set_epoch(w.index as u64);
        // Recovery runs only outside shed-load mode: while shedding, the
        // whole point is to not spend ReID, so an open breaker stays open
        // and the stash keeps growing until the caller un-sheds.
        if !self.shed {
            let breaker_recovery = self.breaker.is_open() && self.session.backend_available();
            let shed_recovery = self.shed_recover && self.session.backend_available();
            if breaker_recovery {
                self.breaker.close();
                exec::emit_breaker_recovery(&self.obs, w.index as u64);
            }
            if breaker_recovery || shed_recovery {
                self.shed_recover = false;
                self.reverify_stash(tracks)?;
            }
        }
        let cur_ids = tracks_in_first_half(tracks, &w);
        let mut pairs: Vec<TrackPair> = Vec::new();
        {
            let mut push = |a: TrackId, b: TrackId| {
                let (Some(ta), Some(tb)) = (tracks.get(a), tracks.get(b)) else {
                    return;
                };
                if ta.class != tb.class {
                    return;
                }
                if let Some(p) = TrackPair::new(a, b) {
                    if self.seen.insert(p) {
                        pairs.push(p);
                    }
                }
            };
            for (i, &a) in cur_ids.iter().enumerate() {
                for &b in &cur_ids[i + 1..] {
                    push(a, b);
                }
            }
            for &a in &cur_ids {
                for &b in &self.prev_ids {
                    push(a, b);
                }
            }
        }
        pairs.sort();
        self.prev_ids = cur_ids;

        let (candidates, mode) = if pairs.is_empty() {
            (Vec::new(), DecisionMode::Normal)
        } else if self.shed {
            // Shed-load mode: decide on spatio-temporal evidence only,
            // charging nothing, and stash the window for re-verification —
            // the same contract as a breaker-degraded window.
            let input = SelectionInput {
                pairs: &pairs,
                tracks,
                k: self.config.k,
                voi: None,
            };
            let provisional =
                exec::degrade_window(&input, &mut self.counters, &self.robustness, &self.obs)?;
            self.stash.push(StashedWindow {
                window: w,
                pairs: pairs.clone(),
                provisional: provisional.clone(),
            });
            (provisional, DecisionMode::Degraded)
        } else {
            let voi = match self.config.voi {
                VoiMode::Reweight => self.voi_hints.as_ref(),
                VoiMode::Off => None,
            };
            let input = SelectionInput {
                pairs: &pairs,
                tracks,
                k: self.config.k,
                voi,
            };
            match exec::select_or_degrade(
                &self.selector,
                &input,
                &mut self.session,
                &mut self.breaker,
                &mut self.counters,
                &self.robustness,
                &self.obs,
                w.index as u64,
            )? {
                WindowVerdict::Normal(r) => (r.candidates, DecisionMode::Normal),
                WindowVerdict::Degraded(provisional) => {
                    self.stash.push(StashedWindow {
                        window: w,
                        pairs: pairs.clone(),
                        provisional: provisional.clone(),
                    });
                    (provisional, DecisionMode::Degraded)
                }
            }
        };
        if mode == DecisionMode::Normal {
            for p in &candidates {
                self.uf.union(p.lo(), p.hi());
                self.merged_ids.push(*p);
            }
        }
        let decision = WindowDecision {
            window: w,
            n_pairs: pairs.len(),
            candidates,
            mode,
        };
        exec::emit_window_obs(
            &self.obs,
            w.index as u64,
            decision.n_pairs,
            &decision.candidates,
            decision.mode == DecisionMode::Degraded,
        );
        span.finish(self.session.elapsed_ms());
        self.decisions.push(decision.clone());
        Ok(decision)
    }

    /// Re-scores stashed windows with the (recovered) backend, in window
    /// order, committing their candidates for good. Selectors are stateless
    /// and per-window seeded, so a re-run reproduces exactly what the
    /// healthy run would have chosen. If the backend fails again the
    /// remaining windows stay provisional.
    fn reverify_stash(&mut self, tracks: &TrackSet) -> Result<()> {
        self.session.gate_update_plan(tracks);
        let pending = std::mem::take(&mut self.stash);
        let items: Vec<ReverifyItem<'_>> = pending
            .iter()
            .map(|sw| ReverifyItem {
                slot: sw.window.index,
                window_index: sw.window.index as u64,
                pairs: &sw.pairs,
            })
            .collect();
        let uf = &mut self.uf;
        let merged_ids = &mut self.merged_ids;
        let committed = exec::reverify_windows(
            &items,
            tracks,
            self.config.k,
            &self.selector,
            &mut self.session,
            &mut self.breaker,
            &mut self.counters,
            &self.obs,
            |_, r| {
                for p in &r.candidates {
                    uf.union(p.lo(), p.hi());
                    merged_ids.push(*p);
                }
            },
        )?;
        drop(items);
        self.stash.extend_from_slice(&pending[committed..]);
        Ok(())
    }

    /// The current relabelling implied by all merges: each merged group
    /// maps to its smallest id. Provisional (degraded, not yet re-verified)
    /// merges are included, so queries keep working through an outage.
    pub fn mapping(&mut self) -> HashMap<TrackId, TrackId> {
        if self.stash.is_empty() {
            return crate::union::merge_mapping(&self.merged_ids);
        }
        let mut all = self.merged_ids.clone();
        for sw in &self.stash {
            all.extend_from_slice(&sw.provisional);
        }
        crate::union::merge_mapping(&all)
    }

    /// All candidates committed so far (excludes provisional degraded
    /// merges awaiting re-verification).
    pub fn accepted(&self) -> &[TrackPair] {
        &self.merged_ids
    }

    /// Every decision emitted so far, in window order.
    pub fn decisions(&self) -> &[WindowDecision] {
        &self.decisions
    }

    /// Fault-handling counters so far (all zero on a clean stream).
    pub fn robustness(&self) -> RobustnessReport {
        let stats = self.session.stats();
        RobustnessReport {
            retries: stats.retries,
            backend_faults: stats.backend_faults,
            ..self.counters
        }
    }

    /// Simulated time consumed by the ReID session so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.session.elapsed_ms()
    }

    /// The session's gate decision counters (all-zero when the configured
    /// [`tm_reid::GatePolicy`] is `Off`).
    pub fn gate_stats(&self) -> tm_reid::GateStats {
        self.session.gate_stats()
    }

    /// The stream configuration this merger was built (or resumed) with.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Index of the next unprocessed window.
    pub fn next_window_index(&self) -> usize {
        self.next_window
    }

    /// High-water mark of `frames_available` seen so far.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Flips serve-level shed-load mode. While shed, every window is
    /// decided on the degraded spatio-temporal path (stash + provisional
    /// merges, zero ReID charges) and breaker recovery is suspended.
    /// Un-shedding with stashed windows pending arms a re-verification at
    /// the next processed window, exactly like breaker recovery.
    pub fn set_shed(&mut self, shed: bool) {
        if self.shed && !shed && !self.stash.is_empty() {
            self.shed_recover = true;
        }
        self.shed = shed;
    }

    /// Whether serve-level shed-load mode is active.
    pub fn is_shed(&self) -> bool {
        self.shed
    }

    /// Attaches (or clears) query-driven VoI hints for subsequent windows.
    /// Consumed only when the stream was configured with
    /// [`VoiMode::Reweight`]; under the default [`VoiMode::Off`] hints are
    /// ignored and the stream stays bit-identical to the query-agnostic
    /// merger. Degraded/shed windows and re-verification always run
    /// hint-free (full fidelity).
    pub fn set_voi_hints(&mut self, hints: Option<VoiHints>) {
        self.voi_hints = hints;
    }

    /// The currently attached VoI hints, if any.
    pub fn voi_hints(&self) -> Option<&VoiHints> {
        self.voi_hints.as_ref()
    }

    /// Whether the circuit breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// Probes whether the backend would accept work at the next window's
    /// epoch — the shed-load controller's recovery signal. Charges nothing
    /// and makes no inference; the epoch it sets is overwritten on the
    /// next processed window anyway.
    pub fn probe_backend(&mut self) -> bool {
        self.session.set_epoch(self.next_window as u64);
        self.session.backend_available()
    }

    /// Degraded windows currently stashed awaiting re-verification.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Size of the cross-window pair-dedup set.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// True when `pair` has already been examined by some processed window
    /// (committed or stashed). Unexamined pairs are the stream's
    /// still-plausible merge frontier — the anytime query layer's `hi`
    /// bound is built from them.
    pub fn pair_examined(&self, pair: &TrackPair) -> bool {
        self.seen.contains(pair)
    }

    /// Every pair belonging to a stashed (degraded, not yet re-verified)
    /// window. These remain undecided: re-verification re-runs the real
    /// selector on the full pair set, so any of them may still be merged.
    pub fn stash_pairs(&self) -> Vec<TrackPair> {
        self.stash
            .iter()
            .flat_map(|sw| sw.pairs.iter().copied())
            .collect()
    }

    /// The session's ReID work counters so far.
    pub fn reid_stats(&self) -> tm_reid::ReidStats {
        self.session.stats()
    }

    /// Features resident in the session cache.
    pub fn cached_features(&self) -> usize {
        self.session.cached_features()
    }

    /// What retention compaction has dropped so far.
    pub fn retention(&self) -> RetentionSummary {
        self.retention
    }

    /// Compacts state older than `horizon_start` (a frame index): folds
    /// old per-window decision entries into the [`RetentionSummary`],
    /// commits the provisional merges of stashed degraded windows that
    /// aged out un-reverified, prunes dedup pairs whose members are dead
    /// (absent from `tracks` or ended before the horizon), and evicts
    /// cached features no live window or pending stash can still touch.
    ///
    /// Compaction never changes the mapping: committed merges, the
    /// union-find and the watermark are untouched; only bookkeeping that
    /// the merging recurrence can no longer consult is dropped. `tracks`
    /// should be the caller's current (possibly already-pruned) feed.
    pub fn compact_before(
        &mut self,
        horizon_start: FrameIdx,
        tracks: &TrackSet,
    ) -> RetentionSummary {
        let mut delta = RetentionSummary::default();
        // Stashed degraded windows past the horizon: their re-verification
        // window has closed, so the provisional merges become permanent
        // (they were already visible in `mapping`; this only stops them
        // from being re-scored).
        let stash = std::mem::take(&mut self.stash);
        for sw in stash {
            if sw.window.end.get() <= horizon_start.get() {
                for p in &sw.provisional {
                    self.uf.union(p.lo(), p.hi());
                    self.merged_ids.push(*p);
                }
                delta.expired_stash_windows += 1;
            } else {
                self.stash.push(sw);
            }
        }
        self.decisions.retain(|d| {
            if d.window.end.get() <= horizon_start.get() {
                delta.compacted_windows += 1;
                delta.compacted_pairs += d.n_pairs as u64;
                delta.compacted_candidates += d.candidates.len() as u64;
                false
            } else {
                true
            }
        });
        // A pair can only re-form if one of its members shows up in a
        // future window's first half; a track that is gone from the feed
        // or ended before the horizon cannot. Pairs with at least one
        // live member stay, so re-examination protection is preserved for
        // everything still reachable.
        let dead = |id: TrackId| {
            tracks
                .get(id)
                .and_then(|t| t.last_frame())
                .is_none_or(|f| f.get() < horizon_start.get())
        };
        let before_seen = self.seen.len();
        self.seen.retain(|p| !(dead(p.lo()) && dead(p.hi())));
        delta.pruned_seen_pairs += (before_seen - self.seen.len()) as u64;
        // Features are recomputable (the model is pure), so eviction can
        // never change a decision — only future cache hits. Keep anything
        // a pending stash re-verification may still want.
        let guard = self
            .stash
            .iter()
            .map(|sw| sw.window.start.get())
            .min()
            .unwrap_or(horizon_start.get())
            .min(horizon_start.get());
        delta.evicted_features += self.session.evict_cached_before(FrameIdx(guard)) as u64;
        self.retention.accumulate(delta);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig, SelectorKind};
    use crate::tmerge::{TMerge, TMergeConfig};
    use tm_reid::{AppearanceConfig, CostModel, Device};
    use tm_types::{ids::classes, BBox, GtObjectId, Track, TrackBox};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 30, 0.0),
            track(2, 10, 80, 30, 160.0), // fragment of actor 10
            track(3, 11, 0, 40, 400.0),
            track(4, 12, 60, 40, 800.0),
            track(5, 13, 200, 40, 1200.0),
            track(6, 13, 280, 30, 1400.0), // fragment of actor 13
        ]);
        (model, tracks)
    }

    fn selector() -> TMerge {
        TMerge::new(TMergeConfig {
            tau_max: 1_500,
            seed: 4,
            ..TMergeConfig::default()
        })
    }

    fn config() -> StreamConfig {
        StreamConfig {
            window_len: 200,
            k: 0.1,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn rejects_odd_window() {
        let (model, _) = fixture();
        assert!(StreamingMerger::new(
            &model,
            CostModel::zero(),
            Device::Cpu,
            selector(),
            StreamConfig {
                window_len: 99,
                k: 0.1,
                ..StreamConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn advance_processes_only_elapsed_windows() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        // 150 frames available: window [0,200) has not elapsed yet.
        assert!(m.advance(&tracks, 150).unwrap().is_empty());
        let d = m.advance(&tracks, 250).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].window.index, 0);
        assert_eq!(d[0].mode, DecisionMode::Normal);
        // Re-advancing with the same frame count does nothing.
        assert!(m.advance(&tracks, 250).unwrap().is_empty());
    }

    #[test]
    fn regressing_watermark_is_a_clean_error() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        m.advance(&tracks, 250).unwrap();
        let before = m.accepted().len();
        let err = m.advance(&tracks, 100);
        assert!(
            matches!(
                err,
                Err(TmError::FrameRegression { frame, watermark })
                    if frame.get() == 100 && watermark.get() == 250
            ),
            "{err:?}"
        );
        // The failed call changed nothing; the stream continues normally.
        assert_eq!(m.accepted().len(), before);
        assert!(m.advance(&tracks, 250).unwrap().is_empty());
    }

    #[test]
    fn invalid_tracks_are_a_clean_error() {
        let (model, _) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let bad = TrackSet::from_tracks(vec![Track::with_boxes(
            TrackId(1),
            classes::PEDESTRIAN,
            vec![TrackBox::new(FrameIdx(0), BBox::new(0.0, 0.0, 0.0, 10.0))],
        )]);
        assert!(matches!(
            m.advance(&bad, 250),
            Err(TmError::InvalidTrack { .. })
        ));
        // Watermark did not move: the good feed can resume from scratch.
        let (_, tracks) = fixture();
        assert_eq!(m.advance(&tracks, 250).unwrap().len(), 1);
    }

    #[test]
    fn empty_windows_decide_nothing() {
        let (model, _) = fixture();
        // All activity is in frames 600+, so the first windows are empty.
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 600, 30, 0.0),
            track(2, 10, 680, 30, 160.0),
        ]);
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let d = m.advance(&tracks, 400).unwrap();
        assert_eq!(d.len(), 3);
        for dec in &d {
            assert_eq!(dec.n_pairs, 0);
            assert!(dec.candidates.is_empty());
            assert_eq!(dec.mode, DecisionMode::Normal);
        }
        assert!(m.mapping().is_empty());
    }

    #[test]
    fn zero_admissible_pairs_is_fine() {
        let (model, _) = fixture();
        // Two tracks of different classes: no admissible pair ever forms.
        let mut car = track(2, 20, 0, 30, 300.0);
        car.class = classes::CAR;
        let tracks = TrackSet::from_tracks(vec![track(1, 10, 0, 30, 0.0), car]);
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let d = m.finish(&tracks, 200).unwrap();
        assert!(d.iter().all(|dec| dec.n_pairs == 0));
        assert!(m.accepted().is_empty());
        assert_eq!(m.elapsed_ms(), 0.0);
    }

    #[test]
    fn video_shorter_than_one_window() {
        let (model, _) = fixture();
        let tracks =
            TrackSet::from_tracks(vec![track(1, 10, 0, 20, 0.0), track(2, 10, 50, 20, 110.0)]);
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        // 80 frames < L = 200: advance can never process a full window…
        assert!(m.advance(&tracks, 80).unwrap().is_empty());
        // …but finish clips the window to the stream and still decides it.
        let d = m.finish(&tracks, 80).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].window.end.get(), 80);
        let poly = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        assert!(m.accepted().contains(&poly), "{:?}", m.accepted());
    }

    #[test]
    fn streaming_finds_fragments_incrementally() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let mut decisions = Vec::new();
        for frames in [200, 300, 320, 400] {
            decisions.extend(m.advance(&tracks, frames).unwrap());
        }
        decisions.extend(m.finish(&tracks, 400).unwrap());
        let early = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        assert!(
            m.accepted().contains(&early),
            "early fragment pair not merged: {:?}",
            m.accepted()
        );
        let late = TrackPair::new(TrackId(5), TrackId(6)).unwrap();
        assert!(
            m.accepted().contains(&late),
            "late fragment pair not merged: {:?}",
            m.accepted()
        );
        // The mapping merges both groups.
        let mapping = m.mapping();
        assert_eq!(mapping.get(&TrackId(2)), Some(&TrackId(1)));
        assert_eq!(mapping.get(&TrackId(6)), Some(&TrackId(5)));
        // The decision log matches what the calls returned.
        assert_eq!(m.decisions(), &decisions[..]);
        assert_eq!(m.robustness(), RobustnessReport::default());
    }

    #[test]
    fn no_pair_is_examined_twice_across_windows() {
        let (model, tracks) = fixture();
        let mut m =
            StreamingMerger::new(&model, CostModel::zero(), Device::Cpu, selector(), config())
                .unwrap();
        let mut seen = BTreeSet::new();
        let mut decisions = m.advance(&tracks, 400).unwrap();
        decisions.extend(m.finish(&tracks, 400).unwrap());
        for d in &decisions {
            for p in crate::pairs::build_window_pairs(&tracks, 400, 200)
                .unwrap()
                .iter()
                .filter(|wp| wp.window.index == d.window.index)
                .flat_map(|wp| &wp.pairs)
            {
                assert!(seen.insert(*p), "pair {p} seen twice");
            }
        }
    }

    #[test]
    fn window_lifecycle_reaches_the_recorder() {
        use std::sync::Arc;
        let (model, tracks) = fixture();
        let rec = Arc::new(tm_obs::Recorder::new());
        let (n_windows, n_candidates) = tm_obs::scoped(tm_obs::Obs::new(rec.clone()), || {
            let mut m = StreamingMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                selector(),
                config(),
            )
            .unwrap();
            m.advance(&tracks, 400).unwrap();
            m.finish(&tracks, 400).unwrap();
            (m.decisions().len() as u64, m.accepted().len() as u64)
        });
        assert_eq!(rec.counter_value("pipeline.windows"), n_windows);
        assert_eq!(rec.counter_value("pipeline.candidates"), n_candidates);
        assert_eq!(rec.counter_value("event.window"), n_windows);
        let span = rec.sim_hist("pipeline.window").expect("window spans");
        assert_eq!(span.count, n_windows);
        // A clean stream trips nothing.
        assert_eq!(rec.counter_value("pipeline.windows_degraded"), 0);
        assert_eq!(rec.counter_value("pipeline.breaker_trips"), 0);
    }

    #[test]
    fn streaming_matches_offline_pipeline() {
        let (model, tracks) = fixture();
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            config(),
        )
        .unwrap();
        // Feed in irregular increments.
        for frames in [100, 230, 390, 400] {
            m.advance(&tracks, frames).unwrap();
        }
        m.finish(&tracks, 400).unwrap();

        let offline = run_pipeline(
            &tracks,
            400,
            &model,
            &PipelineConfig {
                window_len: 200,
                k: 0.1,
                selector: SelectorKind::TMerge(TMergeConfig {
                    tau_max: 1_500,
                    seed: 4,
                    ..TMergeConfig::default()
                }),
                device: Device::Cpu,
                cost: CostModel::calibrated(),
                gate: GatePolicy::Off,
                voi: VoiMode::Off,
            },
            None,
        )
        .unwrap();
        let mut streaming: Vec<TrackPair> = m.accepted().to_vec();
        let mut batch: Vec<TrackPair> = offline.candidates.clone();
        streaming.sort();
        batch.sort();
        assert_eq!(streaming, batch, "streaming and offline disagree");
        assert!((m.elapsed_ms() - offline.elapsed_ms).abs() < 1e-6);
    }

    #[test]
    fn gated_streaming_matches_gated_offline_pipeline() {
        let (model, tracks) = fixture();
        let gate = GatePolicy::On(tm_reid::GateConfig::default());
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            StreamConfig {
                window_len: 200,
                k: 0.1,
                gate,
                voi: VoiMode::Off,
            },
        )
        .unwrap();
        for frames in [100, 230, 390, 400] {
            m.advance(&tracks, frames).unwrap();
        }
        m.finish(&tracks, 400).unwrap();

        let offline = run_pipeline(
            &tracks,
            400,
            &model,
            &PipelineConfig {
                window_len: 200,
                k: 0.1,
                selector: SelectorKind::TMerge(TMergeConfig {
                    tau_max: 1_500,
                    seed: 4,
                    ..TMergeConfig::default()
                }),
                device: Device::Cpu,
                cost: CostModel::calibrated(),
                gate,
                voi: VoiMode::Off,
            },
            None,
        )
        .unwrap();
        let mut streaming: Vec<TrackPair> = m.accepted().to_vec();
        let mut batch: Vec<TrackPair> = offline.candidates.clone();
        streaming.sort();
        batch.sort();
        assert_eq!(streaming, batch, "gated streaming and offline disagree");
        // The full track set is fed from the first advance, so the
        // incrementally built plan equals the batch plan and the gated
        // clocks agree bit-for-bit.
        assert!((m.elapsed_ms() - offline.elapsed_ms).abs() < 1e-6);
        assert!(m.session.gate_stats().saved_charges() > 0);
    }
}
