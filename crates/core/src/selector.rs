//! The shared interface of the candidate-selection algorithms.
//!
//! Every algorithm compared in the paper (§V-B) — BL, PS, LCB, TMerge, and
//! their batched `-B` variants — consumes a window's pair set plus the
//! budget parameter `K` and produces the estimated top-`⌈K·|P_c|⌉`
//! polyonymous track-pair candidates, `P̂*_{c|K}`.

use crate::voi::VoiHints;
use std::collections::HashMap;
use tm_reid::ReidSession;
use tm_types::{Result, TrackPair, TrackSet};

/// Input to a selection run: one window's pair set.
#[derive(Debug, Clone, Copy)]
pub struct SelectionInput<'a> {
    /// The pair set `P_c`.
    pub pairs: &'a [TrackPair],
    /// The tracks referenced by the pairs (with their boxes).
    pub tracks: &'a TrackSet,
    /// The budget fraction `K ∈ [0, 1]`.
    pub k: f64,
    /// Query-driven value-of-information weights ([`crate::voi`]). `None`
    /// (the historical default) selects query-agnostically; `Some` makes
    /// the bandit selectors prioritize high-weight pairs and skip
    /// weight-0 (deferred) pairs entirely.
    pub voi: Option<&'a VoiHints>,
}

impl SelectionInput<'_> {
    /// The candidate-set size `m = ⌈K·|P_c|⌉` (at most `|P_c|`).
    pub fn m(&self) -> usize {
        ((self.k.clamp(0.0, 1.0) * self.pairs.len() as f64).ceil() as usize).min(self.pairs.len())
    }
}

/// Output of a selection run.
#[derive(Debug, Clone, Default)]
pub struct SelectionResult {
    /// The estimated top-`m` polyonymous candidates `P̂*_{c|K}`.
    pub candidates: Vec<TrackPair>,
    /// The algorithm's final (normalized) score estimate per pair; lower
    /// means more likely polyonymous. Exact for BL, sampled means for
    /// PS/LCB, posterior means for TMerge.
    pub scores: HashMap<TrackPair, f64>,
    /// Number of BBox-pair distance evaluations performed (the paper's
    /// iteration count `τ`).
    pub distance_evals: u64,
    /// The normalized distances observed per iteration, when the algorithm
    /// was asked to record them (used for the regret analysis, §IV-E).
    pub history: Vec<f64>,
}

/// A candidate-selection algorithm. The [`ReidSession`] provides distances
/// and carries all cost accounting; selectors must route every model
/// invocation through it.
///
/// Selectors are `Send + Sync` so the parallel pipeline and the experiment
/// engine can share one boxed selector across worker threads. All mutable
/// per-run state (RNGs, posteriors) lives inside `select`, which seeds a
/// fresh RNG from the configured seed per call — so a shared selector is
/// indistinguishable from a per-thread instance. That statelessness is also
/// what makes degraded-mode recovery possible: re-running `select` on a
/// stashed window after a backend outage reproduces exactly the result a
/// healthy run would have produced.
pub trait CandidateSelector: Send + Sync {
    /// Display name for tables/figures (e.g. "TMerge", "BL").
    fn name(&self) -> String;

    /// Short lowercase slug for counter names — the same slug each
    /// selector already uses for its `selector.<slug>.selections`
    /// counter. Labels per-selector gate attribution
    /// (`reid.gate.saved_charges.<slug>`).
    fn obs_slug(&self) -> &'static str {
        "selector"
    }

    /// Runs selection on one window's pair set.
    ///
    /// Errors surface problems the selector cannot make progress past:
    /// pairs referencing tracks absent from the set
    /// ([`tm_types::TmError::UnknownTrack`]) or a ReID backend that stayed
    /// down through every retry ([`tm_types::TmError::ReidBackend`]). On
    /// error the session's clock retains whatever work was charged before
    /// the failure — callers that retry must snapshot/restore the session
    /// if they need the failed attempt rolled back.
    fn select(
        &self,
        input: &SelectionInput<'_>,
        session: &mut ReidSession<'_>,
    ) -> Result<SelectionResult>;
}

/// Ranks pairs by ascending score (ties broken by pair order for
/// determinism) and returns the top-`m` — Eq. (6)/(7) of the paper.
pub fn top_m_by_score(scores: &[(TrackPair, f64)], m: usize) -> Vec<TrackPair> {
    let mut ranked: Vec<(TrackPair, f64)> = scores.to_vec();
    ranked.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked.into_iter().take(m).map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::TrackId;

    fn pair(a: u64, b: u64) -> TrackPair {
        TrackPair::new(TrackId(a), TrackId(b)).unwrap()
    }

    #[test]
    fn m_is_ceil_of_fraction() {
        let pairs: Vec<TrackPair> = (0..10).map(|i| pair(i, i + 100)).collect();
        let tracks = TrackSet::new();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.05,
            voi: None,
        };
        assert_eq!(input.m(), 1); // ⌈0.5⌉
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.25,
            voi: None,
        };
        assert_eq!(input.m(), 3); // ⌈2.5⌉
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0,
            voi: None,
        };
        assert_eq!(input.m(), 10);
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 0.0,
            voi: None,
        };
        assert_eq!(input.m(), 0);
    }

    #[test]
    fn m_clamps_out_of_range_k() {
        let pairs: Vec<TrackPair> = (0..4).map(|i| pair(i, i + 100)).collect();
        let tracks = TrackSet::new();
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 2.0,
            voi: None,
        };
        assert_eq!(input.m(), 4);
    }

    #[test]
    fn top_m_sorts_ascending_with_deterministic_ties() {
        let scores = vec![
            (pair(1, 2), 0.5),
            (pair(3, 4), 0.1),
            (pair(5, 6), 0.5),
            (pair(7, 8), 0.3),
        ];
        let top = top_m_by_score(&scores, 3);
        assert_eq!(top, vec![pair(3, 4), pair(7, 8), pair(1, 2)]);
    }

    #[test]
    fn top_m_with_m_zero_is_empty() {
        assert!(top_m_by_score(&[(pair(1, 2), 0.1)], 0).is_empty());
    }
}
