//! Half-overlapping windows over a video (§II of the paper).
//!
//! The video is partitioned into windows of `L` frames that overlap their
//! predecessor by `L/2`, so window `c` starts at frame `c·L/2`. With
//! `L ≥ 2·L_max` (the longest GT track), no GT track can span more than two
//! consecutive windows, which is what makes the pair set of Eq. (1)
//! complete: every possible polyonymous pair co-exists in some window or in
//! two neighbouring ones.

use serde::{Deserialize, Serialize};
use tm_types::{FrameIdx, Result, TmError};

/// One window `W_c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// The window index `c` (0-based).
    pub index: usize,
    /// First frame of the window (inclusive).
    pub start: FrameIdx,
    /// One past the last frame of the window (exclusive, clipped to the
    /// video length).
    pub end: FrameIdx,
    /// One past the last frame of the window's *first half* (exclusive) —
    /// the span whose tracks form `T_c`.
    pub half_end: FrameIdx,
}

impl Window {
    /// Window length in frames.
    pub fn len(&self) -> u64 {
        self.end.get() - self.start.get()
    }

    /// True for zero-length windows (possible only past the video end).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Splits a video of `n_frames` frames into half-overlapping windows of
/// length `window_len` (the paper's `L`, which must be even and positive).
///
/// Every frame of the video is covered by at least one window's first half,
/// and consecutive windows overlap by exactly `L/2` frames.
///
/// ```
/// use tm_core::windows;
/// let ws = windows(5000, 2000).unwrap();
/// assert_eq!(ws[0].start.get(), 0);
/// assert_eq!(ws[1].start.get(), 1000); // half-overlap
/// assert!(windows(5000, 999).is_err()); // L must be even
/// ```
pub fn windows(n_frames: u64, window_len: u64) -> Result<Vec<Window>> {
    if window_len == 0 {
        return Err(TmError::invalid("window_len", "must be positive"));
    }
    if !window_len.is_multiple_of(2) {
        return Err(TmError::invalid(
            "window_len",
            "must be even (windows half-overlap)",
        ));
    }
    let half = window_len / 2;
    let mut out = Vec::new();
    let mut start = 0u64;
    let mut index = 0usize;
    while start < n_frames || (index == 0 && n_frames == 0) {
        let end = (start + window_len).min(n_frames);
        let half_end = (start + half).min(n_frames);
        out.push(Window {
            index,
            start: FrameIdx(start),
            end: FrameIdx(end),
            half_end: FrameIdx(half_end),
        });
        if n_frames == 0 {
            break;
        }
        start += half;
        index += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_lengths() {
        assert!(windows(100, 0).is_err());
        assert!(windows(100, 7).is_err());
    }

    #[test]
    fn windows_half_overlap() {
        let ws = windows(5000, 2000).unwrap();
        assert_eq!(ws[0].start, FrameIdx(0));
        assert_eq!(ws[0].end, FrameIdx(2000));
        assert_eq!(ws[0].half_end, FrameIdx(1000));
        assert_eq!(ws[1].start, FrameIdx(1000));
        assert_eq!(ws[1].end, FrameIdx(3000));
        // Overlap between consecutive windows is exactly L/2.
        for pair in ws.windows(2) {
            let overlap = pair[0].end.get().saturating_sub(pair[1].start.get());
            if pair[1].end.get() - pair[1].start.get() == 2000 {
                assert_eq!(overlap, 1000);
            }
        }
    }

    #[test]
    fn every_frame_in_some_first_half() {
        let n = 5300;
        let ws = windows(n, 2000).unwrap();
        let mut covered = vec![false; n as usize];
        for w in &ws {
            for f in w.start.get()..w.half_end.get() {
                covered[f as usize] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "some frame missed all first halves"
        );
    }

    #[test]
    fn short_video_single_window() {
        let ws = windows(500, 2000).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].end, FrameIdx(500));
        assert_eq!(ws[0].half_end, FrameIdx(500));
        assert_eq!(ws[0].len(), 500);
    }

    #[test]
    fn exact_multiple_has_no_trailing_empty_window() {
        let ws = windows(2000, 2000).unwrap();
        // Windows start at 0 and 1000; next would start at 2000 (= n) and
        // must not exist.
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn zero_frames_yields_one_empty_window() {
        let ws = windows(0, 2000).unwrap();
        assert_eq!(ws.len(), 1);
        assert!(ws[0].is_empty());
    }
}
