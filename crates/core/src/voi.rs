//! Query-driven value-of-information (VoI) hints for candidate selection.
//!
//! The anytime query layer (`tm-query::anytime`) analyses a query against
//! the current track set and scores every admissible pair by how much the
//! query answer could move if that pair turned out to be polyonymous —
//! TRACER's idea of pushing query-level value down into which inferences to
//! run. `tm-core` stays query-agnostic: it only consumes the resulting
//! per-pair weights through [`VoiHints`], and only when the pipeline or
//! stream is explicitly switched into [`VoiMode::Reweight`].
//!
//! Semantics inside the selectors (TMerge / LCB):
//!
//! * weight `0.0` — **deferred**: the pair provably cannot change the
//!   answer. The selector never plays the arm and never emits it as a
//!   candidate; the distance charges it would have cost become headroom,
//!   exactly like PR 7's gating (`reid.gate.saved_charges`).
//! * weight in `(0.0, 1.0]` — a soft priority. The selector adds
//!   `1.0 - weight` to every Thompson draw (or LCB index; both rank
//!   ascending, lower first), so low-weight arms only win a round when
//!   every high-weight arm drew badly — exploration concentrates on the
//!   pairs that can move the answer, without ever starving the rest.
//! * an absent pair defaults to weight `1.0` — full priority, no deferral —
//!   so hints are always sound to drop.

use std::collections::HashMap;
use tm_types::TrackPair;

/// Whether (and how) a pipeline or stream consumes [`VoiHints`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VoiMode {
    /// Query-agnostic selection (the historical behavior; default).
    #[default]
    Off,
    /// Reweight bandit arm selection by the attached [`VoiHints`] and
    /// defer weight-0 pairs entirely.
    Reweight,
}

impl VoiMode {
    /// Stable encoding for checkpoints (`TMCK` v6 config word).
    pub fn to_word(self) -> u64 {
        match self {
            VoiMode::Off => 0,
            VoiMode::Reweight => 1,
        }
    }

    /// Inverse of [`VoiMode::to_word`]; `None` on an unknown word.
    pub fn from_word(w: u64) -> Option<Self> {
        match w {
            0 => Some(VoiMode::Off),
            1 => Some(VoiMode::Reweight),
            _ => None,
        }
    }
}

/// Per-pair value-of-information weights, computed by the query layer.
///
/// Weights are clamped to `[0, 1]` on insertion. Pairs without an entry
/// default to full weight `1.0` (select as usual).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VoiHints {
    weights: HashMap<TrackPair, f64>,
}

impl VoiHints {
    /// An empty hint set (every pair at full weight).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the weight of `pair` (clamped to `[0, 1]`; NaN becomes 1.0).
    pub fn set(&mut self, pair: TrackPair, weight: f64) {
        let w = if weight.is_nan() {
            1.0
        } else {
            weight.clamp(0.0, 1.0)
        };
        self.weights.insert(pair, w);
    }

    /// The weight of `pair` (1.0 when unhinted).
    pub fn weight(&self, pair: &TrackPair) -> f64 {
        self.weights.get(pair).copied().unwrap_or(1.0)
    }

    /// True when `pair` is provably irrelevant to the query and must be
    /// skipped entirely.
    pub fn deferred(&self, pair: &TrackPair) -> bool {
        self.weight(pair) == 0.0
    }

    /// The additive rank bias for `pair`: `1.0 - weight`, so higher-value
    /// pairs sort first under the selectors' ascending-score ranking.
    pub fn bias(&self, pair: &TrackPair) -> f64 {
        1.0 - self.weight(pair)
    }

    /// Number of explicitly hinted pairs.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no pair is hinted.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Count of hinted pairs with weight 0 among `pairs`.
    pub fn deferred_among(&self, pairs: &[TrackPair]) -> u64 {
        pairs.iter().filter(|p| self.deferred(p)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::TrackId;

    fn pair(a: u64, b: u64) -> TrackPair {
        TrackPair::new(TrackId(a), TrackId(b)).unwrap()
    }

    #[test]
    fn unhinted_pairs_have_full_weight() {
        let h = VoiHints::new();
        assert_eq!(h.weight(&pair(1, 2)), 1.0);
        assert!(!h.deferred(&pair(1, 2)));
        assert_eq!(h.bias(&pair(1, 2)), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn weights_clamp_and_bias_inverts() {
        let mut h = VoiHints::new();
        h.set(pair(1, 2), 0.25);
        h.set(pair(3, 4), -2.0);
        h.set(pair(5, 6), 7.0);
        h.set(pair(7, 8), f64::NAN);
        assert_eq!(h.weight(&pair(1, 2)), 0.25);
        assert_eq!(h.bias(&pair(1, 2)), 0.75);
        assert_eq!(h.weight(&pair(3, 4)), 0.0);
        assert!(h.deferred(&pair(3, 4)));
        assert_eq!(h.weight(&pair(5, 6)), 1.0);
        assert_eq!(h.weight(&pair(7, 8)), 1.0);
        assert_eq!(h.len(), 4);
        assert_eq!(h.deferred_among(&[pair(1, 2), pair(3, 4), pair(9, 10)]), 1);
    }

    #[test]
    fn mode_words_round_trip() {
        for mode in [VoiMode::Off, VoiMode::Reweight] {
            assert_eq!(VoiMode::from_word(mode.to_word()), Some(mode));
        }
        assert_eq!(VoiMode::from_word(99), None);
        assert_eq!(VoiMode::default(), VoiMode::Off);
    }
}
