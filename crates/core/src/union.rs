//! Merge application: union-find over track ids.
//!
//! Accepted candidate pairs are merged transitively — if `(a, b)` and
//! `(b, c)` are both accepted, all three tracks receive one id. Each group
//! is relabelled to its smallest member id, matching how
//! [`tm_types::TrackSet::relabeled`] consumes the mapping.

use std::collections::HashMap;
use tm_types::{TrackId, TrackPair};

/// Union-find (disjoint sets) over [`TrackId`]s with path compression and
/// union by size.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: HashMap<TrackId, TrackId>,
    size: HashMap<TrackId, usize>,
}

impl UnionFind {
    /// An empty structure; ids are added lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The representative of `id`'s set.
    pub fn find(&mut self, id: TrackId) -> TrackId {
        let parent = *self.parent.entry(id).or_insert(id);
        if parent == id {
            return id;
        }
        let root = self.find(parent);
        self.parent.insert(id, root);
        root
    }

    /// Merges the sets containing `a` and `b`. Returns the new root.
    pub fn union(&mut self, a: TrackId, b: TrackId) -> TrackId {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let sa = *self.size.get(&ra).unwrap_or(&1);
        let sb = *self.size.get(&rb).unwrap_or(&1);
        let (big, small) = if sa >= sb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(small, big);
        self.size.insert(big, sa + sb);
        big
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: TrackId, b: TrackId) -> bool {
        self.find(a) == self.find(b)
    }

    /// All ids ever touched, grouped by set.
    pub fn groups(&mut self) -> Vec<Vec<TrackId>> {
        let ids: Vec<TrackId> = self.parent.keys().copied().collect();
        let mut by_root: HashMap<TrackId, Vec<TrackId>> = HashMap::new();
        for id in ids {
            let root = self.find(id);
            by_root.entry(root).or_default().push(id);
        }
        let mut groups: Vec<Vec<TrackId>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort();
        }
        groups.sort();
        groups
    }
}

/// Builds the relabelling mapping implied by a set of accepted merge pairs:
/// every track in a merged group maps to the group's smallest id. Ids not
/// involved in any pair are absent (identity).
///
/// ```
/// use tm_core::merge_mapping;
/// use tm_types::{TrackId, TrackPair};
/// let pair = |a, b| TrackPair::new(TrackId(a), TrackId(b)).unwrap();
/// let mapping = merge_mapping(&[pair(3, 7), pair(7, 9)]);
/// assert_eq!(mapping[&TrackId(7)], TrackId(3));
/// assert_eq!(mapping[&TrackId(9)], TrackId(3));
/// ```
pub fn merge_mapping(accepted: &[TrackPair]) -> HashMap<TrackId, TrackId> {
    let mut uf = UnionFind::new();
    for p in accepted {
        uf.union(p.lo(), p.hi());
    }
    let mut mapping = HashMap::new();
    for group in uf.groups() {
        let target = group[0];
        for &id in &group[1..] {
            mapping.insert(id, target);
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u64, b: u64) -> TrackPair {
        TrackPair::new(TrackId(a), TrackId(b)).unwrap()
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new();
        assert!(!uf.connected(TrackId(1), TrackId(2)));
        uf.union(TrackId(1), TrackId(2));
        assert!(uf.connected(TrackId(1), TrackId(2)));
        uf.union(TrackId(3), TrackId(4));
        assert!(!uf.connected(TrackId(1), TrackId(3)));
        uf.union(TrackId(2), TrackId(3));
        assert!(uf.connected(TrackId(1), TrackId(4)));
    }

    #[test]
    fn mapping_targets_smallest_id() {
        let mapping = merge_mapping(&[pair(7, 3), pair(7, 9)]);
        assert_eq!(mapping.get(&TrackId(7)), Some(&TrackId(3)));
        assert_eq!(mapping.get(&TrackId(9)), Some(&TrackId(3)));
        assert_eq!(
            mapping.get(&TrackId(3)),
            None,
            "root maps to itself implicitly"
        );
    }

    #[test]
    fn transitive_chains_collapse() {
        let mapping = merge_mapping(&[pair(1, 2), pair(2, 3), pair(3, 4), pair(10, 11)]);
        for id in [2, 3, 4] {
            assert_eq!(mapping.get(&TrackId(id)), Some(&TrackId(1)));
        }
        assert_eq!(mapping.get(&TrackId(11)), Some(&TrackId(10)));
        assert_eq!(mapping.len(), 4);
    }

    #[test]
    fn empty_input_empty_mapping() {
        assert!(merge_mapping(&[]).is_empty());
    }

    #[test]
    fn groups_are_sorted_and_complete() {
        let mut uf = UnionFind::new();
        uf.union(TrackId(5), TrackId(1));
        uf.union(TrackId(9), TrackId(5));
        uf.find(TrackId(7)); // singleton
        let groups = uf.groups();
        assert_eq!(
            groups,
            vec![vec![TrackId(1), TrackId(5), TrackId(9)], vec![TrackId(7)],]
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mapping_is_idempotent_and_decreasing(
                edges in proptest::collection::vec((0u64..30, 0u64..30), 0..40)
            ) {
                let pairs: Vec<TrackPair> = edges
                    .into_iter()
                    .filter_map(|(a, b)| TrackPair::new(TrackId(a), TrackId(b)))
                    .collect();
                let mapping = merge_mapping(&pairs);
                for (from, to) in &mapping {
                    // Targets are strictly smaller and are themselves roots.
                    prop_assert!(to < from);
                    prop_assert!(!mapping.contains_key(to));
                }
                // Connectivity is preserved: both ends of each accepted pair
                // resolve to the same final id.
                let resolve = |id: TrackId| *mapping.get(&id).unwrap_or(&id);
                for p in &pairs {
                    prop_assert_eq!(resolve(p.lo()), resolve(p.hi()));
                }
            }
        }
    }
}
