//! The end-to-end ingestion pipeline: window → select candidates → merge.
//!
//! This is TMerge as deployed (§I, §V-H): a pre-processing step between the
//! tracker and downstream query processing. The pipeline walks the video's
//! half-overlapping windows, runs a candidate selector on each window's
//! pair set (sharing one ReID session per video so features are reused
//! across windows), optionally verifies candidates (the paper's "further
//! human inspection" — supplied as a callback), and applies the accepted
//! merges via union-find.
//!
//! [`run_pipeline_with_backend`] is the fault-tolerant entry point: the
//! ReID model is reached through an [`InferenceBackend`], failed windows
//! fall back to degraded spatio-temporal selection behind a circuit
//! breaker, and degraded windows are re-scored with real ReID once the
//! backend recovers. [`run_pipeline`] is the same machinery with the model
//! itself as the (never-failing) backend.

use crate::baseline::Baseline;
use crate::exec::{self, ReverifyItem, WindowVerdict};
use crate::lcb::{LcbConfig, LowerConfidenceBound};
use crate::pairs::{build_window_pairs, WindowPairs};
use crate::ps::{ProportionalSampling, PsConfig};
use crate::resilience::{Breaker, RobustnessConfig, RobustnessReport};
use crate::selector::{CandidateSelector, SelectionInput};
use crate::tmerge::{TMerge, TMergeConfig};
use crate::union::merge_mapping;
use crate::voi::{VoiHints, VoiMode};
use std::sync::Arc;
use tm_obs::Obs;
use tm_reid::{
    AppearanceModel, CostModel, Device, GatePlan, GatePolicy, InferenceBackend, ReidSession,
    ReidStats, SharedFeatureCache,
};
use tm_types::{Result, TrackPair, TrackSet};

/// Which candidate-selection algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectorKind {
    /// The exact baseline (Algorithm 1).
    Baseline,
    /// Proportional stratified sampling.
    Ps(PsConfig),
    /// Lower-confidence-bound bandit.
    Lcb(LcbConfig),
    /// Thompson sampling (the paper's contribution).
    TMerge(TMergeConfig),
}

impl SelectorKind {
    /// Instantiates the selector.
    pub fn build(&self) -> Box<dyn CandidateSelector> {
        match self {
            SelectorKind::Baseline => Box::new(Baseline),
            SelectorKind::Ps(c) => Box::new(ProportionalSampling::new(*c)),
            SelectorKind::Lcb(c) => Box::new(LowerConfidenceBound::new(*c)),
            SelectorKind::TMerge(c) => Box::new(TMerge::new(*c)),
        }
    }

    /// The per-window evaluation budget `τ_max`, for the bandit selectors
    /// that have one (`None` for Baseline/PS, which are budgeted by `K`).
    pub fn tau_max(&self) -> Option<u64> {
        match self {
            SelectorKind::Lcb(c) => Some(c.tau_max),
            SelectorKind::TMerge(c) => Some(c.tau_max),
            _ => None,
        }
    }

    /// A copy with the per-window budget clamped to at most `tau` (no-op
    /// for selectors without a `τ_max`). The anytime query driver uses this
    /// to stop a window's selection exactly at the remaining global budget.
    pub fn with_tau_at_most(&self, tau: u64) -> SelectorKind {
        match *self {
            SelectorKind::Lcb(mut c) => {
                c.tau_max = c.tau_max.min(tau);
                SelectorKind::Lcb(c)
            }
            SelectorKind::TMerge(mut c) => {
                c.tau_max = c.tau_max.min(tau);
                SelectorKind::TMerge(c)
            }
            other => other,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Window length `L` (frames, even).
    pub window_len: u64,
    /// Candidate budget `K`.
    pub k: f64,
    /// The selection algorithm.
    pub selector: SelectorKind,
    /// Device the ReID session runs on (CPU, or GPU for `-B` variants).
    pub device: Device,
    /// Simulated cost constants.
    pub cost: CostModel,
    /// Selective feature extraction (DESIGN.md §14). `Off` (the default)
    /// is bit-identical to the pre-gating pipeline.
    pub gate: GatePolicy,
    /// Query-driven value-of-information mode (DESIGN.md §17). `Off` (the
    /// default) is bit-identical to the query-agnostic pipeline; `Reweight`
    /// consumes attached [`VoiHints`] in the selectors.
    pub voi: VoiMode,
}

impl Default for PipelineConfig {
    /// The paper's defaults: `L = 2000`, `K = 5%`, TMerge on CPU.
    fn default() -> Self {
        Self {
            window_len: 2000,
            k: 0.05,
            selector: SelectorKind::TMerge(TMergeConfig::default()),
            device: Device::Cpu,
            cost: CostModel::calibrated(),
            gate: GatePolicy::Off,
            voi: VoiMode::Off,
        }
    }
}

/// What one pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The corrected track set (candidates merged).
    pub merged: TrackSet,
    /// Every candidate pair the selector proposed, across windows.
    pub candidates: Vec<TrackPair>,
    /// Candidates that survived verification and were merged.
    pub accepted: Vec<TrackPair>,
    /// Total pairs examined (`Σ_c |P_c|`).
    pub n_pairs: usize,
    /// Total distance evaluations across windows.
    pub distance_evals: u64,
    /// Simulated processing time, milliseconds.
    pub elapsed_ms: f64,
    /// ReID work counters.
    pub stats: ReidStats,
    /// Fault-handling counters (all zero on a clean run).
    pub robustness: RobustnessReport,
}

impl PipelineReport {
    /// Frames processed per simulated second (the paper's *FPS* metric).
    pub fn fps(&self, n_frames: u64) -> f64 {
        if self.elapsed_ms <= 0.0 {
            f64::INFINITY
        } else {
            n_frames as f64 / (self.elapsed_ms / 1000.0)
        }
    }
}

/// Runs the full merging pipeline over a video's tracker output.
///
/// `verifier`, when provided, plays the role of the paper's optional human
/// inspection: only candidates it accepts are merged. Pass `None` to merge
/// every candidate.
pub fn run_pipeline(
    tracks: &TrackSet,
    n_frames: u64,
    model: &AppearanceModel,
    config: &PipelineConfig,
    verifier: Option<&dyn Fn(&TrackPair) -> bool>,
) -> Result<PipelineReport> {
    // The model itself is an always-available backend, so this is the
    // fault-tolerant walk with the fault path never taken.
    run_pipeline_with_backend(
        tracks,
        n_frames,
        model,
        config,
        verifier,
        model,
        &RobustnessConfig::default(),
    )
}

/// Re-scores still-degraded windows with the (recovered) backend, in window
/// order, at the session's current epoch (the window walk shared with the
/// streaming merger lives in `crate::exec`). A window that fails again —
/// along with every window after it — stays provisional in `stash`.
#[allow(clippy::too_many_arguments)]
fn reverify_pending(
    stash: &mut Vec<usize>,
    windows: &[WindowPairs],
    tracks: &TrackSet,
    k: f64,
    selector: &dyn CandidateSelector,
    session: &mut ReidSession<'_>,
    breaker: &mut Breaker,
    slots: &mut [Vec<TrackPair>],
    distance_evals: &mut u64,
    report: &mut RobustnessReport,
    obs: &Obs,
) -> Result<()> {
    let pending: Vec<ReverifyItem<'_>> = std::mem::take(stash)
        .into_iter()
        .map(|wi| ReverifyItem {
            slot: wi,
            window_index: windows[wi].window.index as u64,
            pairs: &windows[wi].pairs,
        })
        .collect();
    let committed = exec::reverify_windows(
        &pending,
        tracks,
        k,
        selector,
        session,
        breaker,
        report,
        obs,
        |slot, r| {
            *distance_evals += r.distance_evals;
            slots[slot] = r.candidates;
        },
    )?;
    // Whatever the renewed failure left unverified keeps its provisional
    // degraded candidates.
    stash.extend(pending[committed..].iter().map(|item| item.slot));
    Ok(())
}

/// Runs the merging pipeline against a fallible [`InferenceBackend`].
///
/// Per window the session's fault epoch is set to the window index, so a
/// deterministic fault plan (see `tm-chaos`) addresses faults to specific
/// windows. When a window's selection fails on the backend even after the
/// session's retry budget:
///
/// 1. the window falls back to [`degraded_candidates`] (spatio-temporal
///    evidence only) and is stashed,
/// 2. after `robustness.breaker_threshold` consecutive such failures the
///    circuit breaker opens and later windows skip straight to the degraded
///    path (no retry storms against a dead backend),
/// 3. each subsequent window probes availability; on recovery the stashed
///    windows are re-scored with real ReID — selectors are stateless and
///    seeded per window, so re-scoring reproduces exactly what the healthy
///    run would have chosen — before the walk continues.
///
/// Still-degraded windows at end of video get one final recovery attempt;
/// whatever remains provisional is merged on degraded evidence (and counted
/// in [`RobustnessReport::degraded_windows`] minus `reverified_windows`).
pub fn run_pipeline_with_backend<'m>(
    tracks: &TrackSet,
    n_frames: u64,
    model: &'m AppearanceModel,
    config: &PipelineConfig,
    verifier: Option<&dyn Fn(&TrackPair) -> bool>,
    backend: &'m dyn InferenceBackend,
    robustness: &RobustnessConfig,
) -> Result<PipelineReport> {
    run_pipeline_with_backend_voi(
        tracks, n_frames, model, config, verifier, backend, robustness, None,
    )
}

/// [`run_pipeline_with_backend`] with query-driven [`VoiHints`] attached.
///
/// The hints reweight (and defer) bandit arms only when `config.voi` is
/// [`VoiMode::Reweight`]; with `VoiMode::Off` they are ignored entirely, so
/// a caller can always attach them unconditionally. Degraded-window
/// re-verification stays hint-free: recovered windows are re-scored at full
/// fidelity, exactly as a healthy query-agnostic run would have.
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline_with_backend_voi<'m>(
    tracks: &TrackSet,
    n_frames: u64,
    model: &'m AppearanceModel,
    config: &PipelineConfig,
    verifier: Option<&dyn Fn(&TrackPair) -> bool>,
    backend: &'m dyn InferenceBackend,
    robustness: &RobustnessConfig,
    voi_hints: Option<&VoiHints>,
) -> Result<PipelineReport> {
    tracks.validate()?;
    let voi_active = match config.voi {
        VoiMode::Reweight => voi_hints,
        VoiMode::Off => None,
    };
    let obs = tm_obs::current();
    let run_span = obs.span("pipeline.run", 0.0);
    let windows = build_window_pairs(tracks, n_frames, config.window_len)?;
    let selector = config.selector.build();
    let mut session = exec::window_session(
        model,
        config.cost,
        config.device,
        None,
        Some(backend),
        Some(robustness.retry),
        config.gate,
    );
    // The whole video is known up front, so the gate plans every box once
    // (free: planning charges nothing).
    session.gate_update_plan(tracks);

    let mut breaker = Breaker::new(robustness.breaker_threshold);
    let mut report = RobustnessReport::default();
    // One candidate slot per window: late re-verification can replace a
    // degraded decision without disturbing candidate order.
    let mut slots: Vec<Vec<TrackPair>> = vec![Vec::new(); windows.len()];
    let mut stash: Vec<usize> = Vec::new();
    let mut n_pairs = 0usize;
    let mut distance_evals = 0u64;

    for (wi, wp) in windows.iter().enumerate() {
        if wp.pairs.is_empty() {
            continue;
        }
        let wspan = obs.span("pipeline.window", session.elapsed_ms());
        n_pairs += wp.pairs.len();
        session.set_epoch(wp.window.index as u64);
        if breaker.is_open() && session.backend_available() {
            breaker.close();
            exec::emit_breaker_recovery(&obs, wp.window.index as u64);
            reverify_pending(
                &mut stash,
                &windows,
                tracks,
                config.k,
                selector.as_ref(),
                &mut session,
                &mut breaker,
                &mut slots,
                &mut distance_evals,
                &mut report,
                &obs,
            )?;
        }
        let input = SelectionInput {
            pairs: &wp.pairs,
            tracks,
            k: config.k,
            voi: voi_active,
        };
        let degraded = match exec::select_or_degrade(
            selector.as_ref(),
            &input,
            &mut session,
            &mut breaker,
            &mut report,
            robustness,
            &obs,
            wp.window.index as u64,
        )? {
            WindowVerdict::Normal(r) => {
                distance_evals += r.distance_evals;
                slots[wi] = r.candidates;
                false
            }
            WindowVerdict::Degraded(provisional) => {
                slots[wi] = provisional;
                stash.push(wi);
                true
            }
        };
        exec::emit_window_obs(
            &obs,
            wp.window.index as u64,
            wp.pairs.len(),
            &slots[wi],
            degraded,
        );
        wspan.finish(session.elapsed_ms());
    }

    // End-of-video recovery attempt for whatever is still provisional.
    if !stash.is_empty() {
        session.set_epoch(windows.len() as u64);
        if session.backend_available() {
            if breaker.is_open() {
                exec::emit_breaker_recovery(&obs, windows.len() as u64);
            }
            breaker.close();
            reverify_pending(
                &mut stash,
                &windows,
                tracks,
                config.k,
                selector.as_ref(),
                &mut session,
                &mut breaker,
                &mut slots,
                &mut distance_evals,
                &mut report,
                &obs,
            )?;
        }
    }

    let candidates: Vec<TrackPair> = slots.into_iter().flatten().collect();
    let accepted: Vec<TrackPair> = match verifier {
        Some(v) => candidates.iter().filter(|p| v(p)).copied().collect(),
        None => candidates.clone(),
    };
    let mapping = merge_mapping(&accepted);
    let merged = tracks.relabeled(&mapping);

    let stats = session.stats();
    report.retries = stats.retries;
    report.backend_faults = stats.backend_faults;
    run_span.finish(session.elapsed_ms());
    Ok(PipelineReport {
        merged,
        candidates,
        accepted,
        n_pairs,
        distance_evals,
        elapsed_ms: session.elapsed_ms(),
        stats,
        robustness: report,
    })
}

/// What one window's worker produced (folded in window order afterwards).
struct WindowOutcome {
    candidates: Vec<TrackPair>,
    n_pairs: usize,
    distance_evals: u64,
    elapsed_ms: f64,
    stats: ReidStats,
}

/// Runs the merging pipeline with the windows fanned out over threads
/// (`TMERGE_THREADS`, see `tm_par`).
///
/// Each window gets its own [`ReidSession`], all reading through one
/// [`SharedFeatureCache`] — the parallel analogue of the serial pipeline's
/// single cross-window session. Results are folded in **window order**, so
/// candidate order matches [`run_pipeline`] exactly.
///
/// ## Cost-accounting semantics
///
/// Every window runs against its own simulated clock; the report's
/// `elapsed_ms` is the **sum** of the per-window clocks — i.e. total
/// simulated work, directly comparable to the serial pipeline's clock, not
/// a parallel wall-clock estimate. Each distinct box is inferred (and
/// charged) exactly once across all windows — the first session to request
/// it pays, racers reuse it for free — so on CPU, where inference cost is
/// linear per item, the summed clock is identical to the serial run's. On
/// GPU, *which* window's round a feature lands in depends on scheduling,
/// so the round count (and the summed per-round launch overhead) can
/// differ from the serial run by at most one overhead per window.
/// Candidates, distance evaluations and total inference counts are
/// scheduling-independent: features are deterministic in (actor, frame),
/// so every selector sees the same distances regardless of which session
/// computed the underlying features.
pub fn run_pipeline_parallel(
    tracks: &TrackSet,
    n_frames: u64,
    model: &AppearanceModel,
    config: &PipelineConfig,
    verifier: Option<&dyn Fn(&TrackPair) -> bool>,
) -> Result<PipelineReport> {
    tracks.validate()?;
    let obs = tm_obs::current();
    let run_span = obs.span("pipeline.run", 0.0);
    let windows = build_window_pairs(tracks, n_frames, config.window_len)?;
    let selector = config.selector.build();
    // Sized for the worker fan-out: each thread runs one window session
    // against the shared cache at a time.
    let cache = Arc::new(SharedFeatureCache::for_fleet_width(tm_par::max_threads()));
    // Plan the whole video once; every window worker gets a copy, so gated
    // decisions are identical to the serial walk's regardless of thread
    // count or window order.
    let gate_plan = config.gate.config().map(|cfg| {
        let mut plan = GatePlan::default();
        plan.update(tracks, cfg);
        plan
    });

    // Per-window counters fan out with the windows; the recorder's
    // aggregates are commutative, so these counts (windows, pairs,
    // candidates) are identical at any thread count. The *session* cache
    // counters are not: which racer scores a shared-cache hit is
    // scheduling-dependent, which is why deterministic snapshot tests pin
    // private-session runs, not this entry point.
    let outcomes = tm_par::par_map(&windows, |wp| {
        if wp.pairs.is_empty() {
            return None;
        }
        let obs = tm_obs::current();
        let wspan = obs.span("pipeline.window", 0.0);
        let mut session = exec::window_session(
            model,
            config.cost,
            config.device,
            Some(Arc::clone(&cache)),
            None,
            None,
            config.gate,
        );
        if let Some(plan) = &gate_plan {
            session.set_gate_plan(plan);
        }
        let input = SelectionInput {
            pairs: &wp.pairs,
            tracks,
            k: config.k,
            voi: None,
        };
        let outcome = selector.select(&input, &mut session);
        exec::flush_gate_obs(&mut session, &obs, selector.obs_slug());
        Some(outcome.map(|result| {
            if obs.enabled() {
                obs.counter("pipeline.windows", 1);
                obs.counter("pipeline.pairs", wp.pairs.len() as u64);
                obs.counter("pipeline.candidates", result.candidates.len() as u64);
            }
            wspan.finish(session.elapsed_ms());
            WindowOutcome {
                candidates: result.candidates,
                n_pairs: wp.pairs.len(),
                distance_evals: result.distance_evals,
                elapsed_ms: session.elapsed_ms(),
                stats: session.stats(),
            }
        }))
    });

    // Window-ordered fold: identical aggregation order to the serial walk.
    let mut candidates = Vec::new();
    let mut n_pairs = 0usize;
    let mut distance_evals = 0u64;
    let mut elapsed_ms = 0.0f64;
    let mut stats = ReidStats::default();
    for outcome in outcomes.into_iter().flatten() {
        let outcome = outcome?;
        candidates.extend(outcome.candidates);
        n_pairs += outcome.n_pairs;
        distance_evals += outcome.distance_evals;
        elapsed_ms += outcome.elapsed_ms;
        stats.inferences += outcome.stats.inferences;
        stats.cache_hits += outcome.stats.cache_hits;
        stats.distances += outcome.stats.distances;
        stats.gpu_rounds += outcome.stats.gpu_rounds;
        stats.retries += outcome.stats.retries;
        stats.backend_faults += outcome.stats.backend_faults;
    }

    let accepted: Vec<TrackPair> = match verifier {
        Some(v) => candidates.iter().filter(|p| v(p)).copied().collect(),
        None => candidates.clone(),
    };
    let mapping = merge_mapping(&accepted);
    let merged = tracks.relabeled(&mapping);

    run_span.finish(elapsed_ms);
    Ok(PipelineReport {
        merged,
        candidates,
        accepted,
        n_pairs,
        distance_evals,
        elapsed_ms,
        stats,
        robustness: RobustnessReport {
            retries: stats.retries,
            backend_faults: stats.backend_faults,
            ..RobustnessReport::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn fixture() -> (AppearanceModel, TrackSet) {
        let model = AppearanceModel::new(tm_reid::AppearanceConfig::default());
        let tracks = TrackSet::from_tracks(vec![
            track(1, 10, 0, 20, 0.0),
            track(2, 10, 60, 20, 110.0), // fragment of actor 10
            track(3, 11, 0, 20, 400.0),
            track(4, 12, 0, 20, 800.0),
            track(5, 13, 50, 20, 1200.0),
        ]);
        (model, tracks)
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            window_len: 200,
            k: 0.1, // m = 1 for the single 10-pair window
            selector: SelectorKind::TMerge(TMergeConfig {
                tau_max: 800,
                seed: 2,
                ..Default::default()
            }),
            device: Device::Cpu,
            cost: CostModel::calibrated(),
            gate: GatePolicy::Off,
            voi: VoiMode::Off,
        }
    }

    #[test]
    fn pipeline_merges_the_fragmented_actor() {
        let (model, tracks) = fixture();
        let report = run_pipeline(&tracks, 200, &model, &config(), None).unwrap();
        let poly = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        assert!(report.candidates.contains(&poly), "{:?}", report.candidates);
        // Tracks 1 and 2 are now one track.
        assert!(report.merged.get(TrackId(1)).is_some());
        assert!(report.merged.get(TrackId(2)).is_none());
        assert_eq!(report.merged.get(TrackId(1)).unwrap().len(), 40);
    }

    #[test]
    fn verifier_filters_candidates() {
        let (model, tracks) = fixture();
        let reject_all = |_: &TrackPair| false;
        let report = run_pipeline(&tracks, 200, &model, &config(), Some(&reject_all)).unwrap();
        assert!(report.accepted.is_empty());
        // Nothing merged.
        assert_eq!(report.merged.len(), tracks.len());
    }

    #[test]
    fn report_accounting_is_consistent() {
        let (model, tracks) = fixture();
        let report = run_pipeline(&tracks, 200, &model, &config(), None).unwrap();
        assert!(report.n_pairs > 0);
        assert!(report.distance_evals > 0);
        assert!(report.elapsed_ms > 0.0);
        assert_eq!(report.stats.distances, report.distance_evals);
        assert!(report.fps(200) > 0.0);
        // Clean backend: the fault path never fires.
        assert_eq!(report.robustness, RobustnessReport::default());
    }

    #[test]
    fn baseline_selector_works_through_pipeline() {
        let (model, tracks) = fixture();
        let mut cfg = config();
        cfg.selector = SelectorKind::Baseline;
        let report = run_pipeline(&tracks, 200, &model, &cfg, None).unwrap();
        let poly = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        assert!(report.candidates.contains(&poly));
    }

    #[test]
    fn gpu_pipeline_is_faster_than_cpu() {
        let (model, tracks) = fixture();
        let cpu = run_pipeline(&tracks, 200, &model, &config(), None).unwrap();
        let mut gpu_cfg = config();
        gpu_cfg.device = Device::Gpu { batch: 10 };
        let gpu = run_pipeline(&tracks, 200, &model, &gpu_cfg, None).unwrap();
        assert!(gpu.elapsed_ms < cpu.elapsed_ms);
    }

    #[test]
    fn parallel_pipeline_matches_serial() {
        let (model, tracks) = fixture();
        let mut cfg = config();
        cfg.window_len = 100; // several half-overlapping windows
        let serial = run_pipeline(&tracks, 200, &model, &cfg, None).unwrap();
        std::env::set_var(tm_par::THREADS_ENV, "4");
        let parallel = run_pipeline_parallel(&tracks, 200, &model, &cfg, None).unwrap();
        std::env::remove_var(tm_par::THREADS_ENV);
        assert_eq!(serial.candidates, parallel.candidates);
        assert_eq!(serial.accepted, parallel.accepted);
        assert_eq!(serial.n_pairs, parallel.n_pairs);
        assert_eq!(serial.distance_evals, parallel.distance_evals);
        // The shared cache charges each distinct box exactly once globally,
        // like the serial session's cross-window reuse.
        assert_eq!(serial.stats.inferences, parallel.stats.inferences);
        assert_eq!(serial.stats.distances, parallel.stats.distances);
        // CPU inference cost is linear per item, so the summed per-window
        // clocks reproduce the serial clock (up to float association).
        assert!(
            (serial.elapsed_ms - parallel.elapsed_ms).abs() < 1e-6,
            "serial {} vs parallel {}",
            serial.elapsed_ms,
            parallel.elapsed_ms
        );
        assert_eq!(serial.merged.len(), parallel.merged.len());
    }

    #[test]
    fn gated_pipeline_keeps_candidates_and_cuts_inferences() {
        let (model, tracks) = fixture();
        let ungated = run_pipeline(&tracks, 200, &model, &config(), None).unwrap();
        let mut cfg = config();
        cfg.gate = GatePolicy::On(tm_reid::GateConfig::default());
        let gated = run_pipeline(&tracks, 200, &model, &cfg, None).unwrap();
        assert!(
            gated.stats.inferences < ungated.stats.inferences,
            "gated {} vs ungated {}",
            gated.stats.inferences,
            ungated.stats.inferences
        );
        assert!(gated.elapsed_ms < ungated.elapsed_ms);
        // The fixture's fragmented actor is still found.
        let poly = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        assert!(gated.candidates.contains(&poly), "{:?}", gated.candidates);
    }

    #[test]
    fn gated_parallel_pipeline_matches_gated_serial() {
        let (model, tracks) = fixture();
        let mut cfg = config();
        cfg.window_len = 100;
        cfg.gate = GatePolicy::On(tm_reid::GateConfig::default());
        let serial = run_pipeline(&tracks, 200, &model, &cfg, None).unwrap();
        std::env::set_var(tm_par::THREADS_ENV, "4");
        let parallel = run_pipeline_parallel(&tracks, 200, &model, &cfg, None).unwrap();
        std::env::remove_var(tm_par::THREADS_ENV);
        assert_eq!(serial.candidates, parallel.candidates);
        assert_eq!(serial.n_pairs, parallel.n_pairs);
        assert_eq!(serial.distance_evals, parallel.distance_evals);
        // Anchors are charged exactly once globally either way.
        assert_eq!(serial.stats.inferences, parallel.stats.inferences);
        assert!(
            (serial.elapsed_ms - parallel.elapsed_ms).abs() < 1e-6,
            "serial {} vs parallel {}",
            serial.elapsed_ms,
            parallel.elapsed_ms
        );
    }

    #[test]
    fn parallel_pipeline_applies_verifier() {
        let (model, tracks) = fixture();
        let reject_all = |_: &TrackPair| false;
        let report =
            run_pipeline_parallel(&tracks, 200, &model, &config(), Some(&reject_all)).unwrap();
        assert!(report.accepted.is_empty());
        assert_eq!(report.merged.len(), tracks.len());
    }

    #[test]
    fn empty_track_set_is_fine() {
        let (model, _) = fixture();
        let report = run_pipeline(&TrackSet::new(), 200, &model, &config(), None).unwrap();
        assert!(report.merged.is_empty());
        assert_eq!(report.n_pairs, 0);
    }

    #[test]
    fn invalid_tracks_are_rejected_up_front() {
        let (model, _) = fixture();
        let bad = TrackSet::from_tracks(vec![Track::with_boxes(
            TrackId(1),
            classes::PEDESTRIAN,
            vec![TrackBox::new(FrameIdx(0), BBox::new(0.0, 0.0, -5.0, 10.0))],
        )]);
        let err = run_pipeline(&bad, 200, &model, &config(), None);
        assert!(matches!(err, Err(tm_types::TmError::InvalidTrack { .. })));
        let err = run_pipeline_parallel(&bad, 200, &model, &config(), None);
        assert!(matches!(err, Err(tm_types::TmError::InvalidTrack { .. })));
    }
}
