//! Property battery for the camera topology (`tm_core::global`).
//!
//! The travel-time profiles gate the entire cross-camera candidate space,
//! so their algebra has to be boringly dependable:
//!
//! * **permutation-commutative** — a profile is a pure histogram, so the
//!   order confirmed transits arrive in can never change it;
//! * **prefix-stable** — observing more transits never rewrites what an
//!   earlier prefix already recorded (histogram counts only grow, the
//!   envelope only widens outward);
//! * **sound under a calibrated prior** — every ground-truth transit of a
//!   synthetic world survives the admissibility gate, cold or warm, as
//!   long as the envelope pad covers the world's travel jitter;
//! * **bit-exact serialization** — `to_bytes`/`from_bytes` round-trips
//!   the topology exactly, and corrupt bytes fail typed, never panic.

use proptest::prelude::*;
use tm_core::global::{CameraTopology, GlobalConfig};
use tm_synth::{MultiCameraWorld, WorldConfig};

/// A random batch of directed transits `(from, to, dt)` over a small
/// camera universe, with realistic tick ranges.
fn transits_strategy() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((0u64..5, 0u64..5, 1u64..500), 0..60)
}

fn config(pad: u64) -> GlobalConfig {
    GlobalConfig {
        prior_min_dt: 1,
        prior_max_dt: 500,
        min_confirmations: 3,
        envelope_pad: pad,
        ..GlobalConfig::default()
    }
}

fn build(obs: &[(u64, u64, u64)]) -> CameraTopology {
    let mut t = CameraTopology::new();
    for &(from, to, dt) in obs {
        t.observe(from, to, dt);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Observing the same multiset of transits in any order yields the
    /// same topology, bit for bit.
    #[test]
    fn profile_updates_are_permutation_commutative(
        obs in transits_strategy(), seed in 0u64..1000
    ) {
        let forward = build(&obs);
        let mut shuffled = obs.clone();
        // Deterministic Fisher–Yates from the proptest-drawn seed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let permuted = build(&shuffled);
        prop_assert_eq!(&forward, &permuted);
        prop_assert_eq!(forward.to_bytes(), permuted.to_bytes());
    }

    /// A prefix of observations is never rewritten by later ones: counts
    /// only grow and the learned envelope only widens outward.
    #[test]
    fn profile_updates_are_prefix_stable(
        obs in transits_strategy(), split in 0usize..60, pad in 0u64..50
    ) {
        let split = split.min(obs.len());
        let prefix = build(&obs[..split]);
        let full = build(&obs);
        let cfg = config(pad);
        for (from, to) in (0..5u64).flat_map(|a| (0..5u64).map(move |b| (a, b))) {
            let (Some(p), Some(f)) = (prefix.profile(from, to), full.profile(from, to)) else {
                // A pair absent from the full build must be absent from
                // the prefix too.
                prop_assert!(prefix.profile(from, to).is_none()
                    || full.profile(from, to).is_some());
                continue;
            };
            prop_assert!(f.count() >= p.count());
            for (dt, n) in p.histogram() {
                prop_assert!(f.histogram().get(dt).is_some_and(|m| m >= n));
            }
            let (plo, phi) = p.range().unwrap();
            let (flo, fhi) = f.range().unwrap();
            prop_assert!(flo <= plo && fhi >= phi);
            // Once both sides of the gate are learned, a dt the prefix
            // admitted via its learned envelope stays admissible.
            if p.count() >= cfg.min_confirmations {
                for dt in [plo, phi] {
                    prop_assert!(full.admissible(from, to, dt, &cfg));
                }
            }
        }
    }

    /// Serialization is a bit-exact involution, and truncation fails
    /// typed rather than panicking.
    #[test]
    fn topology_serialization_round_trips_bit_exactly(
        obs in transits_strategy(), cut in 1usize..64
    ) {
        let t = build(&obs);
        let bytes = t.to_bytes();
        let back = CameraTopology::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.to_bytes(), bytes.clone());
        if !bytes.is_empty() {
            let cut = cut.min(bytes.len());
            prop_assert!(CameraTopology::from_bytes(&bytes[..bytes.len() - cut]).is_err());
        }
    }

    /// Pruning soundness on synthetic worlds: every ground-truth transit
    /// passes the gate under the calibrated prior — both cold (no
    /// profiles) and warm (all transits already confirmed), as long as
    /// the pad is at least the world's travel jitter.
    #[test]
    fn every_true_transit_survives_the_gate(
        cameras in 2u64..8, actors in 1u64..6, seed in 0u64..500,
        travel_base in 20u64..120, jitter in 0u64..40
    ) {
        let w = MultiCameraWorld::new(WorldConfig {
            cameras,
            actors,
            hops: (cameras - 1).min(3),
            travel_base,
            travel_jitter: jitter,
            seed,
            ..WorldConfig::default()
        });
        let horizon = w.horizon();
        let transits = w.transits(horizon);
        let cfg = GlobalConfig {
            prior_min_dt: 1,
            // A calibrated prior: generous ceiling over the worst travel.
            prior_max_dt: travel_base + jitter + 10,
            min_confirmations: 3,
            envelope_pad: jitter + 1,
            ..GlobalConfig::default()
        };

        let cold = CameraTopology::new();
        let mut warm = CameraTopology::new();
        for tr in &transits {
            warm.observe(tr.from, tr.to, tr.dt());
        }
        for tr in &transits {
            prop_assert!(
                cold.admissible(tr.from, tr.to, tr.dt(), &cfg),
                "cold gate rejected a true transit: {tr:?}"
            );
            prop_assert!(
                warm.admissible(tr.from, tr.to, tr.dt(), &cfg),
                "warm gate rejected a true transit: {tr:?}"
            );
        }
    }
}

/// Corrupt (not just truncated) bytes fail typed: an inner count that
/// disagrees with its histogram is rejected.
#[test]
fn inconsistent_profile_counts_are_rejected() {
    let mut t = CameraTopology::new();
    t.observe(0, 1, 10);
    t.observe(0, 1, 12);
    let mut bytes = t.to_bytes();
    // Layout: n, from, to, count, min, max, buckets, (dt, n)… — bump the
    // count word (offset 3×8) without touching the histogram.
    bytes[3 * 8] = bytes[3 * 8].wrapping_add(1);
    assert!(CameraTopology::from_bytes(&bytes).is_err());
}
