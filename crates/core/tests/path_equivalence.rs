//! Pins the four execution paths — serial pipeline, parallel pipeline,
//! streaming merger and a fleet of one — to the same answer on the same
//! video. All of them now run the shared window protocol in
//! `crates/core/src/exec.rs`; this test is the tripwire that keeps them
//! from drifting apart again.

use tm_core::{
    FleetIngester, PipelineConfig, SelectorKind, StreamConfig, StreamingMerger, TMerge,
    TMergeConfig,
};
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, InferenceBackend};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

const N_FRAMES: u64 = 400;
const WINDOW_LEN: u64 = 200;
const K: f64 = 0.1;

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

fn fixture() -> (AppearanceModel, TrackSet) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = TrackSet::from_tracks(vec![
        track(1, 10, 0, 30, 0.0),
        track(2, 10, 80, 30, 160.0),
        track(3, 11, 0, 40, 400.0),
        track(4, 12, 60, 40, 800.0),
        track(5, 13, 200, 40, 1200.0),
        track(6, 13, 280, 30, 1400.0),
    ]);
    (model, tracks)
}

fn selector_config() -> TMergeConfig {
    TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        window_len: WINDOW_LEN,
        k: K,
        selector: SelectorKind::TMerge(selector_config()),
        device: Device::Cpu,
        cost: CostModel::calibrated(),
    }
}

fn sorted(pairs: &[TrackPair]) -> Vec<TrackPair> {
    let mut v = pairs.to_vec();
    v.sort();
    v
}

#[test]
fn all_four_paths_agree() {
    let (model, tracks) = fixture();

    let serial =
        tm_core::run_pipeline(&tracks, N_FRAMES, &model, &pipeline_config(), None).unwrap();
    let parallel =
        tm_core::run_pipeline_parallel(&tracks, N_FRAMES, &model, &pipeline_config(), None)
            .unwrap();

    let stream_config = StreamConfig {
        window_len: WINDOW_LEN,
        k: K,
    };
    let mut streaming = StreamingMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        TMerge::new(selector_config()),
        stream_config,
    )
    .unwrap()
    .with_backend(&model);
    for frames in [150, 250, 400] {
        streaming.advance(&tracks, frames).unwrap();
    }
    streaming.finish(&tracks, N_FRAMES).unwrap();

    let backends: Vec<&dyn InferenceBackend> = vec![&model];
    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config,
        |_| TMerge::new(selector_config()),
        &backends,
    )
    .unwrap();
    for frames in [150, 250, 400] {
        fleet.advance(&[(&tracks, frames)]).unwrap();
    }
    fleet.finish(&[(&tracks, N_FRAMES)]).unwrap();

    // Serial vs parallel: identical report.
    assert_eq!(sorted(&serial.candidates), sorted(&parallel.candidates));
    assert_eq!(serial.accepted, parallel.accepted);
    assert_eq!(serial.n_pairs, parallel.n_pairs);
    assert!((serial.elapsed_ms - parallel.elapsed_ms).abs() < 1e-6);

    // Streaming vs serial: same merges and clock. (The streaming walk
    // decides empty windows that the offline walk skips, so decision
    // *lists* differ in padding; the semantic outputs must not.)
    assert_eq!(sorted(streaming.accepted()), sorted(&serial.accepted));
    assert!((streaming.elapsed_ms() - serial.elapsed_ms).abs() < 1e-6);
    let n_pairs: usize = streaming.decisions().iter().map(|d| d.n_pairs).sum();
    assert_eq!(n_pairs, serial.n_pairs);

    // Fleet-of-one vs streaming: byte-identical everything.
    let shard = fleet.shard_mut(0);
    assert_eq!(shard.decisions(), streaming.decisions());
    assert_eq!(shard.accepted(), streaming.accepted());
    assert_eq!(shard.robustness(), streaming.robustness());
    assert_eq!(
        shard.elapsed_ms().to_bits(),
        streaming.elapsed_ms().to_bits()
    );
    assert_eq!(shard.mapping(), streaming.mapping());
}
