//! Pins the four execution paths — serial pipeline, parallel pipeline,
//! streaming merger and a fleet of one — to the same answer on the same
//! video. All of them now run the shared window protocol in
//! `crates/core/src/exec.rs`; this test is the tripwire that keeps them
//! from drifting apart again.

use tm_core::{
    FleetIngester, PipelineConfig, SelectorKind, StreamConfig, StreamingMerger, TMerge,
    TMergeConfig,
};
use tm_reid::{
    AppearanceConfig, AppearanceModel, CostModel, Device, GateConfig, GatePolicy, InferenceBackend,
};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

const N_FRAMES: u64 = 400;
const WINDOW_LEN: u64 = 200;
const K: f64 = 0.1;

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

fn fixture() -> (AppearanceModel, TrackSet) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = TrackSet::from_tracks(vec![
        track(1, 10, 0, 30, 0.0),
        track(2, 10, 80, 30, 160.0),
        track(3, 11, 0, 40, 400.0),
        track(4, 12, 60, 40, 800.0),
        track(5, 13, 200, 40, 1200.0),
        track(6, 13, 280, 30, 1400.0),
    ]);
    (model, tracks)
}

fn selector_config() -> TMergeConfig {
    TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        window_len: WINDOW_LEN,
        k: K,
        selector: SelectorKind::TMerge(selector_config()),
        device: Device::Cpu,
        cost: CostModel::calibrated(),
        gate: GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

fn sorted(pairs: &[TrackPair]) -> Vec<TrackPair> {
    let mut v = pairs.to_vec();
    v.sort();
    v
}

#[test]
fn all_four_paths_agree() {
    let (model, tracks) = fixture();

    let serial =
        tm_core::run_pipeline(&tracks, N_FRAMES, &model, &pipeline_config(), None).unwrap();
    let parallel =
        tm_core::run_pipeline_parallel(&tracks, N_FRAMES, &model, &pipeline_config(), None)
            .unwrap();

    let stream_config = StreamConfig {
        window_len: WINDOW_LEN,
        k: K,
        gate: GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    };
    let mut streaming = StreamingMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        TMerge::new(selector_config()),
        stream_config,
    )
    .unwrap()
    .with_backend(&model);
    for frames in [150, 250, 400] {
        streaming.advance(&tracks, frames).unwrap();
    }
    streaming.finish(&tracks, N_FRAMES).unwrap();

    let backends: Vec<&dyn InferenceBackend> = vec![&model];
    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config,
        |_| TMerge::new(selector_config()),
        &backends,
    )
    .unwrap();
    for frames in [150, 250, 400] {
        fleet.advance(&[(&tracks, frames)]).unwrap();
    }
    fleet.finish(&[(&tracks, N_FRAMES)]).unwrap();

    // Serial vs parallel: identical report.
    assert_eq!(sorted(&serial.candidates), sorted(&parallel.candidates));
    assert_eq!(serial.accepted, parallel.accepted);
    assert_eq!(serial.n_pairs, parallel.n_pairs);
    assert!((serial.elapsed_ms - parallel.elapsed_ms).abs() < 1e-6);

    // Streaming vs serial: same merges and clock. (The streaming walk
    // decides empty windows that the offline walk skips, so decision
    // *lists* differ in padding; the semantic outputs must not.)
    assert_eq!(sorted(streaming.accepted()), sorted(&serial.accepted));
    assert!((streaming.elapsed_ms() - serial.elapsed_ms).abs() < 1e-6);
    let n_pairs: usize = streaming.decisions().iter().map(|d| d.n_pairs).sum();
    assert_eq!(n_pairs, serial.n_pairs);

    // Fleet-of-one vs streaming: byte-identical everything.
    let shard = fleet.shard_mut(0);
    assert_eq!(shard.decisions(), streaming.decisions());
    assert_eq!(shard.accepted(), streaming.accepted());
    assert_eq!(shard.robustness(), streaming.robustness());
    assert_eq!(
        shard.elapsed_ms().to_bits(),
        streaming.elapsed_ms().to_bits()
    );
    assert_eq!(shard.mapping(), streaming.mapping());
}

/// The same four-path agreement, but with the extraction gate on: all
/// entry paths share one `GatePolicy` (exec::window_session), so a gated
/// fleet shard must stay byte-identical to a gated solo streamer, and
/// both must agree with the gated offline walks on the semantic outputs.
#[test]
fn all_four_paths_agree_gated() {
    let (model, tracks) = fixture();
    let gate = GatePolicy::On(GateConfig::default());

    let config = PipelineConfig {
        gate,
        ..pipeline_config()
    };
    let serial = tm_core::run_pipeline(&tracks, N_FRAMES, &model, &config, None).unwrap();
    let parallel =
        tm_core::run_pipeline_parallel(&tracks, N_FRAMES, &model, &config, None).unwrap();

    let stream_config = StreamConfig {
        window_len: WINDOW_LEN,
        k: K,
        gate,
        voi: tm_core::VoiMode::Off,
    };
    let mut streaming = StreamingMerger::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        TMerge::new(selector_config()),
        stream_config,
    )
    .unwrap()
    .with_backend(&model);
    for frames in [150, 250, 400] {
        streaming.advance(&tracks, frames).unwrap();
    }
    streaming.finish(&tracks, N_FRAMES).unwrap();

    let backends: Vec<&dyn InferenceBackend> = vec![&model];
    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config,
        |_| TMerge::new(selector_config()),
        &backends,
    )
    .unwrap();
    for frames in [150, 250, 400] {
        fleet.advance(&[(&tracks, frames)]).unwrap();
    }
    fleet.finish(&[(&tracks, N_FRAMES)]).unwrap();

    assert_eq!(sorted(&serial.candidates), sorted(&parallel.candidates));
    assert_eq!(serial.accepted, parallel.accepted);
    assert!((serial.elapsed_ms - parallel.elapsed_ms).abs() < 1e-6);
    assert_eq!(sorted(streaming.accepted()), sorted(&serial.accepted));

    let shard = fleet.shard_mut(0);
    assert_eq!(shard.decisions(), streaming.decisions());
    assert_eq!(shard.accepted(), streaming.accepted());
    assert_eq!(
        shard.elapsed_ms().to_bits(),
        streaming.elapsed_ms().to_bits()
    );
    assert_eq!(shard.mapping(), streaming.mapping());

    // The gate must actually have saved work on this fixture, and saving
    // work must show in the clock.
    assert!(
        serial.elapsed_ms
            < tm_core::run_pipeline(&tracks, N_FRAMES, &model, &pipeline_config(), None)
                .unwrap()
                .elapsed_ms
    );
}

/// `GatePolicy::Off` must be bit-identical to the pre-gating pipeline,
/// and a gate configured to extract everything must be bit-identical to
/// `Off` — decisions, accepted merges, mapping, and clock bits.
#[test]
fn gate_off_and_always_extract_match_ungated_exactly() {
    let (model, tracks) = fixture();

    let run_stream = |gate: GatePolicy| {
        let mut m = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            TMerge::new(selector_config()),
            StreamConfig {
                window_len: WINDOW_LEN,
                k: K,
                gate,
                voi: tm_core::VoiMode::Off,
            },
        )
        .unwrap()
        .with_backend(&model);
        for frames in [150, 250, 400] {
            m.advance(&tracks, frames).unwrap();
        }
        m.finish(&tracks, N_FRAMES).unwrap();
        (
            m.decisions().to_vec(),
            m.accepted().to_vec(),
            m.mapping(),
            m.elapsed_ms().to_bits(),
        )
    };

    let off = run_stream(GatePolicy::Off);
    let always = run_stream(GatePolicy::On(GateConfig::always_extract()));
    assert_eq!(off.0, always.0, "decisions must match");
    assert_eq!(off.1, always.1, "accepted merges must match");
    assert_eq!(off.2, always.2, "mapping must match");
    assert_eq!(off.3, always.3, "clock must match bit-for-bit");

    let serial =
        tm_core::run_pipeline(&tracks, N_FRAMES, &model, &pipeline_config(), None).unwrap();
    let gated_serial = tm_core::run_pipeline(
        &tracks,
        N_FRAMES,
        &model,
        &PipelineConfig {
            gate: GatePolicy::On(GateConfig::always_extract()),
            ..pipeline_config()
        },
        None,
    )
    .unwrap();
    assert_eq!(serial.accepted, gated_serial.accepted);
    assert_eq!(serial.candidates, gated_serial.candidates);
    assert_eq!(
        serial.elapsed_ms.to_bits(),
        gated_serial.elapsed_ms.to_bits(),
        "always-extract gate must charge the identical clock"
    );
}

/// Property pins for the gate: for any small random track population,
/// `GatePolicy::Off` and `GateConfig::always_extract()` are the same
/// pipeline (candidates, accepted merges, charges and clock bits), and
/// for any gate tuning the serial, parallel and streaming walks agree.
mod gate_properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_tracks() -> impl Strategy<Value = TrackSet> {
        proptest::collection::vec(
            (0u64..5, 0u64..300, 5usize..50, 0u64..6, any::<bool>()),
            2..7,
        )
        .prop_map(|specs| {
            TrackSet::from_tracks(
                specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (actor, start, n, lane, near))| {
                        // `near` packs lanes close together so the
                        // crowding/ambiguity signal fires sometimes.
                        let x0 = lane as f64 * if near { 60.0 } else { 400.0 };
                        track(i as u64 + 1, actor, start, n, x0)
                    })
                    .collect(),
            )
        })
    }

    fn arb_gate() -> impl Strategy<Value = GateConfig> {
        (
            (0u64..4, 1u64..8, 1u64..16, 4u64..32),
            (2.0f64..16.0, 0.0f64..0.9, 0.05f64..0.9),
        )
            .prop_map(
                |((fresh, gap, refresh, max_age), (half_life, defer, iou))| GateConfig {
                    fresh_frames: fresh,
                    occlusion_gap: gap,
                    refresh_interval: refresh,
                    max_reuse_age: max_age,
                    decay_half_life: half_life,
                    defer_below: defer,
                    ambiguity_iou: iou,
                },
            )
    }

    fn run_serial(
        tracks: &TrackSet,
        model: &AppearanceModel,
        gate: GatePolicy,
    ) -> tm_core::PipelineReport {
        let config = PipelineConfig {
            gate,
            ..pipeline_config()
        };
        tm_core::run_pipeline(tracks, N_FRAMES, model, &config, None).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn gate_off_matches_always_extract_for_any_population(tracks in arb_tracks()) {
            let model = AppearanceModel::new(AppearanceConfig::default());
            let off = run_serial(&tracks, &model, GatePolicy::Off);
            let on = run_serial(
                &tracks,
                &model,
                GatePolicy::On(GateConfig::always_extract()),
            );
            prop_assert_eq!(sorted(&off.candidates), sorted(&on.candidates));
            prop_assert_eq!(&off.accepted, &on.accepted);
            prop_assert_eq!(off.stats.inferences, on.stats.inferences);
            prop_assert_eq!(off.stats.cache_hits, on.stats.cache_hits);
            prop_assert_eq!(off.elapsed_ms.to_bits(), on.elapsed_ms.to_bits());
        }

        #[test]
        fn gated_paths_agree_for_any_tuning(
            tracks in arb_tracks(),
            cfg in arb_gate(),
        ) {
            let model = AppearanceModel::new(AppearanceConfig::default());
            let gate = GatePolicy::On(cfg);
            let serial = run_serial(&tracks, &model, gate);
            let config = PipelineConfig {
                gate,
                ..pipeline_config()
            };
            let parallel =
                tm_core::run_pipeline_parallel(&tracks, N_FRAMES, &model, &config, None)
                    .unwrap();
            prop_assert_eq!(sorted(&serial.candidates), sorted(&parallel.candidates));
            prop_assert_eq!(&serial.accepted, &parallel.accepted);
            prop_assert_eq!(serial.stats.inferences, parallel.stats.inferences);

            let mut streaming = StreamingMerger::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                TMerge::new(selector_config()),
                StreamConfig { window_len: WINDOW_LEN, k: K, gate, voi: tm_core::VoiMode::Off },
            )
            .unwrap()
            .with_backend(&model);
            for frames in [150, 250, 400] {
                streaming.advance(&tracks, frames).unwrap();
            }
            streaming.finish(&tracks, N_FRAMES).unwrap();
            prop_assert_eq!(sorted(streaming.accepted()), sorted(&serial.accepted));
            prop_assert!((streaming.elapsed_ms() - serial.elapsed_ms).abs() < 1e-6);
        }
    }
}
