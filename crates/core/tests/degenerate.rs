//! Failure-injection and degenerate-input tests for the selection
//! algorithms: single-box tracks, provenance-free (false-positive) tracks,
//! exhausted pools, zero budgets, and windows larger than the video.

use tm_core::{
    build_window_pairs, run_pipeline, windows, Baseline, CandidateSelector, LcbConfig,
    LowerConfidenceBound, PipelineConfig, ProportionalSampling, PsConfig, SelectionInput,
    SelectorKind, TMerge, TMergeConfig,
};
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, ReidSession};
use tm_types::{
    ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackPair, TrackSet,
};

fn single_box_track(id: u64, actor: Option<u64>, frame: u64) -> Track {
    let mut tb = TrackBox::new(
        FrameIdx(frame),
        BBox::new(10.0 * id as f64, 0.0, 20.0, 40.0),
    );
    if let Some(a) = actor {
        tb = tb.with_provenance(GtObjectId(a));
    }
    Track::with_boxes(TrackId(id), classes::PEDESTRIAN, vec![tb])
}

fn selectors() -> Vec<Box<dyn CandidateSelector>> {
    vec![
        Box::new(Baseline),
        Box::new(ProportionalSampling::new(PsConfig { eta: 0.5, seed: 1 })),
        Box::new(LowerConfidenceBound::new(LcbConfig {
            tau_max: 50,
            seed: 1,
            record_history: false,
        })),
        Box::new(TMerge::new(TMergeConfig {
            tau_max: 50,
            seed: 1,
            ..TMergeConfig::default()
        })),
    ]
}

#[test]
fn single_box_tracks_are_handled_by_every_selector() {
    // Pools of exactly one BBox pair each.
    let tracks = TrackSet::from_tracks(vec![
        single_box_track(1, Some(7), 0),
        single_box_track(2, Some(7), 10),
        single_box_track(3, Some(8), 0),
    ]);
    let pairs: Vec<TrackPair> = vec![
        TrackPair::new(TrackId(1), TrackId(2)).unwrap(),
        TrackPair::new(TrackId(1), TrackId(3)).unwrap(),
        TrackPair::new(TrackId(2), TrackId(3)).unwrap(),
    ];
    let model = AppearanceModel::new(AppearanceConfig::default());
    for selector in selectors() {
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let input = SelectionInput {
            pairs: &pairs,
            tracks: &tracks,
            k: 1.0 / 3.0,
            voi: None,
        };
        let r = selector.select(&input, &mut session).unwrap();
        assert_eq!(r.candidates.len(), 1, "{}", selector.name());
        // All pools together hold 3 bbox pairs; no algorithm may exceed it.
        assert!(r.distance_evals <= 3, "{}", selector.name());
    }
}

#[test]
fn false_positive_tracks_do_not_poison_selection() {
    // Two real fragments of one actor plus two provenance-free FP tracks.
    let tracks = TrackSet::from_tracks(vec![
        single_box_track(1, Some(7), 0),
        single_box_track(2, Some(7), 10),
        single_box_track(3, None, 0),
        single_box_track(4, None, 5),
    ]);
    let ids = [1u64, 2, 3, 4];
    let mut pairs = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            pairs.push(TrackPair::new(TrackId(a), TrackId(b)).unwrap());
        }
    }
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let input = SelectionInput {
        pairs: &pairs,
        tracks: &tracks,
        k: 1.0 / 6.0,
        voi: None,
    };
    let r = Baseline.select(&input, &mut session).unwrap();
    assert_eq!(
        r.candidates,
        vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()],
        "the real fragment pair must outrank FP combinations"
    );
}

#[test]
fn zero_and_full_k_are_consistent_for_all_selectors() {
    let tracks = TrackSet::from_tracks(vec![
        single_box_track(1, Some(1), 0),
        single_box_track(2, Some(2), 0),
    ]);
    let pairs = vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()];
    let model = AppearanceModel::new(AppearanceConfig::default());
    for selector in selectors() {
        let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
        let none = selector
            .select(
                &SelectionInput {
                    pairs: &pairs,
                    tracks: &tracks,
                    k: 0.0,
                    voi: None,
                },
                &mut session,
            )
            .unwrap();
        assert!(none.candidates.is_empty(), "{} with k=0", selector.name());
        let all = selector
            .select(
                &SelectionInput {
                    pairs: &pairs,
                    tracks: &tracks,
                    k: 1.0,
                    voi: None,
                },
                &mut session,
            )
            .unwrap();
        assert_eq!(all.candidates.len(), 1, "{} with k=1", selector.name());
    }
}

#[test]
fn window_longer_than_video_is_one_window() {
    let ws = windows(500, 10_000).unwrap();
    assert_eq!(ws.len(), 1);
    let tracks = TrackSet::from_tracks(vec![
        single_box_track(1, Some(1), 0),
        single_box_track(2, Some(1), 400),
    ]);
    let wps = build_window_pairs(&tracks, 500, 10_000).unwrap();
    assert_eq!(wps[0].pairs.len(), 1);
}

#[test]
fn pipeline_survives_track_set_of_one() {
    let tracks = TrackSet::from_tracks(vec![single_box_track(1, Some(1), 0)]);
    let model = AppearanceModel::new(AppearanceConfig::default());
    let report = run_pipeline(
        &tracks,
        100,
        &model,
        &PipelineConfig {
            window_len: 100,
            k: 0.5,
            selector: SelectorKind::TMerge(TMergeConfig::default()),
            device: Device::Cpu,
            cost: CostModel::calibrated(),
            gate: tm_reid::GatePolicy::Off,
            voi: tm_core::VoiMode::Off,
        },
        None,
    )
    .unwrap();
    assert!(report.candidates.is_empty());
    assert_eq!(report.merged.len(), 1);
}

#[test]
fn odd_window_length_is_rejected_end_to_end() {
    let tracks = TrackSet::new();
    let model = AppearanceModel::new(AppearanceConfig::default());
    let err = run_pipeline(
        &tracks,
        100,
        &model,
        &PipelineConfig {
            window_len: 101,
            ..PipelineConfig::default()
        },
        None,
    );
    assert!(err.is_err());
}

#[test]
fn tmerge_with_budget_one_still_returns_m_candidates() {
    let tracks = TrackSet::from_tracks(vec![
        single_box_track(1, Some(1), 0),
        single_box_track(2, Some(1), 5),
        single_box_track(3, Some(2), 0),
    ]);
    let pairs: Vec<TrackPair> = vec![
        TrackPair::new(TrackId(1), TrackId(2)).unwrap(),
        TrackPair::new(TrackId(1), TrackId(3)).unwrap(),
        TrackPair::new(TrackId(2), TrackId(3)).unwrap(),
    ];
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut session = ReidSession::new(&model, CostModel::zero(), Device::Cpu);
    let tm = TMerge::new(TMergeConfig {
        tau_max: 1,
        ..TMergeConfig::default()
    });
    let r = tm
        .select(
            &SelectionInput {
                pairs: &pairs,
                tracks: &tracks,
                k: 2.0 / 3.0,
                voi: None,
            },
            &mut session,
        )
        .unwrap();
    assert_eq!(r.candidates.len(), 2);
    assert_eq!(r.distance_evals, 1);
}
