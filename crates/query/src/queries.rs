//! Query definitions and evaluation over a [`TrackSet`].

use serde::{Deserialize, Serialize};
use tm_types::{BBox, TrackId, TrackSet};

/// A declarative query over track metadata.
///
/// `PartialEq` only (not `Eq`): [`Query::RegionTransit`] carries an
/// [`BBox`] whose `f64` coordinates rule out total equality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Objects (tracks) that remain visible across **more than**
    /// `min_frames` frames (§V-H's *Count* query; 200 in the paper's
    /// example).
    Count {
        /// Duration threshold in frames.
        min_frames: u64,
    },
    /// Clips longer than `min_frames` in which the same `group_size`
    /// objects appear jointly (§V-H's *Co-occurring Objects*; 3 objects
    /// over 50 frames in the paper's example).
    CoOccurrence {
        /// Number of objects that must appear together.
        group_size: usize,
        /// Minimum joint-appearance length in frames.
        min_frames: u64,
    },
    /// Objects whose trajectory intersects `region` in at least
    /// `min_frames` observed frames (the spatially constrained extension
    /// class of [`crate::region`]).
    RegionTransit {
        /// The spatial region of interest (frame coordinates).
        region: BBox,
        /// Minimum dwell time in observed frames.
        min_frames: u64,
    },
}

/// A query result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryAnswer {
    /// The tracks satisfying a [`Query::Count`].
    Count(Vec<TrackId>),
    /// The track groups satisfying a [`Query::CoOccurrence`], each sorted
    /// ascending.
    CoOccurrence(Vec<Vec<TrackId>>),
    /// The tracks satisfying a [`Query::RegionTransit`].
    RegionTransit(Vec<TrackId>),
}

impl QueryAnswer {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::Count(v) => v.len(),
            QueryAnswer::CoOccurrence(v) => v.len(),
            QueryAnswer::RegionTransit(v) => v.len(),
        }
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluates a query.
pub fn evaluate(tracks: &TrackSet, query: Query) -> QueryAnswer {
    match query {
        Query::Count { min_frames } => QueryAnswer::Count(count_query(tracks, min_frames)),
        Query::CoOccurrence {
            group_size,
            min_frames,
        } => QueryAnswer::CoOccurrence(co_occurrence_query(tracks, group_size, min_frames)),
        Query::RegionTransit { region, min_frames } => QueryAnswer::RegionTransit(
            crate::region::region_transit_query(tracks, &region, min_frames),
        ),
    }
}

/// Tracks spanning more than `min_frames` frames, sorted by id.
pub fn count_query(tracks: &TrackSet, min_frames: u64) -> Vec<TrackId> {
    let mut out: Vec<TrackId> = tracks
        .iter()
        .filter(|t| t.span() > min_frames)
        .map(|t| t.id)
        .collect();
    out.sort();
    out
}

/// Groups of `group_size` distinct tracks whose lifetime intervals jointly
/// overlap for at least `min_frames` frames, each group sorted, the list
/// sorted lexicographically.
///
/// Joint appearance is evaluated on lifetime intervals
/// `[first_frame, last_frame]` — a track is considered present between its
/// first and last observation even across short detection holes, matching
/// how a clip-retrieval query treats an object that momentarily ducks
/// behind another.
pub fn co_occurrence_query(
    tracks: &TrackSet,
    group_size: usize,
    min_frames: u64,
) -> Vec<Vec<TrackId>> {
    if group_size == 0 {
        return Vec::new();
    }
    // Candidates must individually span enough frames.
    let mut spans: Vec<(TrackId, u64, u64)> = tracks
        .iter()
        .filter_map(|t| {
            let (f, l) = (t.first_frame()?, t.last_frame()?);
            (t.span() >= min_frames).then_some((t.id, f.get(), l.get()))
        })
        .collect();
    spans.sort();

    let mut out: Vec<Vec<TrackId>> = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    // Depth-first enumeration with interval-intersection pruning: extend a
    // partial group only while the running intersection stays ≥ min_frames.
    struct Dfs<'a> {
        spans: &'a [(TrackId, u64, u64)],
        group_size: usize,
        min_frames: u64,
    }
    impl Dfs<'_> {
        fn extend(
            &self,
            start: usize,
            window: (u64, u64),
            group: &mut Vec<usize>,
            out: &mut Vec<Vec<TrackId>>,
        ) {
            if group.len() == self.group_size {
                out.push(group.iter().map(|&i| self.spans[i].0).collect());
                return;
            }
            for i in start..self.spans.len() {
                let (_, f, l) = self.spans[i];
                let nlo = window.0.max(f);
                let nhi = window.1.min(l);
                if nhi < nlo || nhi - nlo + 1 < self.min_frames {
                    continue;
                }
                group.push(i);
                self.extend(i + 1, (nlo, nhi), group, out);
                group.pop();
            }
        }
    }
    Dfs {
        spans: &spans,
        group_size,
        min_frames,
    }
    .extend(0, (0, u64::MAX), &mut group, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, Track, TrackBox};

    fn track(id: u64, first: u64, last: u64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            // Sparse observations: only the endpoints (span semantics).
            vec![
                TrackBox::new(FrameIdx(first), BBox::new(0.0, 0.0, 10.0, 10.0)),
                TrackBox::new(FrameIdx(last), BBox::new(0.0, 0.0, 10.0, 10.0)),
            ],
        )
    }

    #[test]
    fn count_query_uses_strict_threshold() {
        // Spans: 201, 200, 199 frames.
        let ts = TrackSet::from_tracks(vec![track(1, 0, 200), track(2, 0, 199), track(3, 0, 198)]);
        assert_eq!(count_query(&ts, 200), vec![TrackId(1)]);
        assert_eq!(count_query(&ts, 100).len(), 3);
    }

    #[test]
    fn fragmentation_hides_count_results() {
        // One actor visible 0..=300 but fragmented at frame 150.
        let fragmented = TrackSet::from_tracks(vec![track(1, 0, 150), track(2, 151, 300)]);
        assert!(count_query(&fragmented, 200).is_empty());
        // Merged, it qualifies.
        let mut map = std::collections::HashMap::new();
        map.insert(TrackId(2), TrackId(1));
        let merged = fragmented.relabeled(&map);
        assert_eq!(count_query(&merged, 200), vec![TrackId(1)]);
    }

    #[test]
    fn co_occurrence_finds_overlapping_triples() {
        let ts = TrackSet::from_tracks(vec![
            track(1, 0, 100),
            track(2, 20, 120),
            track(3, 40, 140),
            track(4, 95, 200), // overlaps the others < 50 frames jointly
        ]);
        let groups = co_occurrence_query(&ts, 3, 50);
        assert_eq!(groups, vec![vec![TrackId(1), TrackId(2), TrackId(3)]]);
    }

    #[test]
    fn co_occurrence_pairs_and_identity_cases() {
        let ts = TrackSet::from_tracks(vec![track(1, 0, 100), track(2, 50, 160)]);
        assert_eq!(
            co_occurrence_query(&ts, 2, 51),
            vec![vec![TrackId(1), TrackId(2)]]
        );
        assert!(co_occurrence_query(&ts, 2, 52).is_empty());
        assert!(co_occurrence_query(&ts, 0, 10).is_empty());
        // group_size 1 degenerates to the duration predicate.
        assert_eq!(co_occurrence_query(&ts, 1, 101).len(), 2);
    }

    #[test]
    fn evaluate_dispatches() {
        let ts = TrackSet::from_tracks(vec![track(1, 0, 300)]);
        assert_eq!(
            evaluate(&ts, Query::Count { min_frames: 200 }),
            QueryAnswer::Count(vec![TrackId(1)])
        );
        let a = evaluate(
            &ts,
            Query::CoOccurrence {
                group_size: 2,
                min_frames: 10,
            },
        );
        assert!(a.is_empty());
    }

    #[test]
    fn evaluate_dispatches_region_transit() {
        // Both observed boxes sit at (0,0,10,10); the region covers them,
        // so dwell == 2 observed frames.
        let ts = TrackSet::from_tracks(vec![track(1, 0, 300)]);
        let inside = Query::RegionTransit {
            region: BBox::new(0.0, 0.0, 20.0, 20.0),
            min_frames: 2,
        };
        assert_eq!(
            evaluate(&ts, inside),
            QueryAnswer::RegionTransit(vec![TrackId(1)])
        );
        let strict = Query::RegionTransit {
            region: BBox::new(0.0, 0.0, 20.0, 20.0),
            min_frames: 3,
        };
        let a = evaluate(&ts, strict);
        assert!(a.is_empty());
        assert_eq!(a, QueryAnswer::RegionTransit(Vec::new()));
        // Far-away region: no dwell at all.
        let outside = Query::RegionTransit {
            region: BBox::new(500.0, 500.0, 5.0, 5.0),
            min_frames: 1,
        };
        assert!(evaluate(&ts, outside).is_empty());
    }
}
