//! # tm-query
//!
//! A small declarative query layer over track metadata — the downstream
//! consumer TMerge exists to serve (§V-H of the paper). It implements the
//! two query classes of the paper's end-to-end evaluation, in the style of
//! the temporal query framework of Chen et al. [13]:
//!
//! * **Count** — objects (individual tracks) visible across more than a
//!   given number of frames ("find congestion", "find loiterers"),
//! * **Co-occurring objects** — clips longer than a given number of frames
//!   in which the same `k` objects appear jointly.
//!
//! Both depend entirely on track *identity*: a fragmented track either
//! fails the duration predicate or breaks the joint-appearance group, which
//! is why polyonymous tracks depress recall (Fig. 13) and why merging them
//! restores it.
//!
//! Recall evaluation compares tracker answers with ground-truth answers
//! through a caller-supplied track → GT-actor attribution (in this
//! workspace, `tm_metrics::Correspondence`).

pub mod anytime;
pub mod queries;
pub mod recall;
pub mod region;

pub use anytime::{
    voi_hints, AnytimeAnswer, AnytimeConfig, AnytimeQuery, AnytimeStream, IntervalPoint,
};
pub use queries::{co_occurrence_query, count_query, evaluate, Query, QueryAnswer};
pub use recall::{co_occurrence_recall, count_recall};
pub use region::{region_transit_query, region_transit_recall};
