//! Region-transit queries — an extension query class in the spirit of the
//! spatially constrained queries of Bastani et al. [41]: find objects whose
//! trajectory passes through a region of the frame (a doorway, a crossing,
//! a restricted zone) for at least a given dwell time.
//!
//! Like Count and Co-occurrence, the answer depends on track identity:
//! a fragmented track can split the dwell interval below the threshold,
//! hiding the object from the query until TMerge repairs it.

use std::collections::{BTreeSet, HashMap};
use tm_types::{BBox, GtObjectId, TrackId, TrackSet};

/// Tracks whose boxes intersect `region` in at least `min_frames`
/// (not necessarily consecutive) observed frames, sorted by id.
pub fn region_transit_query(tracks: &TrackSet, region: &BBox, min_frames: u64) -> Vec<TrackId> {
    let mut out: Vec<TrackId> = tracks
        .iter()
        .filter(|t| {
            let dwell = t
                .boxes
                .iter()
                .filter(|b| b.bbox.intersection_area(region) > 0.0)
                .count() as u64;
            dwell >= min_frames
        })
        .map(|t| t.id)
        .collect();
    out.sort();
    out
}

/// Recall of the region query: qualifying GT objects recovered by some
/// attributed qualifying track. 1.0 when nothing qualifies in GT.
pub fn region_transit_recall(
    pred: &TrackSet,
    gt: &TrackSet,
    region: &BBox,
    min_frames: u64,
    attribution: &HashMap<TrackId, GtObjectId>,
) -> f64 {
    let gt_hits: BTreeSet<GtObjectId> = region_transit_query(gt, region, min_frames)
        .into_iter()
        .map(|t| GtObjectId(t.get()))
        .collect();
    if gt_hits.is_empty() {
        return 1.0;
    }
    let found: BTreeSet<GtObjectId> = region_transit_query(pred, region, min_frames)
        .into_iter()
        .filter_map(|t| attribution.get(&t).copied())
        .collect();
    gt_hits.intersection(&found).count() as f64 / gt_hits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, FrameIdx, Track, TrackBox};

    fn walking_track(id: u64, frames: std::ops::Range<u64>, x0: f64, vx: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| {
                    TrackBox::new(
                        FrameIdx(f),
                        BBox::new(x0 + vx * f as f64, 100.0, 20.0, 40.0),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn finds_tracks_crossing_the_region() {
        // Track 1 walks through x ∈ [0, 300]; region covers x ∈ [100, 160].
        let ts = TrackSet::from_tracks(vec![
            walking_track(1, 0..100, 0.0, 3.0),
            walking_track(2, 0..100, 1000.0, 0.0), // never enters
        ]);
        let region = BBox::new(100.0, 0.0, 60.0, 400.0);
        // The 20-wide box intersects [100,160] for x in [80,160] → ~27
        // frames at 3 px/frame.
        let hits = region_transit_query(&ts, &region, 20);
        assert_eq!(hits, vec![TrackId(1)]);
        // Raising the dwell requirement excludes it.
        assert!(region_transit_query(&ts, &region, 40).is_empty());
    }

    #[test]
    fn fragmentation_breaks_dwell_and_merge_restores_it() {
        // Dwell interval split across two fragments: neither passes alone.
        let region = BBox::new(100.0, 0.0, 300.0, 400.0);
        let frag = TrackSet::from_tracks(vec![
            walking_track(1, 0..50, 0.0, 3.0),
            walking_track(2, 50..100, 0.0, 3.0),
        ]);
        // In-region frames: x+20 > 100 → f > 26.6; so track 1 dwells ~23
        // frames, track 2 dwells 50: with min 60 neither qualifies.
        assert!(region_transit_query(&frag, &region, 60).is_empty());
        let mut map = HashMap::new();
        map.insert(TrackId(2), TrackId(1));
        let merged = frag.relabeled(&map);
        assert_eq!(region_transit_query(&merged, &region, 60), vec![TrackId(1)]);
    }

    #[test]
    fn recall_accounts_for_attribution() {
        let region = BBox::new(0.0, 0.0, 2000.0, 400.0);
        let gt = TrackSet::from_tracks(vec![walking_track(1, 0..100, 0.0, 1.0)]);
        let pred = TrackSet::from_tracks(vec![walking_track(10, 0..100, 0.0, 1.0)]);
        let mut attribution = HashMap::new();
        assert_eq!(
            region_transit_recall(&pred, &gt, &region, 50, &attribution),
            0.0
        );
        attribution.insert(TrackId(10), GtObjectId(1));
        assert_eq!(
            region_transit_recall(&pred, &gt, &region, 50, &attribution),
            1.0
        );
    }

    #[test]
    fn empty_gt_answer_gives_recall_one() {
        let region = BBox::new(5000.0, 5000.0, 10.0, 10.0);
        let gt = TrackSet::from_tracks(vec![walking_track(1, 0..10, 0.0, 1.0)]);
        assert_eq!(
            region_transit_recall(&TrackSet::new(), &gt, &region, 1, &HashMap::new()),
            1.0
        );
    }
}
