//! Anytime query-driven merging (DESIGN.md §17).
//!
//! The classic pipeline is query-agnostic: it spends its whole inference
//! budget repairing track identity, then the query layer reads the result.
//! This module inverts the relationship, in the spirit of TRACER-style
//! anytime processing: the *query* drives candidate selection, and the
//! caller can stop at any budget with a sound answer interval.
//!
//! Three pieces:
//!
//! * **Value-of-information hints** ([`voi_hints`]) — a per-pair weight in
//!   `[0, 1]` measuring how much resolving that pair could move the answer
//!   of a specific [`Query`]. Weight `0.0` is reserved for pairs that are
//!   *provably irrelevant* (no outcome of the pair can ever change the
//!   answer); the selectors defer those outright, and their per-window
//!   charge becomes headroom for relevant pairs. Positive weights reweight
//!   bandit arm selection softly (see `tm_core::voi`).
//! * **Sound answer intervals** — after any prefix of the work, the final
//!   answer cardinality is bracketed by `[lo, hi]`: `lo` counts only what
//!   the accepted merges already guarantee, `hi` additionally grants every
//!   still-plausible merge. Both are computed against the *component
//!   structure* of the undecided pair graph, so they are sound for every
//!   realizable completion of the run.
//! * **Drivers** — [`AnytimeQuery`] (offline: whole video known up front,
//!   windows scheduled by descending VoI, monotonically tightening interval,
//!   early termination when `lo == hi`) and [`AnytimeStream`] (online:
//!   wraps a [`StreamingMerger`], refreshes hints between advances, reports
//!   raw per-watermark intervals, and converges to the exact answer at
//!   `finish`). Stream interval state rides a `TMAQ` checkpoint envelope
//!   wrapping the merger's own `TMCK` blob.
//!
//! ## Budget unit
//!
//! The budget counts **pairwise distance evaluations** — the unit the
//! selectors' per-window `τ_max` is denominated in. `inferences_spent`
//! reports the same unit. A budgeted offline run spreads what remains over
//! the windows still unprocessed (breadth over depth): every window is
//! visited at a reduced per-window `τ`, instead of the first few windows
//! exhausting the budget at full depth, and unspent allowance flows to
//! later windows. Budget adherence is approximate at window granularity: a
//! selector's initialisation phase may charge slightly past the remaining
//! budget before the clamp takes effect, so callers must not assume
//! `inferences_spent <= budget` exactly.
//!
//! ## Interval soundness
//!
//! Let `G_lo` be the partition induced by accepted merges only, and `G_hi`
//! the coarser partition induced by accepted ∪ plausible pairs. Any final
//! partition refines `G_hi` and coarsens `G_lo`, so per-`G_hi`-component
//! bounds over *all* partitions of its `G_lo` sub-components bracket every
//! realizable outcome (possibly loosely — unconstrained partitions are a
//! superset of realizable ones, which only widens the interval). The
//! current `G_lo` partition itself is realizable (the selectors may accept
//! nothing further), hence `estimate ∈ [lo, hi]` at every step, and the
//! full-budget answer is realizable at every prefix, hence it lies inside
//! every intermediate interval — the property battery pins both.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use tm_core::checkpoint::{Reader, Writer};
use tm_core::{
    build_window_pairs, CandidateSelector, PipelineConfig, SelectionInput, StreamingMerger,
    UnionFind, VoiHints, VoiMode,
};
use tm_reid::{AppearanceModel, ReidSession};
use tm_types::{BBox, Result, TmError, Track, TrackId, TrackPair, TrackSet};

use crate::queries::{evaluate, Query, QueryAnswer};

/// `TMAQ` in ASCII — the anytime-stream checkpoint envelope magic.
const TMAQ_MAGIC: u64 = 0x544d_4151;
const TMAQ_VERSION: u64 = 1;

fn corrupt(reason: &str) -> TmError {
    TmError::invalid("anytime checkpoint", reason)
}

// ---------------------------------------------------------------------------
// Configuration and answer types
// ---------------------------------------------------------------------------

/// How an anytime run spends and stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimeConfig {
    /// Total distance-evaluation budget; `None` runs to completion.
    pub budget: Option<u64>,
    /// Stop as soon as the interval closes (`lo == hi`): every remaining
    /// inference is provably unable to change the answer cardinality.
    pub stop_on_convergence: bool,
    /// Attach VoI hints to the selectors (defer weight-0 pairs, bias the
    /// rest). With `false` the run is query-agnostic — same candidates as
    /// the classic pipeline — and only the interval reporting is added.
    pub reweight_arms: bool,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        Self {
            budget: None,
            stop_on_convergence: true,
            reweight_arms: true,
        }
    }
}

/// One point of the interval trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalPoint {
    /// Distance evaluations spent when the point was taken.
    pub spent: u64,
    /// Answer cardinality of the current accepted partition.
    pub estimate: u64,
    /// Sound lower bound on the final answer cardinality.
    pub lo: f64,
    /// Sound upper bound on the final answer cardinality.
    pub hi: f64,
}

/// What an anytime run returns.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeAnswer {
    /// Answer cardinality of the final accepted partition.
    pub estimate: u64,
    /// Final lower bound (equals `estimate` when `converged`).
    pub lo: f64,
    /// Final upper bound (equals `estimate` when `converged`).
    pub hi: f64,
    /// Total distance evaluations spent.
    pub inferences_spent: u64,
    /// True when `lo == hi`: the cardinality can no longer change.
    pub converged: bool,
    /// True when convergence fired before all windows were processed.
    pub terminated_early: bool,
    /// The concrete answer rows on the final accepted partition.
    pub answer: QueryAnswer,
    /// The merges the run accepted (committed only, for a stream).
    pub accepted: Vec<TrackPair>,
    /// Interval after every processed window (first point is pre-work).
    pub trajectory: Vec<IntervalPoint>,
    /// Pairs deferred as provably irrelevant to the query.
    pub deferred: u64,
}

// ---------------------------------------------------------------------------
// Per-track / per-component statistics
// ---------------------------------------------------------------------------

/// The per-track facts every query class reads: lifetime interval and —
/// for region queries — dwell inside the region.
#[derive(Debug, Clone, Copy, Default)]
struct TrackStat {
    /// Track has at least one observation.
    live: bool,
    first: u64,
    last: u64,
    /// Region dwell in observed frames (0 unless the query is
    /// [`Query::RegionTransit`]).
    dwell: u64,
}

impl TrackStat {
    fn span(&self) -> u64 {
        if self.live {
            self.last - self.first + 1
        } else {
            0
        }
    }
}

fn track_stats(tracks: &TrackSet, query: &Query) -> HashMap<TrackId, TrackStat> {
    let region = match query {
        Query::RegionTransit { region, .. } => Some(*region),
        _ => None,
    };
    tracks
        .iter()
        .map(|t| {
            let stat = match (t.first_frame(), t.last_frame()) {
                (Some(f), Some(l)) => TrackStat {
                    live: true,
                    first: f.get(),
                    last: l.get(),
                    dwell: region.map_or(0, |r| dwell(t, &r)),
                },
                _ => TrackStat::default(),
            };
            (t.id, stat)
        })
        .collect()
}

/// Frames in which the track's box overlaps `region` — the
/// [`crate::region::region_transit_query`] predicate, additive under merge.
fn dwell(t: &Track, region: &BBox) -> u64 {
    t.boxes
        .iter()
        .filter(|b| b.bbox.intersection_area(region) > 0.0)
        .count() as u64
}

/// Aggregate of a set of tracks: interval hull and total dwell. The hull
/// span upper-bounds the span of any merged subset; dwell is exactly
/// additive.
#[derive(Debug, Clone, Copy, Default)]
struct CompStat {
    live: bool,
    first: u64,
    last: u64,
    dwell: u64,
}

impl CompStat {
    fn absorb(&mut self, s: &TrackStat) {
        self.dwell += s.dwell;
        if !s.live {
            return;
        }
        if !self.live {
            (self.first, self.last) = (s.first, s.last);
            self.live = true;
        } else {
            self.first = self.first.min(s.first);
            self.last = self.last.max(s.last);
        }
    }

    fn absorb_comp(&mut self, c: &CompStat) {
        self.dwell += c.dwell;
        if !c.live {
            return;
        }
        if !self.live {
            (self.first, self.last) = (c.first, c.last);
            self.live = true;
        } else {
            self.first = self.first.min(c.first);
            self.last = self.last.max(c.last);
        }
    }

    fn span(&self) -> u64 {
        if self.live {
            self.last - self.first + 1
        } else {
            0
        }
    }
}

fn pair_hull(a: &TrackStat, b: &TrackStat) -> u64 {
    let mut c = CompStat::default();
    c.absorb(a);
    c.absorb(b);
    c.span()
}

// ---------------------------------------------------------------------------
// Value-of-information hints
// ---------------------------------------------------------------------------

/// Per-pair value-of-information weights for `query` over the candidate
/// universe `pairs`.
///
/// Weight `0.0` (deferral) is only assigned when *no outcome* of the pair
/// can change the query answer — the arguments are component-local:
/// merges never cross the connected components of the pair universe, so a
/// component whose aggregate can never satisfy the predicate contributes
/// zero rows under every completion, and merges inside it are irrelevant.
/// Positive weights are soft priorities ranked by how much the pair can
/// still *grow* the answer: 1.0 = the merge can mint a new answer row out
/// of two non-qualifying fragments, 0.5 = transitive value (extends a
/// qualifying track, or builds toward the floor through a chain), 0.25 =
/// shrink-only (both sides already qualify — resolving the pair can only
/// collapse rows the `hi` bound has already granted).
pub fn voi_hints(tracks: &TrackSet, query: Query, pairs: &[TrackPair]) -> VoiHints {
    let stats = track_stats(tracks, &query);
    let mut uf = UnionFind::new();
    for p in pairs {
        uf.union(p.lo(), p.hi());
    }
    let mut comps: HashMap<TrackId, CompStat> = HashMap::new();
    for t in tracks.iter() {
        let root = uf.find(t.id);
        comps
            .entry(root)
            .or_default()
            .absorb(stats.get(&t.id).unwrap_or(&TrackStat::default()));
    }
    let mut hints = VoiHints::new();
    for p in pairs {
        let a = stats.get(&p.lo()).copied().unwrap_or_default();
        let b = stats.get(&p.hi()).copied().unwrap_or_default();
        let comp = comps.get(&uf.find(p.lo())).copied().unwrap_or_default();
        let w = match query {
            Query::Count { min_frames } => weight_count(&a, &b, &comp, min_frames),
            Query::RegionTransit { min_frames, .. } => weight_region(&a, &b, &comp, min_frames),
            Query::CoOccurrence { min_frames, .. } => {
                weight_co_occurrence(&a, &b, &comp, min_frames)
            }
        };
        hints.set(*p, w);
    }
    hints
}

/// Count asks for merged span `> min_frames` (strict, matching
/// [`crate::queries::count_query`]).
fn weight_count(a: &TrackStat, b: &TrackStat, comp: &CompStat, min_frames: u64) -> f64 {
    // Provably irrelevant: the span of any merged subset of the component
    // is at most the component hull, so nothing in here ever qualifies and
    // the component contributes zero rows under every completion.
    if comp.span() <= min_frames {
        return 0.0;
    }
    let qa = a.span() > min_frames;
    let qb = b.span() > min_frames;
    if qa && qb {
        0.25 // shrink-only: collapses two counted tracks into one
    } else if !qa && !qb && pair_hull(a, b) > min_frames {
        1.0 // mint: two short fragments can jointly clear the floor
    } else {
        0.5 // transitive: extends a counted track, or chains toward the floor
    }
}

/// RegionTransit asks for merged dwell `>= min_frames`; dwell is exactly
/// additive under merge.
fn weight_region(a: &TrackStat, b: &TrackStat, comp: &CompStat, min_frames: u64) -> f64 {
    // Provably irrelevant: merged dwell can never exceed the component's
    // total dwell.
    if comp.dwell < min_frames {
        return 0.0;
    }
    let qa = a.dwell >= min_frames;
    let qb = b.dwell >= min_frames;
    if qa && qb {
        0.25 // shrink-only: two transiting rows collapse into one
    } else if !qa && !qb && a.dwell + b.dwell >= min_frames {
        1.0 // mint: two sub-threshold dwells add up past the floor
    } else {
        0.5 // transitive: extends a row, or chains dwell toward the floor
    }
}

/// Co-occurrence group members must individually span `>= min_frames`.
fn weight_co_occurrence(a: &TrackStat, b: &TrackStat, comp: &CompStat, min_frames: u64) -> f64 {
    // Provably irrelevant: no merged subset of the component can reach the
    // individual-span floor, so no member of any qualifying group can ever
    // come from this component.
    if comp.span() < min_frames {
        return 0.0;
    }
    // Unlike Count/RegionTransit there is no shrink-only class: merging
    // two already-eligible fragments of one actor still *extends* the
    // member's interval union, which can mint new joint groups.
    if pair_hull(a, b) >= min_frames {
        1.0 // the merged track can be (or stay) an eligible, longer member
    } else {
        0.5 // transitive: chains toward member eligibility
    }
}

// ---------------------------------------------------------------------------
// Sound interval bounds
// ---------------------------------------------------------------------------

/// Bounds the final answer cardinality given the accepted merges and the
/// still-plausible pairs. `answer` must be the evaluation of `query` on
/// the accepted (`G_lo`) partition — it seeds the co-occurrence witness
/// count.
fn bound_interval(
    tracks: &TrackSet,
    query: &Query,
    stats: &HashMap<TrackId, TrackStat>,
    accepted: &[TrackPair],
    plausible: &[TrackPair],
    answer: &QueryAnswer,
) -> (f64, f64) {
    // G_lo: partition under accepted merges only.
    let mut uf_lo = UnionFind::new();
    for p in accepted {
        uf_lo.union(p.lo(), p.hi());
    }
    let mut lo_comps: BTreeMap<TrackId, CompStat> = BTreeMap::new();
    for t in tracks.iter() {
        let root = uf_lo.find(t.id);
        lo_comps
            .entry(root)
            .or_default()
            .absorb(stats.get(&t.id).unwrap_or(&TrackStat::default()));
    }

    // G_hi: partition under accepted ∪ plausible; group G_lo components by
    // their G_hi root. The G_lo root is the smallest member id (UnionFind
    // relabels to min), which is itself a member, so find() is well-defined.
    let mut uf_hi = UnionFind::new();
    for p in accepted.iter().chain(plausible.iter()) {
        uf_hi.union(p.lo(), p.hi());
    }
    let mut hi_comps: BTreeMap<TrackId, Vec<CompStat>> = BTreeMap::new();
    for (&root, &stat) in &lo_comps {
        hi_comps.entry(uf_hi.find(root)).or_default().push(stat);
    }

    match *query {
        Query::Count { min_frames } => {
            let (mut lo, mut hi) = (0.0, 0.0);
            for members in hi_comps.values() {
                let mut hull = CompStat::default();
                for m in members {
                    hull.absorb_comp(m);
                }
                let n_q = members.iter().filter(|m| m.span() > min_frames).count();
                let n_nq = members.len() - n_q;
                // Any partition keeps at least one row per qualifying
                // member (its group's span only grows); merging the whole
                // component reaches exactly one row.
                lo += f64::from(u8::from(n_q >= 1));
                // Each qualifying member can stand alone; extra rows need
                // >= 2 non-qualifying members and a hull that clears the
                // threshold at all.
                let extra = if n_nq >= 2 && hull.span() > min_frames {
                    (n_nq / 2) as f64
                } else {
                    0.0
                };
                hi += n_q as f64 + extra;
            }
            (lo, hi)
        }
        Query::RegionTransit { min_frames, .. } => {
            let (mut lo, mut hi) = (0.0, 0.0);
            for members in hi_comps.values() {
                let n_q = members.iter().filter(|m| m.dwell >= min_frames).count();
                let positives: Vec<u64> = members
                    .iter()
                    .filter(|m| m.dwell > 0 && m.dwell < min_frames)
                    .map(|m| m.dwell)
                    .collect();
                lo += f64::from(u8::from(n_q >= 1));
                // Dwell is additive and disjoint across final groups: a new
                // qualifying group needs >= 2 positive sub-threshold members
                // and >= min_frames of their combined dwell.
                let total: u64 = positives.iter().sum();
                // min_frames == 0 means every track already qualifies (the
                // positives list is empty); checked_div keeps that total.
                let extra =
                    (positives.len() / 2).min(total.checked_div(min_frames).unwrap_or(0) as usize);
                hi += (n_q + extra) as f64;
            }
            (lo, hi)
        }
        Query::CoOccurrence {
            group_size,
            min_frames,
        } => {
            let lo = co_occurrence_lo(answer, &mut uf_hi);
            let hi = co_occurrence_hi(&hi_comps, group_size, min_frames);
            (lo, hi)
        }
    }
}

/// Lower bound for co-occurrence: each answer group on the accepted
/// partition whose members live in `group_size` *distinct* `G_hi`
/// components survives every completion — member intervals only grow under
/// merging (so individual span and joint overlap keep qualifying) and
/// members in different `G_hi` components can never merge with each other.
/// Distinct component sets yield distinct final groups, so the number of
/// distinct component sets is a sound floor.
fn co_occurrence_lo(answer: &QueryAnswer, uf_hi: &mut UnionFind) -> f64 {
    let QueryAnswer::CoOccurrence(groups) = answer else {
        return 0.0;
    };
    let mut witness: BTreeSet<Vec<TrackId>> = BTreeSet::new();
    for g in groups {
        let mut roots: Vec<TrackId> = g.iter().map(|&id| uf_hi.find(id)).collect();
        roots.sort();
        roots.dedup();
        if roots.len() == g.len() {
            witness.insert(roots);
        }
    }
    witness.len() as f64
}

/// DFS node budget for the co-occurrence upper bound; beyond it the loose
/// `C(Σ multiplicities, g)` fallback applies.
const CO_OCCURRENCE_DFS_BUDGET: u64 = 2_000_000;

/// Upper bound for co-occurrence: every final track lies inside one `G_hi`
/// component (interval ⊆ component hull) and a component with `m` `G_lo`
/// sub-components splits into at most `m` final tracks. Sum over chains of
/// components with pairwise hull-intersection `>= min_frames`, counting
/// `Π C(m_i, k_i)` member choices with `Σ k_i = group_size` — a superset
/// of every realizable group set.
fn co_occurrence_hi(
    hi_comps: &BTreeMap<TrackId, Vec<CompStat>>,
    group_size: usize,
    min_frames: u64,
) -> f64 {
    if group_size == 0 {
        return 0.0;
    }
    // Eligible components: hull must clear the individual-span floor.
    let mut comps: Vec<(u64, u64, u64)> = hi_comps
        .values()
        .filter_map(|members| {
            let mut hull = CompStat::default();
            for m in members {
                hull.absorb_comp(m);
            }
            (hull.live && hull.span() >= min_frames).then_some((
                hull.first,
                hull.last,
                members.len() as u64,
            ))
        })
        .collect();
    comps.sort_unstable();

    let mut nodes = CO_OCCURRENCE_DFS_BUDGET;
    let mut total = 0.0;
    let mut exhausted = false;
    // Iterative DFS over (next comp index, window, remaining picks, ways).
    let mut stack: Vec<(usize, u64, u64, usize, f64)> = comps
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.0, c.1, group_size, 1.0))
        .collect();
    while let Some((i, w_lo, w_hi, rem, ways)) = stack.pop() {
        let (c_lo, c_hi, mult) = comps[i];
        let n_lo = w_lo.max(c_lo);
        let n_hi = w_hi.min(c_hi);
        if n_hi < n_lo || n_hi - n_lo + 1 < min_frames {
            continue;
        }
        for k in 1..=rem.min(mult as usize) {
            if nodes == 0 {
                exhausted = true;
                break;
            }
            nodes -= 1;
            let w = ways * binom_f64(mult, k as u64);
            if k == rem {
                total += w;
            } else {
                for (j, c) in comps.iter().enumerate().skip(i + 1) {
                    // Sorted by hull start: once a component starts past
                    // the window, every later one does too.
                    if c.0 > n_hi {
                        break;
                    }
                    stack.push((j, n_lo, n_hi, rem - k, w));
                }
            }
        }
        if exhausted {
            break;
        }
    }
    if exhausted {
        // Loose but sound: choose any group_size of the eligible slots.
        let slots: u64 = comps.iter().map(|c| c.2).sum();
        return binom_f64(slots, group_size as u64);
    }
    total
}

/// Binomial coefficient in `f64` (sound as an upper bound even when it
/// saturates to `inf`).
fn binom_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 1..=k {
        acc = acc * ((n - k + i) as f64) / (i as f64);
    }
    acc
}

// ---------------------------------------------------------------------------
// Offline driver
// ---------------------------------------------------------------------------

/// Offline anytime query processor: the whole video is known up front.
///
/// Windows are processed in descending value-of-information order (highest
/// max pair weight first, window index breaking ties), so the interval
/// tightens as fast as possible; because the selectors are stateless and
/// deterministically seeded, and the pair universe is globally
/// de-duplicated, the *full-budget* accepted set is identical to the
/// classic window-order pipeline's — the differential suite pins this.
#[derive(Debug, Clone)]
pub struct AnytimeQuery {
    /// The underlying pipeline shape (window length, K, selector, cost).
    pub pipeline: PipelineConfig,
    /// Anytime behaviour (budget, convergence stop, VoI reweighting).
    pub config: AnytimeConfig,
}

impl AnytimeQuery {
    /// A driver over `pipeline` with anytime behaviour `config`.
    pub fn new(pipeline: PipelineConfig, config: AnytimeConfig) -> Self {
        Self { pipeline, config }
    }

    /// Runs `query` over `tracks`, interleaving candidate scoring with
    /// query evaluation until the budget is exhausted, the interval
    /// converges, or the video is fully processed.
    pub fn run(
        &self,
        tracks: &TrackSet,
        n_frames: u64,
        model: &AppearanceModel,
        query: Query,
    ) -> Result<AnytimeAnswer> {
        tracks.validate()?;
        let obs = tm_obs::current();
        let stats = track_stats(tracks, &query);
        let windows = build_window_pairs(tracks, n_frames, self.pipeline.window_len)?;
        let universe: Vec<TrackPair> = windows.iter().flat_map(|w| w.pairs.clone()).collect();

        let hints = voi_hints(tracks, query, &universe);
        let deferred = universe.iter().filter(|p| hints.deferred(p)).count() as u64;
        obs.counter("query.voi.deferred", deferred);
        // Deferred pairs leave the plausible set only when the hints are
        // actually enforced; an un-hinted selector can still pick them.
        let enforce_deferral = self.config.reweight_arms;

        // Descending total pair VoI, stable on window index — windows dense
        // in answer-growing pairs tighten the interval fastest.
        // Result-invariant (selectors are stateless, pairs globally unique)
        // — only *when* the interval tightens depends on the order.
        let mut order: Vec<usize> = (0..windows.len())
            .filter(|&wi| !windows[wi].pairs.is_empty())
            .collect();
        let total_w = |wi: usize| {
            windows[wi]
                .pairs
                .iter()
                .map(|p| hints.weight(p))
                .sum::<f64>()
        };
        order.sort_by(|&a, &b| total_w(b).total_cmp(&total_w(a)).then(a.cmp(&b)));

        let mut session = ReidSession::new(model, self.pipeline.cost, self.pipeline.device)
            .with_gate(self.pipeline.gate);
        session.gate_update_plan(tracks);

        let mut processed = vec![false; windows.len()];
        let mut accepted: Vec<TrackPair> = Vec::new();
        let mut spent = 0u64;
        let mut trajectory: Vec<IntervalPoint> = Vec::new();
        let (mut run_lo, mut run_hi) = (f64::NEG_INFINITY, f64::INFINITY);
        let mut flips = 0u64;
        let mut terminated_early = false;

        let observe = |accepted: &[TrackPair],
                       processed: &[bool],
                       spent: u64,
                       trajectory: &mut Vec<IntervalPoint>,
                       run_lo: &mut f64,
                       run_hi: &mut f64,
                       flips: &mut u64|
         -> (u64, QueryAnswer) {
            let mapping = tm_core::merge_mapping(accepted);
            let merged = tracks.relabeled(&mapping);
            let answer = evaluate(&merged, query);
            let plausible: Vec<TrackPair> = windows
                .iter()
                .enumerate()
                .filter(|&(wi, _)| !processed[wi])
                .flat_map(|(_, w)| w.pairs.iter())
                .filter(|p| !(enforce_deferral && hints.deferred(p)))
                .copied()
                .collect();
            let (lo, hi) = bound_interval(tracks, &query, &stats, accepted, &plausible, &answer);
            // The universe only shrinks, so the interval can only tighten;
            // intersect with the running interval to make that monotone
            // even across bound slack.
            *run_lo = run_lo.max(lo);
            *run_hi = run_hi.min(hi);
            let estimate = answer.len() as u64;
            if let Some(prev) = trajectory.last() {
                if prev.estimate != estimate {
                    *flips += 1;
                }
            }
            trajectory.push(IntervalPoint {
                spent,
                estimate,
                lo: *run_lo,
                hi: *run_hi,
            });
            (estimate, answer)
        };

        // Pre-work point: nothing accepted, everything plausible.
        let (mut estimate, mut answer) = observe(
            &accepted,
            &processed,
            spent,
            &mut trajectory,
            &mut run_lo,
            &mut run_hi,
            &mut flips,
        );

        for (pos, &wi) in order.iter().enumerate() {
            if run_lo == run_hi && self.config.stop_on_convergence {
                terminated_early = true;
                break;
            }
            let remaining = match self.config.budget {
                Some(b) if spent >= b => break,
                Some(b) => Some(b - spent),
                None => None,
            };
            let kind = match remaining {
                // Breadth over depth: spread what's left over the windows
                // still unprocessed, proportionally to their pair counts,
                // so every window is visited at reduced depth instead of
                // the first few exhausting the budget; unspent allowance
                // flows to later windows.
                Some(r) => {
                    let here = windows[wi].pairs.len() as u64;
                    let left: u64 = order[pos..]
                        .iter()
                        .map(|&w| windows[w].pairs.len() as u64)
                        .sum();
                    let share = (r * here).div_ceil(left.max(1));
                    self.pipeline.selector.with_tau_at_most(share.max(1))
                }
                None => self.pipeline.selector,
            };
            let selector = kind.build();
            let wp = &windows[wi];
            session.set_epoch(wp.window.index as u64);
            let input = SelectionInput {
                pairs: &wp.pairs,
                tracks,
                k: self.pipeline.k,
                voi: self.config.reweight_arms.then_some(&hints),
            };
            let result = selector.select(&input, &mut session)?;
            spent += result.distance_evals;
            accepted.extend(result.candidates);
            processed[wi] = true;
            (estimate, answer) = observe(
                &accepted,
                &processed,
                spent,
                &mut trajectory,
                &mut run_lo,
                &mut run_hi,
                &mut flips,
            );
        }

        let converged = run_lo == run_hi;
        obs.counter("query.voi.flips", flips);
        if terminated_early {
            obs.counter("query.voi.terminated_early", 1);
        }
        Ok(AnytimeAnswer {
            estimate,
            lo: run_lo,
            hi: run_hi,
            inferences_spent: spent,
            converged,
            terminated_early,
            answer,
            accepted,
            trajectory,
            deferred,
        })
    }
}

// ---------------------------------------------------------------------------
// Streaming driver
// ---------------------------------------------------------------------------

/// Anytime answers over a live feed: wraps a [`StreamingMerger`],
/// refreshes VoI hints before every advance, and reports a sound interval
/// at each watermark.
///
/// Mid-stream bounds are *per-watermark*: they bracket the answer over the
/// tracks seen so far, treating every unexamined same-class pair (plus
/// every pair of a degraded, stashed window) as plausible — sound but
/// loose while the feed is open. At [`AnytimeStream::finish`] the window
/// set closes: unexamined pairs outside the stash can never merge, so a
/// fault-free (or fully recovered) stream converges to the exact answer.
///
/// The `lo` side counts **committed** merges only — provisional merges
/// from degraded windows can still be dropped by re-verification, so they
/// widen `hi` (via the stash's plausible pairs) instead of raising `lo`.
pub struct AnytimeStream<'m, S: CandidateSelector> {
    merger: StreamingMerger<'m, S>,
    query: Query,
    reweight_arms: bool,
    trajectory: Vec<IntervalPoint>,
    flips: u64,
    finished: bool,
}

impl<'m, S: CandidateSelector> AnytimeStream<'m, S> {
    /// Wraps `merger`. Only [`AnytimeConfig::reweight_arms`] applies to a
    /// stream (the feed, not a budget, decides when windows close); hints
    /// additionally require the merger to run [`VoiMode::Reweight`].
    pub fn new(merger: StreamingMerger<'m, S>, query: Query, config: AnytimeConfig) -> Self {
        Self {
            merger,
            query,
            reweight_arms: config.reweight_arms,
            trajectory: Vec::new(),
            flips: 0,
            finished: false,
        }
    }

    /// Feeds the merger up to `frames_available` and returns the interval
    /// at the new watermark.
    pub fn advance(&mut self, tracks: &TrackSet, frames_available: u64) -> Result<IntervalPoint> {
        self.refresh_hints(tracks);
        self.merger.advance(tracks, frames_available)?;
        Ok(self.observe(tracks))
    }

    /// Closes the stream: flushes the final window, re-verifies any
    /// stashed windows, and returns the final anytime answer. Converges
    /// exactly (`lo == hi == estimate`) whenever the stash drained.
    pub fn finish(&mut self, tracks: &TrackSet, total_frames: u64) -> Result<AnytimeAnswer> {
        self.refresh_hints(tracks);
        self.merger.finish(tracks, total_frames)?;
        self.finished = true;
        let point = self.observe(tracks);
        let mapping = self.merger.mapping();
        let merged = tracks.relabeled(&mapping);
        let answer = evaluate(&merged, self.query);
        tm_obs::current().counter("query.voi.flips", self.flips);
        Ok(AnytimeAnswer {
            estimate: point.estimate,
            lo: point.lo,
            hi: point.hi,
            inferences_spent: point.spent,
            converged: point.lo == point.hi,
            terminated_early: false,
            answer,
            accepted: self.merger.accepted().to_vec(),
            trajectory: self.trajectory.clone(),
            deferred: 0,
        })
    }

    /// The interval trajectory so far (one point per advance/finish).
    pub fn trajectory(&self) -> &[IntervalPoint] {
        &self.trajectory
    }

    /// The wrapped merger.
    pub fn merger(&self) -> &StreamingMerger<'m, S> {
        &self.merger
    }

    /// Mutable access to the wrapped merger (probing, shedding).
    pub fn merger_mut(&mut self) -> &mut StreamingMerger<'m, S> {
        &mut self.merger
    }

    fn refresh_hints(&mut self, tracks: &TrackSet) {
        if !self.reweight_arms || self.merger.config().voi != VoiMode::Reweight {
            self.merger.set_voi_hints(None);
            return;
        }
        // Component structure over every admissible pair (examined or
        // not): a superset of what can still merge, which only weakens the
        // deferral conditions — sound.
        let universe = admissible_pairs(tracks);
        let hints = voi_hints(tracks, self.query, &universe);
        tm_obs::current().counter(
            "query.voi.deferred",
            universe.iter().filter(|p| hints.deferred(p)).count() as u64,
        );
        self.merger.set_voi_hints(Some(hints));
    }

    fn observe(&mut self, tracks: &TrackSet) -> IntervalPoint {
        let stats = track_stats(tracks, &self.query);
        let accepted: Vec<TrackPair> = self.merger.accepted().to_vec();
        let enforce = self.reweight_arms && self.merger.config().voi == VoiMode::Reweight;
        let hints = enforce.then(|| {
            let universe = admissible_pairs(tracks);
            voi_hints(tracks, self.query, &universe)
        });

        // Plausible: every stashed (degraded) window's pairs — their
        // provisional decisions can still flip either way — plus, while
        // the feed is open, every admissible pair not yet examined. After
        // finish() the window set is closed, so only the stash remains.
        // Stash pairs are NEVER pruned by deferral: re-verification runs
        // hint-free by design.
        let mut plausible: BTreeSet<TrackPair> = self.merger.stash_pairs().into_iter().collect();
        if !self.finished {
            for p in admissible_pairs(tracks) {
                if !self.merger.pair_examined(&p) && !hints.as_ref().is_some_and(|h| h.deferred(&p))
                {
                    plausible.insert(p);
                }
            }
        }
        let plausible: Vec<TrackPair> = plausible.into_iter().collect();

        // Estimate evaluates the merger's full mapping (committed +
        // provisional) — the stream's best current guess; the bounds use
        // committed merges only.
        let mapping = self.merger.mapping();
        let merged = tracks.relabeled(&mapping);
        let answer = evaluate(&merged, self.query);
        // The lo-side witness answer must match the committed partition.
        let lo_answer = evaluate(
            &tracks.relabeled(&tm_core::merge_mapping(&accepted)),
            self.query,
        );
        let (lo, hi) = bound_interval(
            tracks,
            &self.query,
            &stats,
            &accepted,
            &plausible,
            &lo_answer,
        );
        let estimate = answer.len() as u64;
        if let Some(prev) = self.trajectory.last() {
            if prev.estimate != estimate {
                self.flips += 1;
            }
        }
        let point = IntervalPoint {
            spent: self.merger.reid_stats().distances,
            estimate,
            lo,
            hi,
        };
        self.trajectory.push(point);
        point
    }

    // -- checkpoint envelope ------------------------------------------------

    /// Serializes the anytime state as a `TMAQ` envelope wrapping the
    /// merger's own `TMCK` checkpoint. Hints are not serialized (they are
    /// recomputed from the feed on the next advance).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.put_u64(TMAQ_MAGIC);
        w.put_u64(TMAQ_VERSION);
        put_query(&mut w, &self.query);
        w.put_bool(self.reweight_arms);
        w.put_bool(self.finished);
        w.put_u64(self.flips);
        w.put_u64(self.trajectory.len() as u64);
        for p in &self.trajectory {
            w.put_u64(p.spent);
            w.put_u64(p.estimate);
            w.put_f64(p.lo);
            w.put_f64(p.hi);
        }
        w.put_bytes(&self.merger.checkpoint());
        w.into_bytes()
    }

    /// Reconstructs an anytime stream from a [`AnytimeStream::checkpoint`].
    /// `model`, `session_cost`, `device` and `selector` must match the
    /// original run, exactly as for [`StreamingMerger::resume`].
    pub fn resume(
        model: &'m AppearanceModel,
        session_cost: tm_reid::CostModel,
        device: tm_reid::Device,
        selector: S,
        bytes: &[u8],
    ) -> Result<Self> {
        let mut r = Reader::new(bytes);
        if r.take_u64()? != TMAQ_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if r.take_u64()? != TMAQ_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let query = take_query(&mut r)?;
        let reweight_arms = r.take_bool()?;
        let finished = r.take_bool()?;
        let flips = r.take_u64()?;
        let n = r.take_len()?;
        let trajectory: Vec<IntervalPoint> = (0..n)
            .map(|_| {
                Ok(IntervalPoint {
                    spent: r.take_u64()?,
                    estimate: r.take_u64()?,
                    lo: r.take_f64()?,
                    hi: r.take_f64()?,
                })
            })
            .collect::<Result<_>>()?;
        let merger_bytes = r.take_bytes()?;
        r.finish()?;
        let merger = StreamingMerger::resume(model, session_cost, device, selector, merger_bytes)?;
        Ok(Self {
            merger,
            query,
            reweight_arms,
            trajectory,
            flips,
            finished,
        })
    }
}

/// Every same-class pair over the current track set — the admissible merge
/// universe of a stream whose future windows are unknown.
fn admissible_pairs(tracks: &TrackSet) -> Vec<TrackPair> {
    let mut ids: Vec<(TrackId, tm_types::ClassId)> =
        tracks.iter().map(|t| (t.id, t.class)).collect();
    ids.sort();
    let mut out = Vec::new();
    for (i, &(a, ca)) in ids.iter().enumerate() {
        for &(b, cb) in &ids[i + 1..] {
            if ca == cb {
                if let Some(p) = TrackPair::new(a, b) {
                    out.push(p);
                }
            }
        }
    }
    out
}

fn put_query(w: &mut Writer, q: &Query) {
    match *q {
        Query::Count { min_frames } => {
            w.put_u64(0);
            w.put_u64(min_frames);
        }
        Query::CoOccurrence {
            group_size,
            min_frames,
        } => {
            w.put_u64(1);
            w.put_u64(group_size as u64);
            w.put_u64(min_frames);
        }
        Query::RegionTransit { region, min_frames } => {
            w.put_u64(2);
            w.put_f64(region.x);
            w.put_f64(region.y);
            w.put_f64(region.w);
            w.put_f64(region.h);
            w.put_u64(min_frames);
        }
    }
}

fn take_query(r: &mut Reader<'_>) -> Result<Query> {
    Ok(match r.take_u64()? {
        0 => Query::Count {
            min_frames: r.take_u64()?,
        },
        1 => Query::CoOccurrence {
            group_size: r.take_u64()? as usize,
            min_frames: r.take_u64()?,
        },
        2 => Query::RegionTransit {
            region: BBox::new(r.take_f64()?, r.take_f64()?, r.take_f64()?, r.take_f64()?),
            min_frames: r.take_u64()?,
        },
        _ => return Err(corrupt("unknown query tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, FrameIdx, TrackBox};

    fn track(id: u64, frames: std::ops::Range<u64>) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(10.0, 10.0, 5.0, 5.0)))
                .collect(),
        )
    }

    fn pair(a: u64, b: u64) -> TrackPair {
        TrackPair::new(TrackId(a), TrackId(b)).unwrap()
    }

    #[test]
    fn count_deferral_requires_hopeless_component() {
        // Tracks 1+2 span [0, 40] jointly: hull 41 <= 100 — hopeless.
        let ts = TrackSet::from_tracks(vec![track(1, 0..20), track(2, 25..41)]);
        let hints = voi_hints(&ts, Query::Count { min_frames: 100 }, &[pair(1, 2)]);
        assert!(hints.deferred(&pair(1, 2)));
        // With a reachable threshold the pair mints a qualifying track.
        let hints = voi_hints(&ts, Query::Count { min_frames: 30 }, &[pair(1, 2)]);
        assert_eq!(hints.weight(&pair(1, 2)), 1.0);
    }

    #[test]
    fn interval_brackets_estimate_and_tightens_to_exact() {
        let ts = TrackSet::from_tracks(vec![
            track(1, 0..100),
            track(2, 120..220),
            track(3, 400..420),
        ]);
        let query = Query::Count { min_frames: 150 };
        let stats = track_stats(&ts, &query);
        let p = pair(1, 2);
        // Undecided: neither track qualifies alone, merging 1+2 would
        // (hull 220 > 150).
        let answer = evaluate(&ts, query);
        let (lo, hi) = bound_interval(&ts, &query, &stats, &[], &[p], &answer);
        assert_eq!((lo, hi), (0.0, 1.0));
        assert!(lo <= answer.len() as f64 && answer.len() as f64 <= hi);
        // Accepted: exactly one qualifying merged track, interval closed.
        let mapping = tm_core::merge_mapping(&[p]);
        let merged = ts.relabeled(&mapping);
        let answer = evaluate(&merged, query);
        let (lo, hi) = bound_interval(&ts, &query, &stats, &[p], &[], &answer);
        assert_eq!((lo, hi), (1.0, 1.0));
        assert_eq!(answer.len(), 1);
    }

    #[test]
    fn region_bounds_use_additive_dwell() {
        let region = BBox::new(0.0, 0.0, 100.0, 100.0);
        // Both tracks dwell fully inside the region.
        let ts = TrackSet::from_tracks(vec![track(1, 0..30), track(2, 40..70)]);
        let query = Query::RegionTransit {
            region,
            min_frames: 50,
        };
        let stats = track_stats(&ts, &query);
        let answer = evaluate(&ts, query);
        let (lo, hi) = bound_interval(&ts, &query, &stats, &[], &[pair(1, 2)], &answer);
        // 30 + 30 = 60 >= 50: one extra qualifying group is possible.
        assert_eq!((lo, hi), (0.0, 1.0));
        // Hopeless when the combined dwell cannot reach the floor.
        let hints = voi_hints(
            &ts,
            Query::RegionTransit {
                region,
                min_frames: 70,
            },
            &[pair(1, 2)],
        );
        assert!(hints.deferred(&pair(1, 2)));
    }

    #[test]
    fn co_occurrence_bounds_count_component_choices() {
        // Three long tracks overlapping on [0, 100): answer has one group.
        let ts = TrackSet::from_tracks(vec![track(1, 0..100), track(2, 0..100), track(3, 0..100)]);
        let query = Query::CoOccurrence {
            group_size: 3,
            min_frames: 50,
        };
        let stats = track_stats(&ts, &query);
        let answer = evaluate(&ts, query);
        assert_eq!(answer.len(), 1);
        // Nothing plausible: exact.
        let (lo, hi) = bound_interval(&ts, &query, &stats, &[], &[], &answer);
        assert_eq!((lo, hi), (1.0, 1.0));
        // A plausible merge of 1+2 could destroy the group: lo drops.
        let (lo, hi) = bound_interval(&ts, &query, &stats, &[], &[pair(1, 2)], &answer);
        assert_eq!(lo, 0.0);
        assert!(hi >= 1.0);
    }

    #[test]
    fn binom_matches_small_cases() {
        assert_eq!(binom_f64(5, 2), 10.0);
        assert_eq!(binom_f64(4, 4), 1.0);
        assert_eq!(binom_f64(3, 5), 0.0);
    }

    #[test]
    fn query_words_round_trip() {
        let queries = [
            Query::Count { min_frames: 7 },
            Query::CoOccurrence {
                group_size: 3,
                min_frames: 50,
            },
            Query::RegionTransit {
                region: BBox::new(1.5, 2.5, 3.5, 4.5),
                min_frames: 9,
            },
        ];
        for q in queries {
            let mut w = Writer::default();
            put_query(&mut w, &q);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(take_query(&mut r).unwrap(), q);
            r.finish().unwrap();
        }
    }
}
