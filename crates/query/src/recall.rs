//! Recall of tracker-derived query answers against ground-truth answers
//! (Fig. 13 of the paper).
//!
//! A tracker answer is compared with the ground-truth answer through a
//! track → actor attribution map: a qualifying GT object is *found* when at
//! least one qualifying predicted track is attributed to it.

use crate::queries::{co_occurrence_query, count_query};
use std::collections::{BTreeSet, HashMap};
use tm_types::{GtObjectId, TrackId, TrackSet};

/// Recall of the *Count* query: the fraction of GT objects visible more
/// than `min_frames` frames for which some attributed predicted track also
/// spans more than `min_frames`. 1.0 when no GT object qualifies.
pub fn count_recall(
    pred: &TrackSet,
    gt: &TrackSet,
    min_frames: u64,
    attribution: &HashMap<TrackId, GtObjectId>,
) -> f64 {
    let gt_hits: BTreeSet<GtObjectId> = count_query(gt, min_frames)
        .into_iter()
        .map(|t| GtObjectId(t.get()))
        .collect();
    if gt_hits.is_empty() {
        return 1.0;
    }
    let found: BTreeSet<GtObjectId> = count_query(pred, min_frames)
        .into_iter()
        .filter_map(|t| attribution.get(&t).copied())
        .collect();
    gt_hits.intersection(&found).count() as f64 / gt_hits.len() as f64
}

/// Recall of the *Co-occurring Objects* query: the fraction of qualifying
/// GT object groups that are recovered by some qualifying predicted track
/// group whose members are attributed to exactly those objects. 1.0 when
/// no GT group qualifies.
pub fn co_occurrence_recall(
    pred: &TrackSet,
    gt: &TrackSet,
    group_size: usize,
    min_frames: u64,
    attribution: &HashMap<TrackId, GtObjectId>,
) -> f64 {
    let gt_groups: BTreeSet<Vec<GtObjectId>> = co_occurrence_query(gt, group_size, min_frames)
        .into_iter()
        .map(|g| g.into_iter().map(|t| GtObjectId(t.get())).collect())
        .collect();
    if gt_groups.is_empty() {
        return 1.0;
    }
    let pred_groups: BTreeSet<Vec<GtObjectId>> = co_occurrence_query(pred, group_size, min_frames)
        .into_iter()
        .filter_map(|g| {
            let mut actors: Vec<GtObjectId> = g
                .iter()
                .filter_map(|t| attribution.get(t).copied())
                .collect();
            if actors.len() != group_size {
                return None; // some member unattributed
            }
            actors.sort();
            actors.dedup();
            // Members attributed to the same actor do not form a real
            // group of `group_size` distinct objects.
            (actors.len() == group_size).then_some(actors)
        })
        .collect();
    gt_groups.intersection(&pred_groups).count() as f64 / gt_groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, Track, TrackBox};

    fn track(id: u64, first: u64, last: u64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            vec![
                TrackBox::new(FrameIdx(first), BBox::new(0.0, 0.0, 10.0, 10.0)),
                TrackBox::new(FrameIdx(last), BBox::new(0.0, 0.0, 10.0, 10.0)),
            ],
        )
    }

    fn attr(pairs: &[(u64, u64)]) -> HashMap<TrackId, GtObjectId> {
        pairs
            .iter()
            .map(|&(t, g)| (TrackId(t), GtObjectId(g)))
            .collect()
    }

    #[test]
    fn fragmentation_lowers_count_recall_and_merging_restores_it() {
        // GT: actors 1 and 2, both visible 301 frames.
        let gt = TrackSet::from_tracks(vec![track(1, 0, 300), track(2, 0, 300)]);
        // Tracker: actor 1 fragmented into tracks 10/11; actor 2 intact as
        // track 20.
        let pred = TrackSet::from_tracks(vec![
            track(10, 0, 150),
            track(11, 151, 300),
            track(20, 0, 300),
        ]);
        let attribution = attr(&[(10, 1), (11, 1), (20, 2)]);
        let r = count_recall(&pred, &gt, 200, &attribution);
        assert!((r - 0.5).abs() < 1e-12, "got {r}");

        // Merge the fragments → recall 1.0.
        let mut map = HashMap::new();
        map.insert(TrackId(11), TrackId(10));
        let merged = pred.relabeled(&map);
        let r = count_recall(&merged, &gt, 200, &attribution);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn count_recall_is_one_when_nothing_qualifies() {
        let gt = TrackSet::from_tracks(vec![track(1, 0, 10)]);
        let pred = TrackSet::new();
        assert_eq!(count_recall(&pred, &gt, 200, &HashMap::new()), 1.0);
    }

    #[test]
    fn co_occurrence_recall_requires_distinct_attributed_members() {
        // GT: actors 1, 2, 3 jointly present 0..=100.
        let gt = TrackSet::from_tracks(vec![track(1, 0, 100), track(2, 0, 100), track(3, 0, 100)]);
        // Perfect prediction.
        let pred = TrackSet::from_tracks(vec![
            track(10, 0, 100),
            track(20, 0, 100),
            track(30, 0, 100),
        ]);
        let attribution = attr(&[(10, 1), (20, 2), (30, 3)]);
        assert_eq!(co_occurrence_recall(&pred, &gt, 3, 50, &attribution), 1.0);

        // Fragmenting actor 3 mid-window destroys the 60-frame joint clip:
        // neither fragment covers 60 joint frames on its own.
        let frag = TrackSet::from_tracks(vec![
            track(10, 0, 100),
            track(20, 0, 100),
            track(30, 0, 49),
            track(31, 50, 100),
        ]);
        let attribution = attr(&[(10, 1), (20, 2), (30, 3), (31, 3)]);
        assert_eq!(co_occurrence_recall(&frag, &gt, 3, 60, &attribution), 0.0);
        // Merging the fragments restores the group.
        let mut map = HashMap::new();
        map.insert(TrackId(31), TrackId(30));
        let merged = frag.relabeled(&map);
        assert_eq!(co_occurrence_recall(&merged, &gt, 3, 60, &attribution), 1.0);
    }

    #[test]
    fn co_occurrence_recall_rejects_groups_with_duplicate_actors() {
        let gt = TrackSet::from_tracks(vec![track(1, 0, 100), track(2, 0, 100), track(3, 0, 100)]);
        // Tracks 10 and 11 both belong to actor 1 and overlap (an ID split
        // with overlap); the triple (10, 11, 20) is not a real 3-group.
        let pred = TrackSet::from_tracks(vec![
            track(10, 0, 100),
            track(11, 0, 100),
            track(20, 0, 100),
        ]);
        let attribution = attr(&[(10, 1), (11, 1), (20, 2)]);
        assert_eq!(co_occurrence_recall(&pred, &gt, 3, 50, &attribution), 0.0);
    }

    #[test]
    fn co_occurrence_recall_one_when_no_gt_groups() {
        let gt = TrackSet::from_tracks(vec![track(1, 0, 10)]);
        assert_eq!(
            co_occurrence_recall(&TrackSet::new(), &gt, 3, 50, &HashMap::new()),
            1.0
        );
    }
}
