//! Property tests for the query layer (ISSUE 4, satellite 2).
//!
//! Two families of invariants pin the semantics TMerge relies on:
//!
//! * **TID-permutation invariance** — query answers and recall depend only
//!   on track *geometry* and the attribution, never on the numeric ids, so
//!   renaming every track (and remapping the attribution) must commute with
//!   query evaluation.
//! * **Monotone improvement under correct merges** — merging two fragments
//!   of the same GT actor can only extend lifetime intervals, so Count and
//!   Co-occurrence recall never decrease, and the fully merged track set
//!   recovers recall 1.0. This is the paper's §V-H claim in miniature.

use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use tm_query::{co_occurrence_query, co_occurrence_recall, count_query, count_recall};
use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

/// One GT actor: lifetime `[start, start + len]`, fragmented into `frags`
/// contiguous pieces on the predicted side.
type ActorSpec = (u64, u64, usize);

fn actor_strategy() -> impl Strategy<Value = Vec<ActorSpec>> {
    proptest::collection::vec((0u64..100, 20u64..300, 1usize..5), 1..6)
}

fn track(id: u64, first: u64, last: u64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        vec![
            TrackBox::new(FrameIdx(first), BBox::new(0.0, 0.0, 10.0, 10.0)),
            TrackBox::new(FrameIdx(last), BBox::new(0.0, 0.0, 10.0, 10.0)),
        ],
    )
}

/// Builds the GT set, the fragmented prediction, and the attribution.
/// Actor `i` is GT track `i + 1`; its fragment `j` is predicted track
/// `100 * (i + 1) + j`, so fragment ids never collide across actors.
fn world(actors: &[ActorSpec]) -> (TrackSet, TrackSet, HashMap<TrackId, GtObjectId>) {
    let mut gt = Vec::new();
    let mut pred = Vec::new();
    let mut attribution = HashMap::new();
    for (i, &(start, len, frags)) in actors.iter().enumerate() {
        let actor = i as u64 + 1;
        gt.push(track(actor, start, start + len));
        // Equal cuts; each fragment owns [cut_j, cut_{j+1} - 1] except the
        // last, which runs to the actor's final frame.
        let frags = frags as u64;
        for j in 0..frags {
            let lo = start + j * len / frags;
            let hi = if j + 1 == frags {
                start + len
            } else {
                start + (j + 1) * len / frags - 1
            };
            let tid = TrackId(100 * actor + j);
            pred.push(track(tid.get(), lo, hi));
            attribution.insert(tid, GtObjectId(actor));
        }
    }
    (
        TrackSet::from_tracks(gt),
        TrackSet::from_tracks(pred),
        attribution,
    )
}

/// An injective id renaming covering every predicted track.
fn permutation(pred: &TrackSet) -> HashMap<TrackId, TrackId> {
    pred.iter()
        .map(|t| (t.id, TrackId(t.id.get() * 7 + 3)))
        .collect()
}

/// The merges that repair one actor, one fragment at a time: every
/// non-first fragment folds into fragment 0 of the same actor.
fn correct_merges(actors: &[ActorSpec]) -> Vec<(TrackId, TrackId)> {
    let mut merges = Vec::new();
    for (i, &(_, _, frags)) in actors.iter().enumerate() {
        let actor = i as u64 + 1;
        for j in 1..frags as u64 {
            merges.push((TrackId(100 * actor + j), TrackId(100 * actor)));
        }
    }
    merges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn count_query_commutes_with_tid_permutation(
        actors in actor_strategy(), min_frames in 5u64..250,
    ) {
        let (_, pred, _) = world(&actors);
        let pi = permutation(&pred);
        let direct: BTreeSet<TrackId> = count_query(&pred.relabeled(&pi), min_frames)
            .into_iter()
            .collect();
        let mapped: BTreeSet<TrackId> = count_query(&pred, min_frames)
            .into_iter()
            .map(|t| pi[&t])
            .collect();
        prop_assert_eq!(direct, mapped);
    }

    #[test]
    fn co_occurrence_query_commutes_with_tid_permutation(
        actors in actor_strategy(),
        group_size in 2usize..4,
        min_frames in 5u64..150,
    ) {
        let (_, pred, _) = world(&actors);
        let pi = permutation(&pred);
        let as_sets = |groups: Vec<Vec<TrackId>>| -> BTreeSet<BTreeSet<TrackId>> {
            groups.into_iter().map(|g| g.into_iter().collect()).collect()
        };
        let direct = as_sets(co_occurrence_query(&pred.relabeled(&pi), group_size, min_frames));
        let mapped: BTreeSet<BTreeSet<TrackId>> =
            as_sets(co_occurrence_query(&pred, group_size, min_frames))
                .into_iter()
                .map(|g| g.into_iter().map(|t| pi[&t]).collect())
                .collect();
        prop_assert_eq!(direct, mapped);
    }

    #[test]
    fn recall_is_invariant_under_tid_permutation(
        actors in actor_strategy(),
        group_size in 2usize..4,
        min_frames in 5u64..250,
    ) {
        let (gt, pred, attribution) = world(&actors);
        let pi = permutation(&pred);
        let renamed = pred.relabeled(&pi);
        let renamed_attr: HashMap<TrackId, GtObjectId> = attribution
            .iter()
            .map(|(t, &g)| (pi[t], g))
            .collect();
        // Both sides are ratios of identical integer counts, so the
        // comparison is exact, not approximate.
        prop_assert_eq!(
            count_recall(&renamed, &gt, min_frames, &renamed_attr),
            count_recall(&pred, &gt, min_frames, &attribution),
        );
        prop_assert_eq!(
            co_occurrence_recall(&renamed, &gt, group_size, min_frames, &renamed_attr),
            co_occurrence_recall(&pred, &gt, group_size, min_frames, &attribution),
        );
    }

    #[test]
    fn count_recall_improves_monotonically_under_correct_merges(
        actors in actor_strategy(), min_frames in 5u64..250,
    ) {
        let (gt, pred, attribution) = world(&actors);
        let mut current = pred;
        let mut last = count_recall(&current, &gt, min_frames, &attribution);
        for (from, to) in correct_merges(&actors) {
            let mut step = HashMap::new();
            step.insert(from, to);
            current = current.relabeled(&step);
            let r = count_recall(&current, &gt, min_frames, &attribution);
            prop_assert!(
                r >= last,
                "correct merge {from} -> {to} dropped count recall {last} -> {r}"
            );
            last = r;
        }
        // Fully merged, every predicted track spans its actor's lifetime.
        prop_assert_eq!(last, 1.0);
    }

    #[test]
    fn co_occurrence_recall_improves_monotonically_under_correct_merges(
        actors in actor_strategy(),
        group_size in 2usize..4,
        min_frames in 5u64..150,
    ) {
        let (gt, pred, attribution) = world(&actors);
        let mut current = pred;
        let mut last =
            co_occurrence_recall(&current, &gt, group_size, min_frames, &attribution);
        for (from, to) in correct_merges(&actors) {
            let mut step = HashMap::new();
            step.insert(from, to);
            current = current.relabeled(&step);
            let r = co_occurrence_recall(&current, &gt, group_size, min_frames, &attribution);
            prop_assert!(
                r >= last,
                "correct merge {from} -> {to} dropped co-occurrence recall {last} -> {r}"
            );
            last = r;
        }
        prop_assert_eq!(last, 1.0);
    }
}
