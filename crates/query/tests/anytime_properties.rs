//! Property battery for anytime query-driven merging (DESIGN.md §17).
//!
//! Four invariant families pin the anytime contract:
//!
//! * **Interval soundness** — the exact full-budget answer cardinality
//!   lies inside *every* intermediate `[lo, hi]` of the full run.
//! * **Monotone tightening** — `lo` never decreases and `hi` never
//!   increases along a trajectory, at any budget; a full run converges
//!   exactly (`lo == hi == estimate`).
//! * **Estimate consistency** — at any exhausted budget, the reported
//!   estimate equals `evaluate()` on the mapping implied by the run's
//!   accepted pairs (the anytime layer never invents rows).
//! * **TID-permutation commutativity** — VoI weights depend on geometry
//!   only: renaming every track commutes with hint computation.

use proptest::prelude::*;
use std::collections::HashMap;
use tm_core::{merge_mapping, PipelineConfig, SelectorKind, TMergeConfig};
use tm_query::{evaluate, voi_hints, AnytimeConfig, AnytimeQuery, Query};
use tm_reid::{AppearanceConfig, AppearanceModel};
use tm_types::{ids::classes, BBox, FrameIdx, Track, TrackBox, TrackId, TrackPair, TrackSet};

/// One actor: lifetime `[start, start + len]`, split into `frags`
/// contiguous predicted fragments (mirrors `tests/properties.rs`).
type ActorSpec = (u64, u64, usize);

fn actor_strategy() -> impl Strategy<Value = Vec<ActorSpec>> {
    proptest::collection::vec((0u64..100, 20u64..300, 1usize..5), 1..6)
}

fn track(id: u64, first: u64, last: u64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        vec![
            TrackBox::new(FrameIdx(first), BBox::new(0.0, 0.0, 10.0, 10.0)),
            TrackBox::new(FrameIdx(last), BBox::new(0.0, 0.0, 10.0, 10.0)),
        ],
    )
}

/// The fragmented predicted track set; fragment `j` of actor `i` is track
/// `100 * (i + 1) + j`.
fn world(actors: &[ActorSpec]) -> TrackSet {
    let mut pred = Vec::new();
    for (i, &(start, len, frags)) in actors.iter().enumerate() {
        let actor = i as u64 + 1;
        let frags = frags as u64;
        for j in 0..frags {
            let lo = start + j * len / frags;
            let hi = if j + 1 == frags {
                start + len
            } else {
                start + (j + 1) * len / frags - 1
            };
            pred.push(track(100 * actor + j, lo, hi));
        }
    }
    TrackSet::from_tracks(pred)
}

fn n_frames(actors: &[ActorSpec]) -> u64 {
    actors.iter().map(|&(s, l, _)| s + l + 1).max().unwrap_or(1)
}

fn driver(budget: Option<u64>, stop: bool, reweight: bool) -> AnytimeQuery {
    AnytimeQuery::new(
        PipelineConfig {
            window_len: 100,
            k: 0.4,
            selector: SelectorKind::TMerge(TMergeConfig::default()),
            ..PipelineConfig::default()
        },
        AnytimeConfig {
            budget,
            stop_on_convergence: stop,
            reweight_arms: reweight,
        },
    )
}

fn queries() -> [Query; 3] {
    [
        Query::Count { min_frames: 120 },
        Query::CoOccurrence {
            group_size: 2,
            min_frames: 40,
        },
        Query::RegionTransit {
            region: BBox::new(0.0, 0.0, 50.0, 50.0),
            min_frames: 2,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) The exact full-budget answer lies inside every intermediate
    /// interval, and (b') the full run converges exactly.
    #[test]
    fn full_budget_answer_inside_every_intermediate_interval(
        actors in actor_strategy(), qi in 0usize..3,
    ) {
        let pred = world(&actors);
        let frames = n_frames(&actors);
        let model = AppearanceModel::new(AppearanceConfig::default());
        let query = queries()[qi];
        let ans = driver(None, false, true)
            .run(&pred, frames, &model, query)
            .unwrap();
        let exact = ans.estimate as f64;
        for p in &ans.trajectory {
            prop_assert!(
                p.lo <= exact && exact <= p.hi,
                "final answer {exact} escaped intermediate interval [{}, {}]",
                p.lo, p.hi
            );
        }
        prop_assert!(ans.converged, "full run must converge");
        prop_assert_eq!(ans.lo, exact);
        prop_assert_eq!(ans.hi, exact);
    }

    /// (b) Intervals tighten monotonically at every budget, and the
    /// estimate always sits inside the current interval.
    #[test]
    fn intervals_tighten_monotonically(
        actors in actor_strategy(), qi in 0usize..3, budget in 0u64..4000,
    ) {
        let pred = world(&actors);
        let frames = n_frames(&actors);
        let model = AppearanceModel::new(AppearanceConfig::default());
        let query = queries()[qi];
        let ans = driver(Some(budget), false, true)
            .run(&pred, frames, &model, query)
            .unwrap();
        let mut prev: Option<(f64, f64)> = None;
        for p in &ans.trajectory {
            prop_assert!(p.lo <= p.hi, "inverted interval [{}, {}]", p.lo, p.hi);
            prop_assert!(
                p.lo <= p.estimate as f64 && (p.estimate as f64) <= p.hi,
                "estimate {} escaped [{}, {}]", p.estimate, p.lo, p.hi
            );
            if let Some((lo, hi)) = prev {
                prop_assert!(p.lo >= lo, "lo regressed {lo} -> {}", p.lo);
                prop_assert!(p.hi <= hi, "hi widened {hi} -> {}", p.hi);
            }
            prev = Some((p.lo, p.hi));
        }
    }

    /// (c) At an exhausted budget the reported estimate and answer are
    /// exactly `evaluate()` on the accepted mapping — no extrapolation.
    #[test]
    fn estimate_equals_evaluate_on_final_mapping(
        actors in actor_strategy(), qi in 0usize..3, budget in 0u64..2000,
    ) {
        let pred = world(&actors);
        let frames = n_frames(&actors);
        let model = AppearanceModel::new(AppearanceConfig::default());
        let query = queries()[qi];
        let ans = driver(Some(budget), false, true)
            .run(&pred, frames, &model, query)
            .unwrap();
        let mapping = merge_mapping(&ans.accepted);
        let direct = evaluate(&pred.relabeled(&mapping), query);
        prop_assert_eq!(ans.estimate, direct.len() as u64);
        prop_assert_eq!(ans.answer, direct);
    }

    /// (d) VoI weights commute with TID permutation: weights read geometry
    /// and component structure, never the numeric ids.
    #[test]
    fn voi_hints_commute_with_tid_permutation(
        actors in actor_strategy(), qi in 0usize..3,
    ) {
        let pred = world(&actors);
        let query = queries()[qi];
        let pi: HashMap<TrackId, TrackId> =
            pred.iter().map(|t| (t.id, TrackId(t.id.get() * 7 + 3))).collect();
        let renamed = pred.relabeled(&pi);

        // Same-class all-pairs universe on both sides.
        let ids: Vec<TrackId> = pred.iter().map(|t| t.id).collect();
        let mut pairs = Vec::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                pairs.push(TrackPair::new(a, b).unwrap());
            }
        }
        let renamed_pairs: Vec<TrackPair> = pairs
            .iter()
            .map(|p| TrackPair::new(pi[&p.lo()], pi[&p.hi()]).unwrap())
            .collect();

        let direct = voi_hints(&pred, query, &pairs);
        let mapped = voi_hints(&renamed, query, &renamed_pairs);
        for (p, rp) in pairs.iter().zip(&renamed_pairs) {
            prop_assert_eq!(
                direct.weight(p),
                mapped.weight(rp),
                "weight of {} changed under permutation", p
            );
        }
    }
}
