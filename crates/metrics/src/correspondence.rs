//! Predicted-track ↔ ground-truth-actor correspondence and the derived
//! polyonymous-pair ground truth.
//!
//! The paper identifies the true polyonymous pairs by comparing tracker
//! output to GT annotations with the CLEAR-MOT tooling [30] (plus manual
//! labelling for un-annotated test sets). With simulator ground truth the
//! correspondence is exact: every track box carries the identity of the
//! actor whose detection produced it, and a track corresponds to the actor
//! owning the majority of its boxes.

use std::collections::{BTreeSet, HashMap};
use tm_types::{GtObjectId, Track, TrackId, TrackPair, TrackSet};

/// The track → actor mapping for a tracker's output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Correspondence {
    map: HashMap<TrackId, GtObjectId>,
}

impl Correspondence {
    /// Builds the correspondence by majority vote over box provenance.
    ///
    /// `min_purity` is the fraction of a track's boxes the majority actor
    /// must own for the track to be attributed at all (guards against
    /// heavily contaminated tracks); `0.5` is a sensible default.
    pub fn from_tracks(tracks: &TrackSet, min_purity: f64) -> Self {
        let mut map = HashMap::new();
        for t in tracks.iter() {
            if let Some((actor, votes)) = t.majority_actor() {
                if !t.is_empty() && votes as f64 / t.len() as f64 >= min_purity {
                    map.insert(t.id, actor);
                }
            }
        }
        Self { map }
    }

    /// The actor a track is attributed to (if any).
    pub fn actor_of(&self, track: TrackId) -> Option<GtObjectId> {
        self.map.get(&track).copied()
    }

    /// True when the two tracks of `pair` are attributed to the same actor:
    /// the pair is **polyonymous** (`t_i ∼ t_j` in the paper).
    pub fn is_polyonymous(&self, pair: &TrackPair) -> bool {
        match (self.actor_of(pair.lo()), self.actor_of(pair.hi())) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// The polyonymous subset of `pairs` — the paper's `P* ∩ P` for a
    /// window's pair set.
    pub fn polyonymous_in(&self, pairs: &[TrackPair]) -> BTreeSet<TrackPair> {
        pairs
            .iter()
            .filter(|p| self.is_polyonymous(p))
            .copied()
            .collect()
    }

    /// All polyonymous pairs among the given tracks (every unordered pair
    /// attributed to the same actor).
    pub fn all_polyonymous(&self, tracks: &[&Track]) -> BTreeSet<TrackPair> {
        let mut by_actor: HashMap<GtObjectId, Vec<TrackId>> = HashMap::new();
        for t in tracks {
            if let Some(actor) = self.actor_of(t.id) {
                by_actor.entry(actor).or_default().push(t.id);
            }
        }
        let mut out = BTreeSet::new();
        for ids in by_actor.values() {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if let Some(p) = TrackPair::new(a, b) {
                        out.insert(p);
                    }
                }
            }
        }
        out
    }

    /// The raw attribution map (e.g. for `tm-query`'s recall evaluation).
    pub fn as_map(&self) -> &HashMap<TrackId, GtObjectId> {
        &self.map
    }

    /// Number of attributed tracks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no track could be attributed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A merge mapping that relabels every group of polyonymous tracks to
    /// the group's smallest TID — the "perfect oracle" merge used as an
    /// upper bound in experiments.
    pub fn oracle_merge_mapping(&self, tracks: &TrackSet) -> HashMap<TrackId, TrackId> {
        let mut by_actor: HashMap<GtObjectId, Vec<TrackId>> = HashMap::new();
        for t in tracks.iter() {
            if let Some(actor) = self.actor_of(t.id) {
                by_actor.entry(actor).or_default().push(t.id);
            }
        }
        let mut mapping = HashMap::new();
        for ids in by_actor.values_mut() {
            ids.sort();
            let target = ids[0];
            for &id in &ids[1..] {
                mapping.insert(id, target);
            }
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, TrackBox};

    fn track(id: u64, actor: u64, frames: std::ops::Range<u64>) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| {
                    TrackBox::new(FrameIdx(f), BBox::new(0.0, 0.0, 10.0, 10.0))
                        .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn set(tracks: Vec<Track>) -> TrackSet {
        TrackSet::from_tracks(tracks)
    }

    #[test]
    fn attribution_by_majority() {
        let ts = set(vec![
            track(1, 7, 0..10),
            track(2, 7, 20..30),
            track(3, 8, 0..10),
        ]);
        let c = Correspondence::from_tracks(&ts, 0.5);
        assert_eq!(c.actor_of(TrackId(1)), Some(GtObjectId(7)));
        assert_eq!(c.actor_of(TrackId(2)), Some(GtObjectId(7)));
        assert_eq!(c.actor_of(TrackId(3)), Some(GtObjectId(8)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn polyonymous_detection() {
        let ts = set(vec![
            track(1, 7, 0..10),
            track(2, 7, 20..30),
            track(3, 8, 0..10),
        ]);
        let c = Correspondence::from_tracks(&ts, 0.5);
        let poly = TrackPair::new(TrackId(1), TrackId(2)).unwrap();
        let not = TrackPair::new(TrackId(1), TrackId(3)).unwrap();
        assert!(c.is_polyonymous(&poly));
        assert!(!c.is_polyonymous(&not));
    }

    #[test]
    fn all_polyonymous_enumerates_groups() {
        let ts = set(vec![
            track(1, 7, 0..10),
            track(2, 7, 20..30),
            track(3, 7, 40..50),
            track(4, 8, 0..10),
        ]);
        let c = Correspondence::from_tracks(&ts, 0.5);
        let tracks: Vec<&Track> = ts.iter().collect();
        let poly = c.all_polyonymous(&tracks);
        // 3 fragments of actor 7 → C(3,2) = 3 pairs.
        assert_eq!(poly.len(), 3);
    }

    #[test]
    fn impure_tracks_are_unattributed() {
        let mut t = track(1, 7, 0..4);
        // Contaminate: 4 boxes of actor 7, 6 of actor 9.
        for f in 4..10 {
            t.push(
                TrackBox::new(FrameIdx(f), BBox::new(0.0, 0.0, 10.0, 10.0))
                    .with_provenance(GtObjectId(9)),
            );
        }
        let ts = set(vec![t]);
        let c = Correspondence::from_tracks(&ts, 0.7);
        assert_eq!(c.actor_of(TrackId(1)), None);
        // With a laxer purity floor it is attributed to the majority actor.
        let c = Correspondence::from_tracks(&ts, 0.5);
        assert_eq!(c.actor_of(TrackId(1)), Some(GtObjectId(9)));
    }

    #[test]
    fn fp_only_tracks_are_unattributed() {
        let t = Track::with_boxes(
            TrackId(1),
            classes::PEDESTRIAN,
            vec![TrackBox::new(FrameIdx(0), BBox::new(0.0, 0.0, 5.0, 5.0))],
        );
        let c = Correspondence::from_tracks(&set(vec![t]), 0.5);
        assert!(c.is_empty());
    }

    #[test]
    fn oracle_merge_maps_to_smallest_id() {
        let ts = set(vec![
            track(5, 7, 0..10),
            track(2, 7, 20..30),
            track(9, 7, 40..50),
        ]);
        let c = Correspondence::from_tracks(&ts, 0.5);
        let m = c.oracle_merge_mapping(&ts);
        assert_eq!(m.get(&TrackId(5)), Some(&TrackId(2)));
        assert_eq!(m.get(&TrackId(9)), Some(&TrackId(2)));
        assert_eq!(m.get(&TrackId(2)), None);
        // Applying it produces a single track.
        assert_eq!(ts.relabeled(&m).len(), 1);
    }

    #[test]
    fn polyonymous_in_filters_scope() {
        let ts = set(vec![
            track(1, 7, 0..10),
            track(2, 7, 20..30),
            track(3, 7, 40..50),
        ]);
        let c = Correspondence::from_tracks(&ts, 0.5);
        let scope = vec![TrackPair::new(TrackId(1), TrackId(2)).unwrap()];
        let poly = c.polyonymous_in(&scope);
        assert_eq!(poly.len(), 1);
    }
}
