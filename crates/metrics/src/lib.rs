//! # tm-metrics
//!
//! Evaluation machinery for tracking output:
//!
//! * [`correspondence`] — maps each predicted track to the ground-truth
//!   actor it covers (the simulator-exact analogue of the paper's manual
//!   CLEAR-MOT labelling), and derives the **polyonymous-pair ground
//!   truth** `P*` from it,
//! * [`polyonymous`] — pair-set utilities: `REC` (Eq. 3 of the paper),
//!   polyonymous rate (§V-G),
//! * [`clear_mot`] — the CLEAR-MOT metrics (MOTA, FP, FN, ID switches,
//!   fragmentations) of Bernardin & Stiefelhagen [30],
//! * [`identity`] — the identity metrics IDF1 / IDP / IDR of Ristani et
//!   al. [33], computed via a global min-cost bipartite matching between GT
//!   and predicted trajectories.

pub mod clear_mot;
pub mod correspondence;
pub mod global;
pub mod hota;
pub mod identity;
pub mod polyonymous;
pub mod stats;

pub use clear_mot::{clear_mot, ClearMot, ClearMotConfig};
pub use correspondence::Correspondence;
pub use global::{global_identity_metrics, union_streams};
pub use hota::{hota, hota_at, Hota};
pub use identity::{identity_metrics, IdentityMetrics};
pub use polyonymous::{polyonymous_rate, recall};
pub use stats::{mean, pearson};
