//! HOTA — Higher Order Tracking Accuracy (Luiten et al., IJCV 2021).
//!
//! The modern MOT benchmark headline metric, included as an extension to
//! the paper's CLEAR-MOT / IDF1 evaluation. HOTA decomposes tracking
//! quality into **detection accuracy** (DetA — are the boxes found?) and
//! **association accuracy** (AssA — are they linked to the right
//! identity?), combined as `HOTA_α = √(DetA_α · AssA_α)` and averaged over
//! localization thresholds α.
//!
//! Because track fragmentation is purely an *association* error, TMerge
//! moves AssA (and hence HOTA) while leaving DetA untouched — a cleaner
//! signal than MOTA, which buries fragmentation among detection errors.
//!
//! Implementation follows the published formulation: per threshold α,
//! a per-frame Hungarian matching maximizes (primarily) the number of
//! matches; `A(c)` for a matched pair `c = (gt id, pred id)` is the Jaccard
//! overlap of their trajectories' matched frames, and
//! `AssA = mean_{c ∈ TP} A(c)`.

use std::collections::HashMap;
use tm_track::assign::{iou_threshold_matches, BoxMatchScratch};
use tm_types::{FrameIdx, GtObjectId, TrackId, TrackSet};

/// HOTA scores at the standard thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hota {
    /// The headline score: mean over α of `√(DetA·AssA)`.
    pub hota: f64,
    /// Detection accuracy, averaged over α.
    pub det_a: f64,
    /// Association accuracy, averaged over α.
    pub ass_a: f64,
}

/// Computes HOTA averaged over `α ∈ {0.05, 0.1, …, 0.95}` (the benchmark's
/// grid). Use [`hota_at`] for a single threshold.
pub fn hota(gt: &TrackSet, pred: &TrackSet) -> Hota {
    let mut h = 0.0;
    let mut d = 0.0;
    let mut a = 0.0;
    let mut n = 0;
    let mut alpha = 0.05;
    while alpha < 0.96 {
        let at = hota_at(gt, pred, alpha);
        h += at.hota;
        d += at.det_a;
        a += at.ass_a;
        n += 1;
        alpha += 0.05;
    }
    Hota {
        hota: h / n as f64,
        det_a: d / n as f64,
        ass_a: a / n as f64,
    }
}

/// HOTA at a single localization threshold α.
pub fn hota_at(gt: &TrackSet, pred: &TrackSet, alpha: f64) -> Hota {
    let gt_idx = gt.frame_index();
    let pred_idx = pred.frame_index();
    let total_gt = gt.total_boxes() as u64;
    let total_pred = pred.total_boxes() as u64;

    // Per-frame matching at IoU ≥ α (spatially gated: IoU is only scored
    // for plausibly overlapping pairs); count matches per (gt, pred)
    // identity pair. Frames are visited in ascending order.
    let mut tp = 0u64;
    let mut pair_matches: HashMap<(GtObjectId, TrackId), u64> = HashMap::new();
    let mut scratch = BoxMatchScratch::new();
    let mut gt_boxes = Vec::new();
    let mut pred_boxes = Vec::new();
    let last = gt_idx.max_frame().unwrap_or(FrameIdx(0));
    for f in 0..=last.get() {
        let frame = FrameIdx(f);
        let gts = gt_idx.boxes_at(frame);
        let preds = pred_idx.boxes_at(frame);
        if gts.is_empty() || preds.is_empty() {
            continue;
        }
        gt_boxes.clear();
        gt_boxes.extend(gts.iter().map(|&(_, b)| b));
        pred_boxes.clear();
        pred_boxes.extend(preds.iter().map(|&(_, b)| b));
        for &(gi, pi) in iou_threshold_matches(&gt_boxes, &pred_boxes, 1.0 - alpha, &mut scratch) {
            tp += 1;
            let gid = GtObjectId(gt_idx.track(gts[gi as usize].0).id.get());
            let tid = pred_idx.track(preds[pi as usize].0).id;
            *pair_matches.entry((gid, tid)).or_insert(0) += 1;
        }
    }
    scratch.assign.stats.flush(&tm_obs::current());
    let fn_count = total_gt - tp;
    let fp_count = total_pred - tp;
    let det_a = if tp + fn_count + fp_count == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_count + fp_count) as f64
    };

    // Association accuracy: for every TP (weighted by pair match count),
    // A(c) = TPA / (TPA + FNA + FPA) where TPA is the pair's match count,
    // FNA the GT identity's frames outside the pair (other matches and
    // misses alike), FPA likewise for the predicted identity.
    let gt_sizes: HashMap<GtObjectId, u64> = gt
        .iter()
        .map(|t| (GtObjectId(t.id.get()), t.len() as u64))
        .collect();
    let pred_sizes: HashMap<TrackId, u64> = pred.iter().map(|t| (t.id, t.len() as u64)).collect();

    // Accumulate in sorted pair order: HashMap iteration order would make
    // the floating-point sum (and hence AssA's last bits) vary run to run.
    let mut pairs: Vec<(&(GtObjectId, TrackId), &u64)> = pair_matches.iter().collect();
    pairs.sort_unstable();
    let mut ass_sum = 0.0;
    for ((g, p), &m) in pairs {
        let tpa = m;
        // FNA: frames of the GT identity not explained by this pair —
        // whether matched to other predictions or missed entirely, each GT
        // frame outside the pair counts exactly once.
        let fna = gt_sizes[g] - tpa;
        // FPA symmetrically for the predicted identity.
        let fpa = pred_sizes[p] - tpa;
        ass_sum += m as f64 * (tpa as f64 / (tpa + fna + fpa) as f64);
    }
    let ass_a = if tp == 0 { 0.0 } else { ass_sum / tp as f64 };
    Hota {
        hota: (det_a * ass_a).sqrt(),
        det_a,
        ass_a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, Track, TrackBox};

    fn track(id: u64, frames: std::ops::Range<u64>, x: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(x, 0.0, 10.0, 10.0)))
                .collect(),
        )
    }

    #[test]
    fn perfect_tracking_scores_one() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..50, 0.0), track(2, 0..50, 100.0)]);
        let pred = TrackSet::from_tracks(vec![track(10, 0..50, 0.0), track(20, 0..50, 100.0)]);
        let h = hota(&gt, &pred);
        assert!((h.hota - 1.0).abs() < 1e-9, "{h:?}");
        assert!((h.det_a - 1.0).abs() < 1e-9);
        assert!((h.ass_a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_hits_ass_a_not_det_a() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..100, 0.0)]);
        let frag = TrackSet::from_tracks(vec![track(10, 0..50, 0.0), track(11, 50..100, 0.0)]);
        let h = hota(&gt, &frag);
        assert!((h.det_a - 1.0).abs() < 1e-9, "every box is detected: {h:?}");
        // Each fragment's A(c) = 50 / (100 + 50 - 50) = 0.5.
        assert!((h.ass_a - 0.5).abs() < 1e-9, "{h:?}");
        assert!((h.hota - 0.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn merging_fragments_restores_hota() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..100, 0.0)]);
        let frag = TrackSet::from_tracks(vec![track(10, 0..50, 0.0), track(11, 50..100, 0.0)]);
        let mut map = HashMap::new();
        map.insert(TrackId(11), TrackId(10));
        let merged = frag.relabeled(&map);
        let before = hota(&gt, &frag);
        let after = hota(&gt, &merged);
        assert!(after.hota > before.hota);
        assert!((after.hota - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missed_boxes_hit_det_a() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..100, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(10, 0..50, 0.0)]);
        let h = hota(&gt, &pred);
        // TP 50, FN 50, FP 0 → DetA = 0.5. Per the published definition
        // FNA also counts the GT identity's entirely-missed frames, so
        // A(c) = 50/(50+50+0) = 0.5 as well.
        assert!((h.det_a - 0.5).abs() < 1e-9, "{h:?}");
        assert!((h.ass_a - 0.5).abs() < 1e-9, "{h:?}");
    }

    #[test]
    fn empty_inputs_are_zero() {
        let empty = TrackSet::new();
        let h = hota(&empty, &empty);
        assert_eq!(h.hota, 0.0);
    }

    #[test]
    fn localization_threshold_matters() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..10, 0.0)]);
        // Offset boxes: IoU = (10-4)/(10+4) ≈ 0.43 horizontally shifted 4px.
        let pred = TrackSet::from_tracks(vec![track(10, 0..10, 4.0)]);
        let strict = hota_at(&gt, &pred, 0.9);
        let lax = hota_at(&gt, &pred, 0.2);
        assert_eq!(strict.det_a, 0.0);
        assert!(lax.det_a > 0.9);
    }
}
