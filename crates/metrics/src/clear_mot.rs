//! The CLEAR-MOT metrics (Bernardin & Stiefelhagen, 2008 [30]).
//!
//! Frame-sequential evaluation with correspondence continuity: an existing
//! GT↔prediction correspondence is kept as long as it remains valid (IoU ≥
//! threshold), and only the unmatched remainder is re-assigned per frame
//! with the Hungarian algorithm. Counted events:
//!
//! * **FN** — GT boxes with no corresponding prediction,
//! * **FP** — predicted boxes with no corresponding GT,
//! * **IDSW** — a GT object's corresponding track id changes,
//! * **Frag** — a GT object's tracked status is interrupted
//!   (tracked → untracked → tracked),
//! * **MOTA** `= 1 − (FN + FP + IDSW) / total GT boxes`,
//! * **MOTP** — mean IoU over matched pairs (higher is better in this
//!   IoU-based formulation).

use std::collections::HashMap;
use tm_track::assign::{iou_threshold_matches, BoxMatchScratch};
use tm_types::{BBox, FrameIdx, GtObjectId, TrackId, TrackSet};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClearMotConfig {
    /// Minimum IoU for a GT box and a predicted box to correspond.
    pub iou_threshold: f64,
}

impl Default for ClearMotConfig {
    fn default() -> Self {
        Self { iou_threshold: 0.5 }
    }
}

/// The CLEAR-MOT counts and scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClearMot {
    /// Multiple-object tracking accuracy.
    pub mota: f64,
    /// Mean IoU of matched pairs.
    pub motp: f64,
    /// False negatives (missed GT boxes).
    pub false_negatives: u64,
    /// False positives (spurious predicted boxes).
    pub false_positives: u64,
    /// Identity switches.
    pub id_switches: u64,
    /// Track fragmentations.
    pub fragmentations: u64,
    /// Total GT boxes.
    pub gt_boxes: u64,
    /// Total matched (true positive) boxes.
    pub matches: u64,
}

/// Runs the CLEAR-MOT evaluation. `gt` uses [`GtObjectId`]-valued track ids
/// (as produced by `GroundTruth::gt_tracks`).
pub fn clear_mot(gt: &TrackSet, pred: &TrackSet, config: ClearMotConfig) -> ClearMot {
    // Frame-interval indices give each frame's boxes (in track insertion
    // order, like the per-frame lists this loop historically built) and an
    // id → position lookup for the sticky pass.
    let gt_idx = gt.frame_index();
    let pred_idx = pred.frame_index();
    let last_frame = gt_idx
        .max_frame()
        .unwrap_or(FrameIdx(0))
        .max(pred_idx.max_frame().unwrap_or(FrameIdx(0)));

    let mut correspondences: HashMap<GtObjectId, TrackId> = HashMap::new();
    // Last track ever matched to a GT object (for ID switches across gaps).
    let mut last_match: HashMap<GtObjectId, TrackId> = HashMap::new();
    // Whether the object was tracked in the previous frame it appeared, and
    // whether it has ever been tracked (for fragmentation counting).
    let mut was_tracked: HashMap<GtObjectId, bool> = HashMap::new();

    let mut fn_count = 0u64;
    let mut fp_count = 0u64;
    let mut idsw = 0u64;
    let mut frag = 0u64;
    let mut matches = 0u64;
    let mut iou_sum = 0.0f64;
    let mut gt_total = 0u64;

    let mut scratch = BoxMatchScratch::new();
    let mut free_gt_boxes: Vec<BBox> = Vec::new();
    let mut free_pred_boxes: Vec<BBox> = Vec::new();
    for f in 0..=last_frame.get() {
        let frame = FrameIdx(f);
        let gts = gt_idx.boxes_at(frame);
        let preds = pred_idx.boxes_at(frame);
        let gid_of = |gi: usize| GtObjectId(gt_idx.track(gts[gi].0).id.get());
        let tid_of = |pi: usize| pred_idx.track(preds[pi].0).id;
        gt_total += gts.len() as u64;

        let mut gt_matched = vec![false; gts.len()];
        let mut pred_matched = vec![false; preds.len()];
        let mut frame_pairs: Vec<(usize, usize)> = Vec::new();

        // 1. Keep still-valid correspondences from the previous frame. The
        // per-frame id lookup replaces a linear scan of the frame's
        // predictions per GT object.
        for (gi, &(_, gbox)) in gts.iter().enumerate() {
            if let Some(tid) = correspondences.get(&gid_of(gi)) {
                if let Some(pi) = pred_idx.position_at(frame, *tid) {
                    let pi = pi as usize;
                    if gbox.iou(&preds[pi].1) >= config.iou_threshold && !pred_matched[pi] {
                        gt_matched[gi] = true;
                        pred_matched[pi] = true;
                        frame_pairs.push((gi, pi));
                    }
                }
            }
        }

        // 2. Hungarian on the remainder, spatially gated: only plausibly
        // overlapping (GT, prediction) pairs are scored.
        let free_gt: Vec<usize> = (0..gts.len()).filter(|&i| !gt_matched[i]).collect();
        let free_pred: Vec<usize> = (0..preds.len()).filter(|&i| !pred_matched[i]).collect();
        if !free_gt.is_empty() && !free_pred.is_empty() {
            free_gt_boxes.clear();
            free_gt_boxes.extend(free_gt.iter().map(|&gi| gts[gi].1));
            free_pred_boxes.clear();
            free_pred_boxes.extend(free_pred.iter().map(|&pi| preds[pi].1));
            for &(r, c) in iou_threshold_matches(
                &free_gt_boxes,
                &free_pred_boxes,
                1.0 - config.iou_threshold,
                &mut scratch,
            ) {
                let gi = free_gt[r as usize];
                let pi = free_pred[c as usize];
                gt_matched[gi] = true;
                pred_matched[pi] = true;
                frame_pairs.push((gi, pi));
            }
        }

        // 3. Update correspondences and count events.
        let mut new_corr: HashMap<GtObjectId, TrackId> = HashMap::new();
        for (gi, pi) in frame_pairs {
            let (gid, gbox) = (gid_of(gi), gts[gi].1);
            let (tid, pbox) = (tid_of(pi), preds[pi].1);
            matches += 1;
            iou_sum += gbox.iou(&pbox);
            if let Some(&prev) = last_match.get(&gid) {
                if prev != tid {
                    idsw += 1;
                }
            }
            // Fragmentation: the object was known, untracked last time it
            // appeared, and is tracked again now.
            if let Some(false) = was_tracked.get(&gid) {
                frag += 1;
            }
            last_match.insert(gid, tid);
            new_corr.insert(gid, tid);
        }
        for (gi, &matched) in gt_matched.iter().enumerate() {
            if !matched {
                fn_count += 1;
            }
            was_tracked.insert(gid_of(gi), matched);
        }
        fp_count += pred_matched.iter().filter(|m| !**m).count() as u64;
        correspondences = new_corr;
    }
    scratch.assign.stats.flush(&tm_obs::current());

    let mota = if gt_total == 0 {
        0.0
    } else {
        1.0 - (fn_count + fp_count + idsw) as f64 / gt_total as f64
    };
    let motp = if matches == 0 {
        0.0
    } else {
        iou_sum / matches as f64
    };
    ClearMot {
        mota,
        motp,
        false_negatives: fn_count,
        false_positives: fp_count,
        id_switches: idsw,
        fragmentations: frag,
        gt_boxes: gt_total,
        matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, Track, TrackBox};

    fn track(id: u64, frames: std::ops::Range<u64>, x: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(x, 0.0, 10.0, 10.0)))
                .collect(),
        )
    }

    #[test]
    fn perfect_tracking_has_mota_one() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..30, 0.0), track(2, 0..30, 100.0)]);
        let pred = TrackSet::from_tracks(vec![track(7, 0..30, 0.0), track(8, 0..30, 100.0)]);
        let m = clear_mot(&gt, &pred, ClearMotConfig::default());
        assert_eq!(m.mota, 1.0);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.id_switches, 0);
        assert_eq!(m.fragmentations, 0);
        assert!(m.motp > 0.99);
    }

    #[test]
    fn missed_frames_are_false_negatives() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..30, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(7, 0..20, 0.0)]);
        let m = clear_mot(&gt, &pred, ClearMotConfig::default());
        assert_eq!(m.false_negatives, 10);
        assert_eq!(m.false_positives, 0);
        assert!((m.mota - (1.0 - 10.0 / 30.0)).abs() < 1e-12);
    }

    #[test]
    fn spurious_boxes_are_false_positives() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..10, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(7, 0..10, 0.0), track(8, 0..10, 500.0)]);
        let m = clear_mot(&gt, &pred, ClearMotConfig::default());
        assert_eq!(m.false_positives, 10);
    }

    #[test]
    fn fragment_causes_id_switch_and_frag() {
        // GT continuous; prediction splits with a 5-frame hole.
        let gt = TrackSet::from_tracks(vec![track(1, 0..40, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(7, 0..20, 0.0), track(8, 25..40, 0.0)]);
        let m = clear_mot(&gt, &pred, ClearMotConfig::default());
        assert_eq!(m.id_switches, 1);
        assert_eq!(m.fragmentations, 1);
        assert_eq!(m.false_negatives, 5);
    }

    #[test]
    fn id_switch_without_gap_counts_no_frag() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..40, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(7, 0..20, 0.0), track(8, 20..40, 0.0)]);
        let m = clear_mot(&gt, &pred, ClearMotConfig::default());
        assert_eq!(m.id_switches, 1);
        assert_eq!(m.fragmentations, 0);
        assert_eq!(m.false_negatives, 0);
    }

    #[test]
    fn correspondence_is_sticky() {
        // Two predictions overlap the GT; the one matched first must be
        // kept even if the other is momentarily closer.
        let gt = TrackSet::from_tracks(vec![track(1, 0..10, 0.0)]);
        let close = track(7, 0..10, 0.0);
        let slightly_off = track(8, 0..10, 2.0);
        let pred = TrackSet::from_tracks(vec![close, slightly_off]);
        let m = clear_mot(&gt, &pred, ClearMotConfig::default());
        assert_eq!(m.id_switches, 0);
        // One prediction always unmatched → 10 FPs.
        assert_eq!(m.false_positives, 10);
    }

    #[test]
    fn empty_inputs() {
        let empty = TrackSet::new();
        let m = clear_mot(&empty, &empty, ClearMotConfig::default());
        assert_eq!(m.mota, 0.0);
        assert_eq!(m.gt_boxes, 0);
    }

    #[test]
    fn merging_fragments_improves_mota() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..40, 0.0)]);
        let frag = TrackSet::from_tracks(vec![track(7, 0..20, 0.0), track(8, 20..40, 0.0)]);
        let mut map = HashMap::new();
        map.insert(TrackId(8), TrackId(7));
        let merged = frag.relabeled(&map);
        let before = clear_mot(&gt, &frag, ClearMotConfig::default());
        let after = clear_mot(&gt, &merged, ClearMotConfig::default());
        assert!(after.mota > before.mota);
        assert_eq!(after.id_switches, 0);
    }
}
