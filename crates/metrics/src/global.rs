//! Global (cross-camera) identity metrics.
//!
//! Per-camera IDF1 cannot see a cross-camera identity switch: each camera
//! scores its own viewport, and an actor re-entering under a new id in a
//! different camera costs nothing. The global variant unions all camera
//! streams into one namespaced track set (each camera's ids lifted with
//! [`TrackId::in_camera`], matching `tm_core::global`'s namespace) and
//! scores it against a fleet-wide ground truth whose trajectories span
//! cameras. Under the union, every hop an identity resolver fails to link
//! shows up exactly like an intra-camera fragmentation — unmatched boxes —
//! so the global-vs-per-camera IDF1 gap *is* the value of cross-camera
//! resolution.
//!
//! The simulator keeps camera viewports in disjoint coordinate bands
//! (`tm_synth::CAMERA_BAND`), so unioned boxes from different cameras can
//! never spuriously overlap at any IoU threshold.

use crate::identity::{identity_metrics, IdentityMetrics};
use std::collections::HashMap;
use tm_types::{Track, TrackId, TrackSet};

/// Unions per-camera track sets into one fleet-wide set with each
/// camera's track ids lifted into its namespace
/// ([`TrackId::in_camera`]`(i)` for feed `i`). Panics never: id
/// collisions are impossible by construction of the namespace.
pub fn union_streams(feeds: &[TrackSet]) -> TrackSet {
    let mut tracks: Vec<Track> = Vec::new();
    for (camera, feed) in feeds.iter().enumerate() {
        tracks.extend(feed.in_camera(camera as u64).into_tracks());
    }
    TrackSet::from_tracks(tracks)
}

/// Computes fleet-wide IDF1/IDP/IDR: unions `feeds` into the global
/// namespace, applies `mapping` (global ids → global ids, e.g.
/// `tm_core::global::compose_global_mapping` output; pass an empty map
/// for the unresolved per-camera baseline), and scores against `gt`.
pub fn global_identity_metrics(
    gt: &TrackSet,
    feeds: &[TrackSet],
    mapping: &HashMap<TrackId, TrackId>,
    iou_threshold: f64,
) -> IdentityMetrics {
    let unioned = union_streams(feeds);
    let relabeled = if mapping.is_empty() {
        unioned
    } else {
        unioned.relabeled(mapping)
    };
    identity_metrics(gt, &relabeled, iou_threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, TrackBox, CAMERA_STRIDE};

    fn track(id: u64, frames: std::ops::Range<u64>, x: f64, y: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(x, y, 10.0, 10.0)))
                .collect(),
        )
    }

    #[test]
    fn union_namespaces_per_camera_ids() {
        let cam0 = TrackSet::from_tracks(vec![track(1, 0..10, 0.0, 0.0)]);
        let cam1 = TrackSet::from_tracks(vec![track(1, 0..10, 0.0, 10_000.0)]);
        let u = union_streams(&[cam0, cam1]);
        assert_eq!(u.len(), 2);
        assert!(u.get(TrackId(1)).is_some());
        assert!(u.get(TrackId(CAMERA_STRIDE + 1)).is_some());
    }

    #[test]
    fn unresolved_transit_caps_idf1_and_mapping_restores_it() {
        // One actor: 10 frames in camera 0, then 10 frames in camera 1.
        // GT is a single spanning trajectory.
        let gt = TrackSet::from_tracks(vec![Track::with_boxes(
            TrackId(1),
            classes::PEDESTRIAN,
            (0..10)
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(0.0, 0.0, 10.0, 10.0)))
                .chain(
                    (20..30)
                        .map(|f| TrackBox::new(FrameIdx(f), BBox::new(0.0, 10_000.0, 10.0, 10.0))),
                )
                .collect(),
        )]);
        let cam0 = TrackSet::from_tracks(vec![track(7, 0..10, 0.0, 0.0)]);
        let cam1 = TrackSet::from_tracks(vec![track(9, 20..30, 0.0, 10_000.0)]);
        let feeds = [cam0, cam1];

        let before = global_identity_metrics(&gt, &feeds, &HashMap::new(), 0.5);
        assert!(
            (before.idf1 - 0.5).abs() < 1e-12,
            "split identity: {before:?}"
        );

        let mut mapping = HashMap::new();
        mapping.insert(TrackId(CAMERA_STRIDE + 9), TrackId(7));
        let after = global_identity_metrics(&gt, &feeds, &mapping, 0.5);
        assert_eq!(after.idf1, 1.0, "linked identity: {after:?}");
    }

    #[test]
    fn disjoint_bands_prevent_cross_camera_box_matches() {
        // Same (x, frame) in two cameras: without the band offset these
        // would IoU-match; with it they never do.
        let gt = TrackSet::from_tracks(vec![track(1, 0..10, 0.0, 0.0)]);
        let cam1_only = TrackSet::from_tracks(vec![track(5, 0..10, 0.0, 10_000.0)]);
        let m = global_identity_metrics(&gt, &[TrackSet::new(), cam1_only], &HashMap::new(), 0.5);
        assert_eq!(m.idtp, 0);
    }
}
