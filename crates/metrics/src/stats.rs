//! Small statistics helpers used by the analyses.

/// Pearson correlation coefficient of two equally long samples (§IV-C of
/// the paper correlates track-pair scores with spatial/temporal
/// distances). Returns `None` when fewer than two points or either sample
/// has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Arithmetic mean; `None` for an empty sample.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -0.5 * x).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[3.0]).is_none());
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}
