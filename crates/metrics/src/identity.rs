//! Identity metrics IDF1 / IDP / IDR (Ristani et al., ECCV 2016 [33]).
//!
//! The identity metrics score how well predicted identities align with true
//! identities *globally*: a bipartite matching between GT trajectories and
//! predicted trajectories is chosen to maximize the number of per-frame box
//! matches; under that matching,
//!
//! * `IDTP` — boxes of a GT trajectory covered by its matched prediction,
//! * `IDFP` — predicted boxes not covered (`total_pred − IDTP`),
//! * `IDFN` — GT boxes not covered (`total_gt − IDTP`),
//! * `IDP = IDTP/(IDTP+IDFP)`, `IDR = IDTP/(IDTP+IDFN)`,
//!   `IDF1 = 2·IDTP/(2·IDTP+IDFP+IDFN)`.
//!
//! Because each GT trajectory can match at most one predicted trajectory, a
//! fragmented (polyonymous) track necessarily leaves boxes unmatched — this
//! is why the paper's Fig. 12 shows IDF1/IDP/IDR rising once TMerge merges
//! the fragments.

use std::collections::HashMap;
use tm_track::assign::{assign_sparse_with_fill, AssignmentScratch, Edge};
use tm_types::{Track, TrackSet};

/// The identity-metric scores and their building blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentityMetrics {
    /// Identity F1 score in `[0, 1]`.
    pub idf1: f64,
    /// Identity precision.
    pub idp: f64,
    /// Identity recall.
    pub idr: f64,
    /// True-positive box count under the optimal identity matching.
    pub idtp: u64,
    /// Predicted boxes not explained by the matching.
    pub idfp: u64,
    /// GT boxes not explained by the matching.
    pub idfn: u64,
}

/// Computes IDF1/IDP/IDR between ground-truth and predicted track sets.
///
/// Two boxes in the same frame *match* when their IoU is at least
/// `iou_threshold` (0.5 in the MOT benchmarks and in this repository's
/// experiments).
pub fn identity_metrics(gt: &TrackSet, pred: &TrackSet, iou_threshold: f64) -> IdentityMetrics {
    let gt_tracks: Vec<&Track> = gt.iter().collect();
    let pred_tracks: Vec<&Track> = pred.iter().collect();
    let total_gt: u64 = gt_tracks.iter().map(|t| t.len() as u64).sum();
    let total_pred: u64 = pred_tracks.iter().map(|t| t.len() as u64).sum();

    if gt_tracks.is_empty() || pred_tracks.is_empty() {
        return finalize(0, total_pred, total_gt);
    }

    // Sparse overlap counts: how many frames of GT track g are matched by
    // pred track p at the IoU threshold. Only (g, p) pairs that actually
    // co-occur in a frame get an entry — the dense gt × pred matrix the
    // old implementation materialized is overwhelmingly zeros.
    let pred_idx = pred.frame_index();
    let mut overlap: HashMap<(u32, u32), u64> = HashMap::new();
    for (gi, g) in gt_tracks.iter().enumerate() {
        for b in &g.boxes {
            for &(pi, pb) in pred_idx.boxes_at(b.frame) {
                if b.bbox.iou(&pb) >= iou_threshold {
                    *overlap.entry((gi as u32, pi)).or_insert(0) += 1;
                }
            }
        }
    }

    // Maximum-overlap bipartite matching: minimize negated overlaps. Only
    // positive-overlap pairs carry weight, so the zero-filled component
    // solve reaches the same total as a dense solve over the full matrix.
    let mut edges: Vec<Edge> = overlap
        .iter()
        .map(|(&(gi, pi), &o)| Edge {
            row: gi,
            col: pi,
            cost: -(o as f64),
        })
        .collect();
    edges.sort_unstable_by_key(|a| (a.row, a.col));
    let mut scratch = AssignmentScratch::new();
    let idtp: u64 = assign_sparse_with_fill(
        gt_tracks.len(),
        pred_tracks.len(),
        &edges,
        0.0,
        &mut scratch,
    )
    .iter()
    .map(|&(gi, pi)| overlap[&(gi, pi)])
    .sum();

    finalize(idtp, total_pred, total_gt)
}

fn finalize(idtp: u64, total_pred: u64, total_gt: u64) -> IdentityMetrics {
    let idfp = total_pred - idtp.min(total_pred);
    let idfn = total_gt - idtp.min(total_gt);
    let idp = ratio(idtp, idtp + idfp);
    let idr = ratio(idtp, idtp + idfn);
    let idf1 = ratio(2 * idtp, 2 * idtp + idfp + idfn);
    IdentityMetrics {
        idf1,
        idp,
        idr,
        idtp,
        idfp,
        idfn,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::{ids::classes, BBox, FrameIdx, TrackBox, TrackId};

    fn track(id: u64, frames: std::ops::Range<u64>, x: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            frames
                .map(|f| TrackBox::new(FrameIdx(f), BBox::new(x, 0.0, 10.0, 10.0)))
                .collect(),
        )
    }

    #[test]
    fn perfect_tracking_scores_one() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..50, 0.0), track(2, 0..50, 100.0)]);
        let pred = TrackSet::from_tracks(vec![track(10, 0..50, 0.0), track(20, 0..50, 100.0)]);
        let m = identity_metrics(&gt, &pred, 0.5);
        assert_eq!(m.idtp, 100);
        assert_eq!((m.idfp, m.idfn), (0, 0));
        assert_eq!(m.idf1, 1.0);
        assert_eq!(m.idp, 1.0);
        assert_eq!(m.idr, 1.0);
    }

    #[test]
    fn fragmentation_halves_credit() {
        // GT: one 100-frame track. Pred: two 50-frame fragments.
        let gt = TrackSet::from_tracks(vec![track(1, 0..100, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(10, 0..50, 0.0), track(11, 50..100, 0.0)]);
        let m = identity_metrics(&gt, &pred, 0.5);
        // Only one fragment can match the GT identity.
        assert_eq!(m.idtp, 50);
        assert_eq!(m.idfp, 50);
        assert_eq!(m.idfn, 50);
        assert!((m.idf1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merging_fragments_restores_idf1() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..100, 0.0)]);
        let fragments = TrackSet::from_tracks(vec![track(10, 0..50, 0.0), track(11, 50..100, 0.0)]);
        let mut mapping = HashMap::new();
        mapping.insert(TrackId(11), TrackId(10));
        let merged = fragments.relabeled(&mapping);
        let before = identity_metrics(&gt, &fragments, 0.5);
        let after = identity_metrics(&gt, &merged, 0.5);
        assert!(after.idf1 > before.idf1);
        assert_eq!(after.idf1, 1.0);
    }

    #[test]
    fn spatially_wrong_prediction_gets_no_credit() {
        let gt = TrackSet::from_tracks(vec![track(1, 0..10, 0.0)]);
        let pred = TrackSet::from_tracks(vec![track(10, 0..10, 500.0)]);
        let m = identity_metrics(&gt, &pred, 0.5);
        assert_eq!(m.idtp, 0);
        assert_eq!(m.idf1, 0.0);
    }

    #[test]
    fn empty_sets_are_safe() {
        let empty = TrackSet::new();
        let some = TrackSet::from_tracks(vec![track(1, 0..10, 0.0)]);
        let m = identity_metrics(&empty, &some, 0.5);
        assert_eq!(m.idtp, 0);
        assert_eq!(m.idfp, 10);
        let m = identity_metrics(&some, &empty, 0.5);
        assert_eq!(m.idfn, 10);
        let m = identity_metrics(&empty, &empty, 0.5);
        assert_eq!(m.idf1, 0.0);
    }

    #[test]
    fn id_swap_costs_both_tracks() {
        // Two GT tracks; prediction swaps identities halfway.
        let gt = TrackSet::from_tracks(vec![track(1, 0..40, 0.0), track(2, 0..40, 100.0)]);
        let pred_a = Track::with_boxes(
            TrackId(10),
            classes::PEDESTRIAN,
            (0..40)
                .map(|f| {
                    let x = if f < 20 { 0.0 } else { 100.0 };
                    TrackBox::new(FrameIdx(f), BBox::new(x, 0.0, 10.0, 10.0))
                })
                .collect(),
        );
        let pred_b = Track::with_boxes(
            TrackId(11),
            classes::PEDESTRIAN,
            (0..40)
                .map(|f| {
                    let x = if f < 20 { 100.0 } else { 0.0 };
                    TrackBox::new(FrameIdx(f), BBox::new(x, 0.0, 10.0, 10.0))
                })
                .collect(),
        );
        let pred = TrackSet::from_tracks(vec![pred_a, pred_b]);
        let m = identity_metrics(&gt, &pred, 0.5);
        // Each GT track can be credited for at most one half.
        assert_eq!(m.idtp, 40);
        assert!((m.idf1 - 0.5).abs() < 1e-12);
    }
}
