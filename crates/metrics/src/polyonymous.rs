//! Pair-set metrics: recall (the paper's `REC`, Eq. 3) and the polyonymous
//! rate (§V-G).

use std::collections::BTreeSet;
use tm_types::TrackPair;

/// `REC(P̂) = |P̂ ∩ P*| / |P*|` — the fraction of true polyonymous pairs
/// captured by a candidate set (Eq. 3). Defined as 1 when `P*` is empty
/// (there was nothing to find).
///
/// ```
/// use tm_metrics::recall;
/// use tm_types::{TrackId, TrackPair};
/// let pair = |a, b| TrackPair::new(TrackId(a), TrackId(b)).unwrap();
/// let truth = [pair(1, 2), pair(3, 4)].into_iter().collect();
/// let found = [pair(1, 2), pair(5, 6)];
/// assert_eq!(recall(found.iter(), &truth), 0.5);
/// ```
pub fn recall<'a, I>(candidates: I, truth: &BTreeSet<TrackPair>) -> f64
where
    I: IntoIterator<Item = &'a TrackPair>,
{
    if truth.is_empty() {
        return 1.0;
    }
    let hit = candidates.into_iter().filter(|p| truth.contains(p)).count();
    hit as f64 / truth.len() as f64
}

/// `|P*| / |P|` — the fraction of track pairs that are polyonymous
/// (Fig. 11's *Polyonymous Rate*). Zero when there are no pairs.
pub fn polyonymous_rate(n_polyonymous: usize, n_pairs: usize) -> f64 {
    if n_pairs == 0 {
        0.0
    } else {
        n_polyonymous as f64 / n_pairs as f64
    }
}

/// Number of unordered pairs among `n` tracks: `n·(n−1)/2`.
pub fn n_unordered_pairs(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_types::TrackId;

    fn pair(a: u64, b: u64) -> TrackPair {
        TrackPair::new(TrackId(a), TrackId(b)).unwrap()
    }

    #[test]
    fn recall_counts_intersection() {
        let truth: BTreeSet<_> = [pair(1, 2), pair(3, 4), pair(5, 6)].into_iter().collect();
        let cands = [pair(1, 2), pair(5, 6), pair(7, 8)];
        assert!((recall(cands.iter(), &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_of_empty_truth_is_one() {
        let truth = BTreeSet::new();
        assert_eq!(recall([pair(1, 2)].iter(), &truth), 1.0);
        assert_eq!(recall([].iter(), &truth), 1.0);
    }

    #[test]
    fn recall_bounds() {
        let truth: BTreeSet<_> = [pair(1, 2)].into_iter().collect();
        assert_eq!(recall([].iter(), &truth), 0.0);
        assert_eq!(recall([pair(1, 2)].iter(), &truth), 1.0);
    }

    #[test]
    fn polyonymous_rate_basics() {
        assert_eq!(polyonymous_rate(0, 0), 0.0);
        assert_eq!(polyonymous_rate(2, 100), 0.02);
    }

    #[test]
    fn unordered_pair_count() {
        assert_eq!(n_unordered_pairs(0), 0);
        assert_eq!(n_unordered_pairs(1), 0);
        assert_eq!(n_unordered_pairs(4), 6);
        assert_eq!(n_unordered_pairs(145), 145 * 144 / 2);
    }
}
