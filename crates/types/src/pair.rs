//! Unordered track pairs — the unit TMerge reasons about.

use crate::TrackId;
use serde::{Deserialize, Serialize};

/// An unordered pair of distinct track IDs, stored canonically
/// (`lo < hi`), so `{a, b}` and `{b, a}` are the same value — the paper's
/// `p_{i,j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrackPair {
    lo: TrackId,
    hi: TrackId,
}

impl TrackPair {
    /// Creates a canonical pair. Returns `None` when `a == b` (a track is
    /// never polyonymous with itself).
    pub fn new(a: TrackId, b: TrackId) -> Option<Self> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(Self { lo: a, hi: b }),
            std::cmp::Ordering::Greater => Some(Self { lo: b, hi: a }),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The smaller track id.
    pub fn lo(&self) -> TrackId {
        self.lo
    }

    /// The larger track id.
    pub fn hi(&self) -> TrackId {
        self.hi
    }

    /// Both ids as a tuple `(lo, hi)`.
    pub fn ids(&self) -> (TrackId, TrackId) {
        (self.lo, self.hi)
    }

    /// True when `t` is one of the two tracks.
    pub fn contains(&self, t: TrackId) -> bool {
        self.lo == t || self.hi == t
    }
}

impl std::fmt::Display for TrackPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_canonical() {
        let a = TrackPair::new(TrackId(5), TrackId(2)).unwrap();
        let b = TrackPair::new(TrackId(2), TrackId(5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.lo(), TrackId(2));
        assert_eq!(a.hi(), TrackId(5));
    }

    #[test]
    fn self_pair_is_rejected() {
        assert!(TrackPair::new(TrackId(3), TrackId(3)).is_none());
    }

    #[test]
    fn contains_checks_both_sides() {
        let p = TrackPair::new(TrackId(1), TrackId(9)).unwrap();
        assert!(p.contains(TrackId(1)));
        assert!(p.contains(TrackId(9)));
        assert!(!p.contains(TrackId(5)));
    }

    #[test]
    fn display_formats_canonically() {
        let p = TrackPair::new(TrackId(9), TrackId(1)).unwrap();
        assert_eq!(p.to_string(), "(t1, t9)");
    }
}
