//! Explicit SIMD primitives for the workspace's hot loops.
//!
//! Two kernel families live here, shared by `tm-core` (dense scoring) and
//! `tm-track` (gated assignment):
//!
//! * **Dot products** over unit-normalized feature vectors — the inner loop
//!   of `sum_pairwise_unit_distances`. The AVX2+FMA path uses four
//!   256-bit accumulators (16 doubles per iteration) with a *fixed*
//!   reduction order, so results are identical from run to run on the same
//!   host; they may differ from the scalar kernel by a few ULPs (FMA fuses
//!   the rounding step), which callers tolerate — the workspace pins
//!   SIMD ≡ scalar within `1e-9` by proptest.
//! * **IoU cost rows** — the inner loop of `iou_threshold_matches`. These
//!   are required to be **bit-identical** to [`BBox::iou`]: no FMA, the
//!   same operation sequence per lane as the scalar code, so assignment
//!   decisions (and therefore golden metrics) cannot shift between the two
//!   dispatch paths.
//!
//! ## Dispatch & determinism contract
//!
//! Feature detection runs once (`OnceLock`) via `is_x86_feature_detected!`;
//! the environment variable [`SIMD_ENV`]`=0` forces the scalar path for
//! A/B debugging. The scalar kernels are the pinned references: they are
//! byte-for-byte the pre-SIMD implementations and must never change
//! behaviour. [`dispatch_name`] reports which path is live — the perf
//! trajectory records it in every `BENCH_*.json` meta block.

use crate::geometry::BBox;
use std::sync::OnceLock;

/// Environment variable: set to `0` to force the scalar fallback kernels
/// even on hosts whose CPU supports AVX2+FMA.
pub const SIMD_ENV: &str = "TMERGE_SIMD";

/// True when the AVX2+FMA kernels are compiled in, supported by this CPU,
/// and not disabled via [`SIMD_ENV`]. Cached after the first call.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os(SIMD_ENV).is_some_and(|v| v == *"0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The live dispatch path, as recorded in bench metadata:
/// `"avx2+fma"` or `"scalar-fallback"`.
pub fn dispatch_name() -> &'static str {
    if simd_enabled() {
        "avx2+fma"
    } else {
        "scalar-fallback"
    }
}

// ---------------------------------------------------------------------------
// Dot product
// ---------------------------------------------------------------------------

/// Pinned scalar reference: four independent accumulators (so the compiler
/// may keep them in registers) folded in a fixed order. This is the exact
/// pre-SIMD kernel from `tm_core::score` and must not change.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// AVX2+FMA dot product: four 256-bit accumulators (16 doubles per
/// iteration), reduced as `(acc0+acc1)+(acc2+acc3)`, then lanes
/// `(l0+l1)+(l2+l3)`, then the scalar tail — a fixed order, so the result
/// is deterministic for a given input on any AVX2 host.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA
/// (`is_x86_feature_detected!("avx2")` / `("fma")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let mut acc3 = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i + 4)),
            _mm256_loadu_pd(bp.add(i + 4)),
            acc1,
        );
        acc2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i + 8)),
            _mm256_loadu_pd(bp.add(i + 8)),
            acc2,
        );
        acc3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(ap.add(i + 12)),
            _mm256_loadu_pd(bp.add(i + 12)),
            acc3,
        );
        i += 16;
    }
    // Fixed reduction order: (acc0+acc1)+(acc2+acc3).
    let mut acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
    while i + 4 <= n {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc);
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while i < n {
        sum += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    sum
}

/// Dispatching dot product: AVX2+FMA when available, pinned scalar
/// otherwise. `a` and `b` must have equal length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: simd_enabled() returns true only after runtime detection
        // of both avx2 and fma.
        return unsafe { dot_avx2(a, b) };
    }
    dot_scalar(a, b)
}

// ---------------------------------------------------------------------------
// IoU cost rows
// ---------------------------------------------------------------------------

/// Pinned scalar reference for the dense-fallback row of
/// `iou_threshold_matches`: appends `cols.len()` costs, each
/// `1 - iou(rb, col)` when that cost is `<= max_cost`, else `forbidden`.
pub fn iou_cost_row_masked_scalar(
    rb: &BBox,
    cols: &[BBox],
    max_cost: f64,
    forbidden: f64,
    out: &mut Vec<f64>,
) {
    out.extend(cols.iter().map(|cb| {
        let cost = 1.0 - rb.iou(cb);
        if cost <= max_cost {
            cost
        } else {
            forbidden
        }
    }));
}

/// Pinned scalar reference for the gated row: appends one cost
/// `1 - iou(rb, cols[i])` per index in `idx` (unmasked — the caller gates).
pub fn iou_costs_indexed_scalar(rb: &BBox, cols: &[BBox], idx: &[u32], out: &mut Vec<f64>) {
    out.extend(idx.iter().map(|&c| 1.0 - rb.iou(&cols[c as usize])));
}

/// One 4-lane step of the IoU cost kernel, replicating [`BBox::iou`]
/// operation-for-operation (max/min, subtract, multiply, divide — no FMA)
/// so each lane is bit-identical to the scalar result.
///
/// Lane math, mirroring `BBox::intersection` + `BBox::iou`:
/// `x0 = max(ax, bx)`, `x1 = min(ax+aw, bx+bw)` (and likewise for y);
/// the intersection exists iff `x1 > x0 && y1 > y0`, in which case its
/// area is `(x1-x0)*(y1-y0)` (the scalar `w.max(0.0)` clamp is a no-op
/// there); `union = (aw*ah + bw*bh) - inter`; IoU is `inter/union` when
/// `inter > 0 && union > 0`, else `0`. `_mm256_max_pd`'s signed-zero
/// tie-break differs from `f64::max`, but a `±0.0` corner only arises when
/// the strict `>` gates already force the lane to 0, identically to scalar.
///
/// # Safety
/// Caller must ensure AVX2 support and `cols.len() >= 4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn iou_row4(rb: &BBox, cols: &[BBox]) -> [f64; 4] {
    use std::arch::x86_64::*;
    debug_assert!(cols.len() >= 4);
    // BBox is repr(Rust): stage fields through stack arrays rather than
    // assuming a memory layout.
    let mut bx = [0.0f64; 4];
    let mut by = [0.0f64; 4];
    let mut bw = [0.0f64; 4];
    let mut bh = [0.0f64; 4];
    for l in 0..4 {
        let b = cols.get_unchecked(l);
        bx[l] = b.x;
        by[l] = b.y;
        bw[l] = b.w;
        bh[l] = b.h;
    }
    let ax = _mm256_set1_pd(rb.x);
    let ay = _mm256_set1_pd(rb.y);
    let aw = _mm256_set1_pd(rb.w);
    let ah = _mm256_set1_pd(rb.h);
    let bx = _mm256_loadu_pd(bx.as_ptr());
    let by = _mm256_loadu_pd(by.as_ptr());
    let bw = _mm256_loadu_pd(bw.as_ptr());
    let bh = _mm256_loadu_pd(bh.as_ptr());

    let x0 = _mm256_max_pd(ax, bx);
    let y0 = _mm256_max_pd(ay, by);
    let x1 = _mm256_min_pd(_mm256_add_pd(ax, aw), _mm256_add_pd(bx, bw));
    let y1 = _mm256_min_pd(_mm256_add_pd(ay, ah), _mm256_add_pd(by, bh));
    let valid = _mm256_and_pd(
        _mm256_cmp_pd::<_CMP_GT_OQ>(x1, x0),
        _mm256_cmp_pd::<_CMP_GT_OQ>(y1, y0),
    );
    let inter = _mm256_mul_pd(_mm256_sub_pd(x1, x0), _mm256_sub_pd(y1, y0));
    // union = (a.area() + b.area()) - inter, in the scalar evaluation order.
    let union = _mm256_sub_pd(
        _mm256_add_pd(_mm256_mul_pd(aw, ah), _mm256_mul_pd(bw, bh)),
        inter,
    );
    let zero = _mm256_setzero_pd();
    let good = _mm256_and_pd(
        valid,
        _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_GT_OQ>(inter, zero),
            _mm256_cmp_pd::<_CMP_GT_OQ>(union, zero),
        ),
    );
    // Dead lanes may divide by zero; the blend discards them before use.
    let iou = _mm256_blendv_pd(zero, _mm256_div_pd(inter, union), good);
    let cost = _mm256_sub_pd(_mm256_set1_pd(1.0), iou);
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), cost);
    lanes
}

/// # Safety
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn iou_cost_row_masked_avx2(
    rb: &BBox,
    cols: &[BBox],
    max_cost: f64,
    forbidden: f64,
    out: &mut Vec<f64>,
) {
    let mut i = 0usize;
    while i + 4 <= cols.len() {
        let lanes = iou_row4(rb, cols.get_unchecked(i..));
        for &cost in &lanes {
            out.push(if cost <= max_cost { cost } else { forbidden });
        }
        i += 4;
    }
    iou_cost_row_masked_scalar(rb, &cols[i..], max_cost, forbidden, out);
}

/// # Safety
/// Caller must ensure AVX2 support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn iou_costs_indexed_avx2(rb: &BBox, cols: &[BBox], idx: &[u32], out: &mut Vec<f64>) {
    let mut gathered = [BBox::default(); 4];
    let mut i = 0usize;
    while i + 4 <= idx.len() {
        for l in 0..4 {
            gathered[l] = cols[*idx.get_unchecked(i + l) as usize];
        }
        let lanes = iou_row4(rb, &gathered);
        out.extend_from_slice(&lanes);
        i += 4;
    }
    iou_costs_indexed_scalar(rb, cols, &idx[i..], out);
}

/// Dispatching dense IoU cost row (bit-identical across paths): appends
/// `cols.len()` entries to `out` — the cost `1 - iou` where it passes the
/// gate, `forbidden` otherwise.
pub fn iou_cost_row_masked(
    rb: &BBox,
    cols: &[BBox],
    max_cost: f64,
    forbidden: f64,
    out: &mut Vec<f64>,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: runtime-detected AVX2.
        unsafe { iou_cost_row_masked_avx2(rb, cols, max_cost, forbidden, out) };
        return;
    }
    iou_cost_row_masked_scalar(rb, cols, max_cost, forbidden, out);
}

/// Dispatching gated IoU cost row (bit-identical across paths): appends
/// one unmasked cost per candidate index in `idx`.
pub fn iou_costs_indexed(rb: &BBox, cols: &[BBox], idx: &[u32], out: &mut Vec<f64>) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: runtime-detected AVX2.
        unsafe { iou_costs_indexed_avx2(rb, cols, idx, out) };
        return;
    }
    iou_costs_indexed_scalar(rb, cols, idx, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn boxes(n: usize, seed: u64) -> Vec<BBox> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                BBox::new(
                    splitmix(&mut s) * 500.0,
                    splitmix(&mut s) * 500.0,
                    splitmix(&mut s) * 120.0,
                    splitmix(&mut s) * 120.0,
                )
            })
            .collect()
    }

    #[test]
    fn dispatch_name_is_one_of_the_two_contract_strings() {
        assert!(matches!(dispatch_name(), "avx2+fma" | "scalar-fallback"));
    }

    #[test]
    fn dot_simd_matches_scalar_within_1e9_all_lengths() {
        let mut s = 7u64;
        for n in [0usize, 1, 3, 4, 5, 15, 16, 17, 64, 127, 128, 257] {
            let a: Vec<f64> = (0..n).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
            let got = dot(&a, &b);
            let want = dot_scalar(&a, &b);
            assert!(
                (got - want).abs() <= 1e-9,
                "dot mismatch at n={n}: {got} vs {want}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_dot_is_run_to_run_deterministic() {
        if !simd_enabled() {
            return; // fallback host: nothing to compare
        }
        let mut s = 11u64;
        let a: Vec<f64> = (0..301).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
        let b: Vec<f64> = (0..301).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
        // SAFETY: simd_enabled() checked above.
        let first = unsafe { dot_avx2(&a, &b) };
        for _ in 0..10 {
            let again = unsafe { dot_avx2(&a, &b) };
            assert_eq!(first.to_bits(), again.to_bits());
        }
    }

    #[test]
    fn iou_masked_row_bit_identical_to_scalar() {
        let cols = boxes(53, 3);
        let rows = boxes(9, 4);
        for rb in &rows {
            for &max_cost in &[0.3, 0.7, 1.0] {
                let mut simd_out = Vec::new();
                let mut ref_out = Vec::new();
                iou_cost_row_masked(rb, &cols, max_cost, f64::MAX, &mut simd_out);
                iou_cost_row_masked_scalar(rb, &cols, max_cost, f64::MAX, &mut ref_out);
                assert_eq!(simd_out.len(), ref_out.len());
                for (g, w) in simd_out.iter().zip(&ref_out) {
                    assert_eq!(g.to_bits(), w.to_bits(), "masked IoU row drifted");
                }
            }
        }
    }

    #[test]
    fn iou_indexed_row_bit_identical_to_scalar() {
        let cols = boxes(40, 5);
        let idx: Vec<u32> = (0..40u32).rev().filter(|i| i % 3 != 0).collect();
        for rb in &boxes(7, 6) {
            let mut simd_out = Vec::new();
            let mut ref_out = Vec::new();
            iou_costs_indexed(rb, &cols, &idx, &mut simd_out);
            iou_costs_indexed_scalar(rb, &cols, &idx, &mut ref_out);
            assert_eq!(simd_out.len(), ref_out.len());
            for (g, w) in simd_out.iter().zip(&ref_out) {
                assert_eq!(g.to_bits(), w.to_bits(), "indexed IoU row drifted");
            }
        }
    }

    #[test]
    fn degenerate_boxes_cost_matches_scalar() {
        // Zero-area, touching, and nested boxes — the gate corners.
        let cols = vec![
            BBox::new(0.0, 0.0, 0.0, 10.0),
            BBox::new(0.0, 0.0, 10.0, 0.0),
            BBox::new(10.0, 0.0, 5.0, 5.0),  // touches rb's right edge
            BBox::new(2.0, 2.0, 3.0, 3.0),   // nested
            BBox::new(0.0, 0.0, 10.0, 10.0), // identical
        ];
        let rb = BBox::new(0.0, 0.0, 10.0, 10.0);
        let mut simd_out = Vec::new();
        let mut ref_out = Vec::new();
        iou_cost_row_masked(&rb, &cols, 1.0, f64::MAX, &mut simd_out);
        iou_cost_row_masked_scalar(&rb, &cols, 1.0, f64::MAX, &mut ref_out);
        for (g, w) in simd_out.iter().zip(&ref_out) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_dot_matches_scalar(
            n in 0usize..200,
            seed in 0u64..1_000_000,
        ) {
            let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
            let a: Vec<f64> = (0..n).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|_| splitmix(&mut s) * 2.0 - 1.0).collect();
            let diff = (dot(&a, &b) - dot_scalar(&a, &b)).abs();
            prop_assert!(diff <= 1e-9, "dot drift {diff}");
        }

        #[test]
        fn prop_iou_row_bit_identical(
            n in 0usize..40,
            seed in 0u64..1_000_000,
            max_cost in 0.0f64..1.5,
        ) {
            let cols = boxes(n, seed.wrapping_add(1));
            let rb = boxes(1, seed.wrapping_add(99))[0];
            let mut simd_out = Vec::new();
            let mut ref_out = Vec::new();
            iou_cost_row_masked(&rb, &cols, max_cost, f64::MAX, &mut simd_out);
            iou_cost_row_masked_scalar(&rb, &cols, max_cost, f64::MAX, &mut ref_out);
            prop_assert_eq!(simd_out.len(), ref_out.len());
            for (g, w) in simd_out.iter().zip(&ref_out) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
