//! Per-frame detections — the interface between the detector and trackers.

use crate::{BBox, ClassId, FrameIdx, GtObjectId};
use serde::{Deserialize, Serialize};

/// One detected object instance in one frame.
///
/// This is exactly what a CNN detector would emit: a box, a confidence and a
/// class. The extra [`Detection::provenance`] field is a **simulation
/// side-channel**: the ground-truth identity of the actor that produced this
/// detection (or `None` for a false positive). It exists so that the ReID
/// simulator can synthesize appearance features and so the metrics can score
/// tracker output against truth. Trackers and the merging algorithms must
/// not — and in this codebase do not — consult it for association decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Frame in which the object was detected.
    pub frame: FrameIdx,
    /// The detected bounding box (already clipped to the camera viewport).
    pub bbox: BBox,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
    /// Detected object class.
    pub class: ClassId,
    /// Fraction of the true object visible when this detection was made,
    /// in `[0, 1]`; `1.0` for fully visible, lower under occlusion or frame
    /// truncation. Drives appearance-noise amplification in the ReID
    /// simulator. `0.0` for false positives.
    pub visibility: f64,
    /// Simulation side-channel: which GT actor produced this detection.
    /// `None` for detector false positives.
    pub provenance: Option<GtObjectId>,
}

impl Detection {
    /// Creates a detection attributed to a ground-truth actor.
    pub fn of_actor(
        frame: FrameIdx,
        bbox: BBox,
        confidence: f64,
        class: ClassId,
        visibility: f64,
        actor: GtObjectId,
    ) -> Self {
        Self {
            frame,
            bbox,
            confidence: confidence.clamp(0.0, 1.0),
            class,
            visibility: visibility.clamp(0.0, 1.0),
            provenance: Some(actor),
        }
    }

    /// Creates a false-positive detection (no underlying actor).
    pub fn false_positive(frame: FrameIdx, bbox: BBox, confidence: f64, class: ClassId) -> Self {
        Self {
            frame,
            bbox,
            confidence: confidence.clamp(0.0, 1.0),
            class,
            visibility: 0.0,
            provenance: None,
        }
    }

    /// True when this detection stems from a real actor.
    pub fn is_true_positive(&self) -> bool {
        self.provenance.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_actor_clamps_confidence_and_visibility() {
        let d = Detection::of_actor(
            FrameIdx(0),
            BBox::new(0.0, 0.0, 10.0, 10.0),
            1.7,
            ClassId(1),
            -0.2,
            GtObjectId(4),
        );
        assert_eq!(d.confidence, 1.0);
        assert_eq!(d.visibility, 0.0);
        assert!(d.is_true_positive());
    }

    #[test]
    fn false_positive_has_no_provenance() {
        let d =
            Detection::false_positive(FrameIdx(3), BBox::new(0.0, 0.0, 5.0, 5.0), 0.4, ClassId(1));
        assert!(!d.is_true_positive());
        assert_eq!(d.visibility, 0.0);
        assert_eq!(d.provenance, None);
    }
}
