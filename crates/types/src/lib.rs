//! # tm-types
//!
//! Shared vocabulary for the `tmerge` workspace: 2-D geometry ([`Point`],
//! [`BBox`]), strongly-typed identifiers ([`FrameIdx`], [`TrackId`],
//! [`GtObjectId`], [`ClassId`]), per-frame [`Detection`]s and the [`Track`] /
//! [`TrackSet`] structures every other crate consumes.
//!
//! The crate is dependency-light by design (only `serde` for data-type
//! serialization) so that every layer of the system — world simulator,
//! detector, trackers, ReID, merging, metrics, queries — speaks the same
//! types without pulling in each other's machinery.
//!
//! ## Conventions
//!
//! * Coordinates are `f64` pixels with the origin at the **top-left** of the
//!   camera frame; `x` grows right, `y` grows down (image convention).
//! * A [`BBox`] is stored as `(x, y, w, h)` where `(x, y)` is the top-left
//!   corner. Width/height are kept non-negative by construction helpers.
//! * Frames are indexed from `0` with [`FrameIdx`].
//! * Tracking IDs ([`TrackId`]) are assigned by trackers and are unique per
//!   video; ground-truth object identities ([`GtObjectId`]) are assigned by
//!   the world simulator and are the hidden truth trackers try to recover.

pub mod detection;
pub mod error;
pub mod geometry;
pub mod ids;
pub mod motchallenge;
pub mod pair;
pub mod simd;
pub mod track;

pub use detection::Detection;
pub use error::{Result, TmError, TrackDefect};
pub use geometry::{BBox, Point};
pub use ids::{ClassId, FrameIdx, GtObjectId, TrackId, CAMERA_STRIDE};
pub use motchallenge::{parse_motchallenge, write_motchallenge};
pub use pair::TrackPair;
pub use track::{FrameIndex, Track, TrackBox, TrackSet};
