//! Planar geometry: points and axis-aligned bounding boxes.
//!
//! All computer-vision layers of the workspace (world simulation, detection,
//! tracking, ReID spatial priors, metrics) operate on the [`BBox`] type
//! defined here. Boxes use the image convention: origin at the top-left,
//! `y` grows downwards.

use serde::{Deserialize, Serialize};

/// A point in frame coordinates (pixels).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate, grows rightwards.
    pub x: f64,
    /// Vertical coordinate, grows downwards (image convention).
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    ///
    /// This is the distance used for the paper's *spatial distance*
    /// `DisS_{i,j}` between track end-points (BetaInit, Algorithm 3).
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Component-wise addition.
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned bounding box in frame coordinates.
///
/// Stored as top-left corner plus extent. Construction helpers keep the
/// extent non-negative; degenerate (zero-area) boxes are allowed and behave
/// sensibly in [`BBox::iou`] (overlap 0 with everything, including
/// themselves).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width (non-negative).
    pub w: f64,
    /// Height (non-negative).
    pub h: f64,
}

impl BBox {
    /// Creates a box from its top-left corner and extent.
    ///
    /// Negative extents are clamped to zero so downstream area/overlap
    /// arithmetic never sees a negative dimension.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Self {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Creates a box from its centre point and extent.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        let w = w.max(0.0);
        let h = h.max(0.0);
        Self {
            x: cx - w / 2.0,
            y: cy - h / 2.0,
            w,
            h,
        }
    }

    /// Creates a box from two corner points (any opposing pair).
    pub fn from_corners(a: Point, b: Point) -> Self {
        let x0 = a.x.min(b.x);
        let y0 = a.y.min(b.y);
        Self::new(x0, y0, (a.x - b.x).abs(), (a.y - b.y).abs())
    }

    /// Right edge (`x + w`).
    pub fn x2(&self) -> f64 {
        self.x + self.w
    }

    /// Bottom edge (`y + h`).
    pub fn y2(&self) -> f64 {
        self.y + self.h
    }

    /// Centre point — `Φ(b)` in the paper's notation.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Box area (`w · h`).
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Aspect ratio `w / h`; `None` for a zero-height box.
    pub fn aspect(&self) -> Option<f64> {
        (self.h > 0.0).then(|| self.w / self.h)
    }

    /// True if the box has zero area.
    pub fn is_empty(&self) -> bool {
        self.w <= 0.0 || self.h <= 0.0
    }

    /// Intersection rectangle with another box, if the boxes overlap.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.x2().min(other.x2());
        let y1 = self.y2().min(other.y2());
        (x1 > x0 && y1 > y0).then(|| BBox::new(x0, y0, x1 - x0, y1 - y0))
    }

    /// Area of the intersection with another box (0 when disjoint).
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        self.intersection(other).map_or(0.0, |b| b.area())
    }

    /// Intersection-over-union in `[0, 1]`.
    ///
    /// The standard association measure used by the tracking substrate
    /// (SORT and friends) and by the CLEAR-MOT correspondence.
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection_area(other);
        if inter <= 0.0 {
            return 0.0;
        }
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Fraction of `self`'s area covered by `other`, in `[0, 1]`.
    ///
    /// Used by the detection simulator to decide how much of an actor an
    /// occluder hides.
    pub fn coverage_by(&self, other: &BBox) -> f64 {
        let a = self.area();
        if a <= 0.0 {
            return 0.0;
        }
        (self.intersection_area(other) / a).clamp(0.0, 1.0)
    }

    /// Smallest box enclosing both `self` and `other`.
    pub fn union_rect(&self, other: &BBox) -> BBox {
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.x2().max(other.x2());
        let y1 = self.y2().max(other.y2());
        BBox::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// True when `p` lies inside the box (edges inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x && p.x <= self.x2() && p.y >= self.y && p.y <= self.y2()
    }

    /// Clips the box to a viewport, returning `None` when nothing remains.
    ///
    /// The camera model uses this to truncate boxes that leave the frame.
    pub fn clip_to(&self, viewport: &BBox) -> Option<BBox> {
        self.intersection(viewport)
    }

    /// Translates the box by `(dx, dy)`.
    pub fn translate(&self, dx: f64, dy: f64) -> BBox {
        BBox::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Scales width and height about the centre by `factor` (≥ 0).
    pub fn scale_about_center(&self, factor: f64) -> BBox {
        let c = self.center();
        BBox::from_center(c.x, c.y, self.w * factor.max(0.0), self.h * factor.max(0.0))
    }

    /// The SORT observation vector `[cx, cy, s, r]`: centre, scale (area)
    /// and aspect ratio. `r` falls back to 1.0 for degenerate boxes.
    pub fn to_cxcysr(&self) -> [f64; 4] {
        let c = self.center();
        [c.x, c.y, self.area(), self.aspect().unwrap_or(1.0)]
    }

    /// Inverse of [`BBox::to_cxcysr`].
    ///
    /// Non-positive scale or ratio yields a degenerate (zero-extent) box at
    /// the given centre rather than NaNs.
    pub fn from_cxcysr(z: [f64; 4]) -> BBox {
        let [cx, cy, s, r] = z;
        if s <= 0.0 || r <= 0.0 {
            return BBox::from_center(cx, cy, 0.0, 0.0);
        }
        let w = (s * r).sqrt();
        let h = s / w;
        BBox::from_center(cx, cy, w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: f64, y: f64, w: f64, h: f64) -> BBox {
        BBox::new(x, y, w, h)
    }

    #[test]
    fn point_distance_is_euclidean() {
        assert_eq!(Point::new(0.0, 0.0).distance(&Point::new(3.0, 4.0)), 5.0);
        assert_eq!(Point::new(1.0, 1.0).distance(&Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn point_lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 10.0);
        let c = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&c, 0.0), a);
        assert_eq!(a.lerp(&c, 1.0), c);
        assert_eq!(a.lerp(&c, 0.5), Point::new(5.0, 5.0));
    }

    #[test]
    fn bbox_new_clamps_negative_extent() {
        let bx = b(0.0, 0.0, -5.0, 3.0);
        assert_eq!(bx.w, 0.0);
        assert!(bx.is_empty());
    }

    #[test]
    fn bbox_center_and_area() {
        let bx = b(10.0, 20.0, 4.0, 6.0);
        assert_eq!(bx.center(), Point::new(12.0, 23.0));
        assert_eq!(bx.area(), 24.0);
    }

    #[test]
    fn from_center_round_trips() {
        let bx = BBox::from_center(50.0, 60.0, 10.0, 20.0);
        assert_eq!(bx.center(), Point::new(50.0, 60.0));
        assert_eq!((bx.w, bx.h), (10.0, 20.0));
    }

    #[test]
    fn from_corners_orders_any_pair() {
        let bx = BBox::from_corners(Point::new(5.0, 9.0), Point::new(1.0, 2.0));
        assert_eq!((bx.x, bx.y, bx.w, bx.h), (1.0, 2.0, 4.0, 7.0));
    }

    #[test]
    fn identical_boxes_have_iou_one() {
        let bx = b(0.0, 0.0, 10.0, 10.0);
        assert!((bx.iou(&bx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        assert_eq!(b(0.0, 0.0, 1.0, 1.0).iou(&b(5.0, 5.0, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn touching_boxes_have_iou_zero() {
        // Sharing only an edge: zero-area intersection.
        assert_eq!(b(0.0, 0.0, 1.0, 1.0).iou(&b(1.0, 0.0, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn half_overlap_iou() {
        // Two 2x2 boxes overlapping in a 1x2 strip: inter 2, union 6.
        let a = b(0.0, 0.0, 2.0, 2.0);
        let c = b(1.0, 0.0, 2.0, 2.0);
        assert!((a.iou(&c) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_box_iou_with_itself_is_zero() {
        let e = b(3.0, 3.0, 0.0, 0.0);
        assert_eq!(e.iou(&e), 0.0);
    }

    #[test]
    fn coverage_by_full_and_partial() {
        let inner = b(2.0, 2.0, 2.0, 2.0);
        let outer = b(0.0, 0.0, 10.0, 10.0);
        assert_eq!(inner.coverage_by(&outer), 1.0);
        assert_eq!(outer.coverage_by(&inner), 4.0 / 100.0);
    }

    #[test]
    fn union_rect_encloses_both() {
        let a = b(0.0, 0.0, 1.0, 1.0);
        let c = b(5.0, 7.0, 2.0, 1.0);
        let u = a.union_rect(&c);
        assert_eq!((u.x, u.y, u.x2(), u.y2()), (0.0, 0.0, 7.0, 8.0));
    }

    #[test]
    fn contains_is_edge_inclusive() {
        let bx = b(0.0, 0.0, 2.0, 2.0);
        assert!(bx.contains(&Point::new(0.0, 0.0)));
        assert!(bx.contains(&Point::new(2.0, 2.0)));
        assert!(!bx.contains(&Point::new(2.0001, 1.0)));
    }

    #[test]
    fn clip_to_viewport() {
        let v = b(0.0, 0.0, 100.0, 100.0);
        let partly = b(-10.0, -10.0, 20.0, 20.0);
        let clipped = partly.clip_to(&v).unwrap();
        assert_eq!(
            (clipped.x, clipped.y, clipped.w, clipped.h),
            (0.0, 0.0, 10.0, 10.0)
        );
        assert!(b(200.0, 200.0, 5.0, 5.0).clip_to(&v).is_none());
    }

    #[test]
    fn cxcysr_round_trip() {
        let bx = b(10.0, 20.0, 30.0, 15.0);
        let back = BBox::from_cxcysr(bx.to_cxcysr());
        assert!((back.x - bx.x).abs() < 1e-9);
        assert!((back.y - bx.y).abs() < 1e-9);
        assert!((back.w - bx.w).abs() < 1e-9);
        assert!((back.h - bx.h).abs() < 1e-9);
    }

    #[test]
    fn cxcysr_degenerate_is_safe() {
        let bx = BBox::from_cxcysr([5.0, 5.0, 0.0, 1.0]);
        assert!(bx.is_empty());
        assert_eq!(bx.center(), Point::new(5.0, 5.0));
    }

    #[test]
    fn scale_about_center_keeps_center() {
        let bx = b(0.0, 0.0, 4.0, 8.0);
        let s = bx.scale_about_center(0.5);
        assert_eq!(s.center(), bx.center());
        assert_eq!((s.w, s.h), (2.0, 4.0));
    }
}
