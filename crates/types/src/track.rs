//! Tracks — sequences of boxes sharing a tracking identifier — and sets of
//! tracks, the central data structure handed from trackers to TMerge and on
//! to metrics and query processing.

use crate::{BBox, ClassId, FrameIdx, GtObjectId, Point, Result, TmError, TrackId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One observation of a track in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackBox {
    /// Frame of the observation.
    pub frame: FrameIdx,
    /// The box the tracker committed for this frame.
    pub bbox: BBox,
    /// Confidence of the underlying detection (1.0 for coasted/predicted
    /// boxes some trackers emit).
    pub confidence: f64,
    /// Visibility of the underlying detection (see [`crate::Detection`]).
    pub visibility: f64,
    /// Simulation side-channel: GT actor behind the underlying detection.
    pub provenance: Option<GtObjectId>,
}

impl TrackBox {
    /// Creates a track box.
    pub fn new(frame: FrameIdx, bbox: BBox) -> Self {
        Self {
            frame,
            bbox,
            confidence: 1.0,
            visibility: 1.0,
            provenance: None,
        }
    }

    /// Attaches a provenance actor (builder style).
    pub fn with_provenance(mut self, actor: GtObjectId) -> Self {
        self.provenance = Some(actor);
        self
    }

    /// Sets visibility (builder style).
    pub fn with_visibility(mut self, v: f64) -> Self {
        self.visibility = v.clamp(0.0, 1.0);
        self
    }

    /// Sets confidence (builder style).
    pub fn with_confidence(mut self, c: f64) -> Self {
        self.confidence = c.clamp(0.0, 1.0);
        self
    }
}

/// A track: the boxes a tracker assigned to one tracking identifier, in
/// frame order.
///
/// The paper denotes a track `t_{c,k}` and its box sequence `B_{t_{c,k}}`
/// (`Track::boxes` here). Boxes are kept sorted by frame; [`Track::push`]
/// maintains the invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// The tracking identifier (TID).
    pub id: TrackId,
    /// Object class the tracker committed for this track.
    pub class: ClassId,
    /// Observations in ascending frame order.
    pub boxes: Vec<TrackBox>,
}

impl Track {
    /// Creates an empty track.
    pub fn new(id: TrackId, class: ClassId) -> Self {
        Self {
            id,
            class,
            boxes: Vec::new(),
        }
    }

    /// Creates a track from pre-sorted boxes (sorted defensively).
    pub fn with_boxes(id: TrackId, class: ClassId, mut boxes: Vec<TrackBox>) -> Self {
        boxes.sort_by_key(|b| b.frame);
        Self { id, class, boxes }
    }

    /// Appends an observation, keeping boxes sorted by frame.
    pub fn push(&mut self, tb: TrackBox) {
        match self.boxes.last() {
            Some(last) if last.frame > tb.frame => {
                let pos = self.boxes.partition_point(|b| b.frame <= tb.frame);
                self.boxes.insert(pos, tb);
            }
            _ => self.boxes.push(tb),
        }
    }

    /// Number of observations, `|t|` in the paper.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when the track has no observations.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// First observation.
    pub fn first(&self) -> Option<&TrackBox> {
        self.boxes.first()
    }

    /// Last observation.
    pub fn last(&self) -> Option<&TrackBox> {
        self.boxes.last()
    }

    /// First frame the track appears in.
    pub fn first_frame(&self) -> Option<FrameIdx> {
        self.first().map(|b| b.frame)
    }

    /// Last frame the track appears in.
    pub fn last_frame(&self) -> Option<FrameIdx> {
        self.last().map(|b| b.frame)
    }

    /// Temporal span in frames (inclusive): `last - first + 1`; 0 if empty.
    pub fn span(&self) -> u64 {
        match (self.first_frame(), self.last_frame()) {
            (Some(a), Some(z)) => z.get() - a.get() + 1,
            _ => 0,
        }
    }

    /// The observation at exactly `frame`, if any (binary search).
    pub fn box_at(&self, frame: FrameIdx) -> Option<&TrackBox> {
        self.boxes
            .binary_search_by_key(&frame, |b| b.frame)
            .ok()
            .map(|i| &self.boxes[i])
    }

    /// True when the track has an observation in `frame`.
    pub fn present_at(&self, frame: FrameIdx) -> bool {
        self.box_at(frame).is_some()
    }

    /// True when any observation falls inside `[start, end)` (frame range).
    pub fn overlaps_range(&self, start: FrameIdx, end: FrameIdx) -> bool {
        match (self.first_frame(), self.last_frame()) {
            (Some(a), Some(z)) => a < end && z >= start,
            _ => false,
        }
    }

    /// Centre of the first box — used for the spatial distance `DisS`.
    pub fn first_center(&self) -> Option<Point> {
        self.first().map(|b| b.bbox.center())
    }

    /// Centre of the last box — used for the spatial distance `DisS`.
    pub fn last_center(&self) -> Option<Point> {
        self.last().map(|b| b.bbox.center())
    }

    /// The GT actor this track covers most, with the number of covered
    /// boxes attributed to it. Boxes without provenance (false positives)
    /// are ignored. Returns `None` when no box has provenance.
    ///
    /// This majority vote is the simulator-exact analogue of the manual
    /// GT-correspondence labelling the paper performs with CLEAR-MOT
    /// tooling [30].
    pub fn majority_actor(&self) -> Option<(GtObjectId, usize)> {
        let mut counts: HashMap<GtObjectId, usize> = HashMap::new();
        for b in &self.boxes {
            if let Some(g) = b.provenance {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            // Deterministic tie-break: highest count, then smallest id.
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }
}

/// An indexed collection of tracks, the unit handed between pipeline stages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrackSet {
    tracks: Vec<Track>,
    #[serde(skip)]
    index: HashMap<TrackId, usize>,
}

impl TrackSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from tracks; later duplicates of an id replace earlier
    /// entries (the index always points at the surviving track).
    pub fn from_tracks(tracks: Vec<Track>) -> Self {
        let mut set = Self::new();
        for t in tracks {
            set.insert(t);
        }
        set
    }

    /// Inserts (or replaces) a track.
    pub fn insert(&mut self, track: Track) {
        match self.index.get(&track.id) {
            Some(&i) => self.tracks[i] = track,
            None => {
                self.index.insert(track.id, self.tracks.len());
                self.tracks.push(track);
            }
        }
    }

    /// Number of tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when the set holds no tracks.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Looks a track up by id.
    pub fn get(&self, id: TrackId) -> Option<&Track> {
        self.index.get(&id).map(|&i| &self.tracks[i])
    }

    /// Looks a track up by id, erroring when absent.
    pub fn require(&self, id: TrackId) -> Result<&Track> {
        self.get(id).ok_or(TmError::UnknownTrack(id))
    }

    /// Iterates tracks in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Track> {
        self.tracks.iter()
    }

    /// All track ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = TrackId> + '_ {
        self.tracks.iter().map(|t| t.id)
    }

    /// Tracks whose lifetime intersects the frame range `[start, end)`.
    pub fn overlapping_range(
        &self,
        start: FrameIdx,
        end: FrameIdx,
    ) -> impl Iterator<Item = &Track> {
        self.iter().filter(move |t| t.overlaps_range(start, end))
    }

    /// Total number of boxes across all tracks.
    pub fn total_boxes(&self) -> usize {
        self.tracks.iter().map(Track::len).sum()
    }

    /// Applies a track-id relabelling, concatenating tracks that map to the
    /// same new id (their boxes are merged in frame order; the class of the
    /// first contributing track wins). Ids absent from `mapping` keep their
    /// original id.
    ///
    /// This is how accepted TMerge candidates are materialized into a
    /// corrected track set.
    pub fn relabeled(&self, mapping: &HashMap<TrackId, TrackId>) -> TrackSet {
        let mut merged: HashMap<TrackId, Track> = HashMap::new();
        let mut order: Vec<TrackId> = Vec::new();
        for t in &self.tracks {
            let new_id = *mapping.get(&t.id).unwrap_or(&t.id);
            let entry = merged.entry(new_id).or_insert_with(|| {
                order.push(new_id);
                Track::new(new_id, t.class)
            });
            entry.boxes.extend(t.boxes.iter().copied());
        }
        let mut out = TrackSet::new();
        for id in order {
            let mut t = merged.remove(&id).expect("id recorded in order");
            t.boxes.sort_by_key(|b| b.frame);
            out.insert(t);
        }
        out
    }

    /// Consumes the set, returning the tracks in insertion order.
    pub fn into_tracks(self) -> Vec<Track> {
        self.tracks
    }
}

impl FromIterator<Track> for TrackSet {
    fn from_iter<I: IntoIterator<Item = Track>>(iter: I) -> Self {
        Self::from_tracks(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(frame: u64, x: f64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(x, 0.0, 10.0, 10.0))
    }

    fn track(id: u64, frames: &[u64]) -> Track {
        Track::with_boxes(
            TrackId(id),
            ClassId(1),
            frames.iter().map(|&f| tb(f, f as f64)).collect(),
        )
    }

    #[test]
    fn push_keeps_frame_order() {
        let mut t = Track::new(TrackId(1), ClassId(1));
        t.push(tb(5, 0.0));
        t.push(tb(2, 0.0));
        t.push(tb(9, 0.0));
        let frames: Vec<u64> = t.boxes.iter().map(|b| b.frame.get()).collect();
        assert_eq!(frames, vec![2, 5, 9]);
    }

    #[test]
    fn span_and_endpoints() {
        let t = track(1, &[10, 12, 20]);
        assert_eq!(t.first_frame(), Some(FrameIdx(10)));
        assert_eq!(t.last_frame(), Some(FrameIdx(20)));
        assert_eq!(t.span(), 11);
        assert_eq!(Track::new(TrackId(2), ClassId(1)).span(), 0);
    }

    #[test]
    fn box_at_uses_binary_search() {
        let t = track(1, &[1, 3, 5, 7]);
        assert!(t.box_at(FrameIdx(5)).is_some());
        assert!(t.box_at(FrameIdx(4)).is_none());
        assert!(t.present_at(FrameIdx(7)));
    }

    #[test]
    fn overlaps_range_boundaries() {
        let t = track(1, &[10, 20]);
        assert!(t.overlaps_range(FrameIdx(0), FrameIdx(11)));
        assert!(t.overlaps_range(FrameIdx(20), FrameIdx(21)));
        assert!(!t.overlaps_range(FrameIdx(0), FrameIdx(10)));
        assert!(!t.overlaps_range(FrameIdx(21), FrameIdx(30)));
    }

    #[test]
    fn majority_actor_votes_and_breaks_ties_deterministically() {
        let mut t = Track::new(TrackId(1), ClassId(1));
        t.push(tb(0, 0.0).with_provenance(GtObjectId(7)));
        t.push(tb(1, 0.0).with_provenance(GtObjectId(7)));
        t.push(tb(2, 0.0).with_provenance(GtObjectId(9)));
        t.push(tb(3, 0.0)); // false positive, ignored
        assert_eq!(t.majority_actor(), Some((GtObjectId(7), 2)));

        // Tie: smaller id wins.
        let mut tie = Track::new(TrackId(2), ClassId(1));
        tie.push(tb(0, 0.0).with_provenance(GtObjectId(9)));
        tie.push(tb(1, 0.0).with_provenance(GtObjectId(3)));
        assert_eq!(tie.majority_actor().unwrap().0, GtObjectId(3));
    }

    #[test]
    fn majority_actor_none_for_pure_fp_track() {
        let mut t = Track::new(TrackId(1), ClassId(1));
        t.push(tb(0, 0.0));
        assert_eq!(t.majority_actor(), None);
    }

    #[test]
    fn trackset_insert_replaces_by_id() {
        let mut s = TrackSet::new();
        s.insert(track(1, &[0]));
        s.insert(track(2, &[0, 1]));
        s.insert(track(1, &[0, 1, 2]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(TrackId(1)).unwrap().len(), 3);
    }

    #[test]
    fn trackset_require_errors_on_missing() {
        let s = TrackSet::new();
        assert_eq!(
            s.require(TrackId(4)).unwrap_err(),
            TmError::UnknownTrack(TrackId(4))
        );
    }

    #[test]
    fn relabel_merges_and_sorts() {
        let s = TrackSet::from_tracks(vec![track(1, &[0, 1]), track(2, &[5, 6]), track(3, &[3])]);
        let mut map = HashMap::new();
        map.insert(TrackId(2), TrackId(1));
        map.insert(TrackId(3), TrackId(1));
        let out = s.relabeled(&map);
        assert_eq!(out.len(), 1);
        let t = out.get(TrackId(1)).unwrap();
        let frames: Vec<u64> = t.boxes.iter().map(|b| b.frame.get()).collect();
        assert_eq!(frames, vec![0, 1, 3, 5, 6]);
    }

    #[test]
    fn relabel_identity_preserves_everything() {
        let s = TrackSet::from_tracks(vec![track(1, &[0]), track(2, &[4])]);
        let out = s.relabeled(&HashMap::new());
        assert_eq!(out.len(), 2);
        assert_eq!(out.total_boxes(), 2);
    }

    #[test]
    fn overlapping_range_filters() {
        let s = TrackSet::from_tracks(vec![track(1, &[0, 5]), track(2, &[100, 110])]);
        let hits: Vec<TrackId> = s
            .overlapping_range(FrameIdx(0), FrameIdx(50))
            .map(|t| t.id)
            .collect();
        assert_eq!(hits, vec![TrackId(1)]);
    }
}
