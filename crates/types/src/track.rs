//! Tracks — sequences of boxes sharing a tracking identifier — and sets of
//! tracks, the central data structure handed from trackers to TMerge and on
//! to metrics and query processing.

use crate::{BBox, ClassId, FrameIdx, GtObjectId, Point, Result, TmError, TrackDefect, TrackId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One observation of a track in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackBox {
    /// Frame of the observation.
    pub frame: FrameIdx,
    /// The box the tracker committed for this frame.
    pub bbox: BBox,
    /// Confidence of the underlying detection (1.0 for coasted/predicted
    /// boxes some trackers emit).
    pub confidence: f64,
    /// Visibility of the underlying detection (see [`crate::Detection`]).
    pub visibility: f64,
    /// Simulation side-channel: GT actor behind the underlying detection.
    pub provenance: Option<GtObjectId>,
}

impl TrackBox {
    /// Creates a track box.
    pub fn new(frame: FrameIdx, bbox: BBox) -> Self {
        Self {
            frame,
            bbox,
            confidence: 1.0,
            visibility: 1.0,
            provenance: None,
        }
    }

    /// Attaches a provenance actor (builder style).
    pub fn with_provenance(mut self, actor: GtObjectId) -> Self {
        self.provenance = Some(actor);
        self
    }

    /// Sets visibility (builder style).
    pub fn with_visibility(mut self, v: f64) -> Self {
        self.visibility = v.clamp(0.0, 1.0);
        self
    }

    /// Sets confidence (builder style).
    pub fn with_confidence(mut self, c: f64) -> Self {
        self.confidence = c.clamp(0.0, 1.0);
        self
    }
}

/// A track: the boxes a tracker assigned to one tracking identifier, in
/// frame order.
///
/// The paper denotes a track `t_{c,k}` and its box sequence `B_{t_{c,k}}`
/// (`Track::boxes` here). Boxes are kept sorted by frame; [`Track::push`]
/// maintains the invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// The tracking identifier (TID).
    pub id: TrackId,
    /// Object class the tracker committed for this track.
    pub class: ClassId,
    /// Observations in ascending frame order.
    pub boxes: Vec<TrackBox>,
}

impl Track {
    /// Creates an empty track.
    pub fn new(id: TrackId, class: ClassId) -> Self {
        Self {
            id,
            class,
            boxes: Vec::new(),
        }
    }

    /// Creates a track from pre-sorted boxes (sorted defensively).
    pub fn with_boxes(id: TrackId, class: ClassId, mut boxes: Vec<TrackBox>) -> Self {
        boxes.sort_by_key(|b| b.frame);
        Self { id, class, boxes }
    }

    /// Appends an observation, keeping boxes sorted by frame.
    pub fn push(&mut self, tb: TrackBox) {
        match self.boxes.last() {
            Some(last) if last.frame > tb.frame => {
                let pos = self.boxes.partition_point(|b| b.frame <= tb.frame);
                self.boxes.insert(pos, tb);
            }
            _ => self.boxes.push(tb),
        }
    }

    /// Number of observations, `|t|` in the paper.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when the track has no observations.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// First observation.
    pub fn first(&self) -> Option<&TrackBox> {
        self.boxes.first()
    }

    /// Last observation.
    pub fn last(&self) -> Option<&TrackBox> {
        self.boxes.last()
    }

    /// First frame the track appears in.
    pub fn first_frame(&self) -> Option<FrameIdx> {
        self.first().map(|b| b.frame)
    }

    /// Last frame the track appears in.
    pub fn last_frame(&self) -> Option<FrameIdx> {
        self.last().map(|b| b.frame)
    }

    /// Temporal span in frames (inclusive): `last - first + 1`; 0 if empty.
    pub fn span(&self) -> u64 {
        match (self.first_frame(), self.last_frame()) {
            (Some(a), Some(z)) => z.get() - a.get() + 1,
            _ => 0,
        }
    }

    /// The observation at exactly `frame`, if any (binary search).
    pub fn box_at(&self, frame: FrameIdx) -> Option<&TrackBox> {
        self.boxes
            .binary_search_by_key(&frame, |b| b.frame)
            .ok()
            .map(|i| &self.boxes[i])
    }

    /// True when the track has an observation in `frame`.
    pub fn present_at(&self, frame: FrameIdx) -> bool {
        self.box_at(frame).is_some()
    }

    /// True when any observation falls inside `[start, end)` (frame range).
    pub fn overlaps_range(&self, start: FrameIdx, end: FrameIdx) -> bool {
        match (self.first_frame(), self.last_frame()) {
            (Some(a), Some(z)) => a < end && z >= start,
            _ => false,
        }
    }

    /// Centre of the first box — used for the spatial distance `DisS`.
    pub fn first_center(&self) -> Option<Point> {
        self.first().map(|b| b.bbox.center())
    }

    /// Centre of the last box — used for the spatial distance `DisS`.
    pub fn last_center(&self) -> Option<Point> {
        self.last().map(|b| b.bbox.center())
    }

    /// The GT actor this track covers most, with the number of covered
    /// boxes attributed to it. Boxes without provenance (false positives)
    /// are ignored. Returns `None` when no box has provenance.
    ///
    /// This majority vote is the simulator-exact analogue of the manual
    /// GT-correspondence labelling the paper performs with CLEAR-MOT
    /// tooling [30].
    pub fn majority_actor(&self) -> Option<(GtObjectId, usize)> {
        let mut counts: HashMap<GtObjectId, usize> = HashMap::new();
        for b in &self.boxes {
            if let Some(g) = b.provenance {
                *counts.entry(g).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            // Deterministic tie-break: highest count, then smallest id.
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }
}

/// An indexed collection of tracks, the unit handed between pipeline stages.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrackSet {
    tracks: Vec<Track>,
    #[serde(skip)]
    index: HashMap<TrackId, usize>,
}

impl TrackSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from tracks; later duplicates of an id replace earlier
    /// entries (the index always points at the surviving track).
    pub fn from_tracks(tracks: Vec<Track>) -> Self {
        let mut set = Self::new();
        for t in tracks {
            set.insert(t);
        }
        set
    }

    /// Inserts (or replaces) a track.
    pub fn insert(&mut self, track: Track) {
        match self.index.get(&track.id) {
            Some(&i) => self.tracks[i] = track,
            None => {
                self.index.insert(track.id, self.tracks.len());
                self.tracks.push(track);
            }
        }
    }

    /// Number of tracks.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when the set holds no tracks.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Looks a track up by id.
    pub fn get(&self, id: TrackId) -> Option<&Track> {
        self.index.get(&id).map(|&i| &self.tracks[i])
    }

    /// Looks a track up by id, erroring when absent.
    pub fn require(&self, id: TrackId) -> Result<&Track> {
        self.get(id).ok_or(TmError::UnknownTrack(id))
    }

    /// Iterates tracks in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Track> {
        self.tracks.iter()
    }

    /// All track ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = TrackId> + '_ {
        self.tracks.iter().map(|t| t.id)
    }

    /// Tracks whose lifetime intersects the frame range `[start, end)`.
    ///
    /// This is a linear filter over the whole set — fine for a one-off
    /// query. Repeated range scans (per-window pair construction, per-frame
    /// metric loops) should build a [`FrameIndex`] once via
    /// [`TrackSet::frame_index`] and query that instead.
    pub fn overlapping_range(
        &self,
        start: FrameIdx,
        end: FrameIdx,
    ) -> impl Iterator<Item = &Track> {
        self.iter().filter(move |t| t.overlaps_range(start, end))
    }

    /// Builds a [`FrameIndex`] over the current tracks. The index borrows
    /// the set and is a snapshot: inserting tracks afterwards requires
    /// rebuilding it.
    pub fn frame_index(&self) -> FrameIndex<'_> {
        FrameIndex::build(self)
    }

    /// Total number of boxes across all tracks.
    pub fn total_boxes(&self) -> usize {
        self.tracks.iter().map(Track::len).sum()
    }

    /// Applies a track-id relabelling, concatenating tracks that map to the
    /// same new id (their boxes are merged in frame order; the class of the
    /// first contributing track wins). Ids absent from `mapping` keep their
    /// original id.
    ///
    /// This is how accepted TMerge candidates are materialized into a
    /// corrected track set.
    pub fn relabeled(&self, mapping: &HashMap<TrackId, TrackId>) -> TrackSet {
        let mut merged: HashMap<TrackId, Track> = HashMap::new();
        let mut order: Vec<TrackId> = Vec::new();
        for t in &self.tracks {
            let new_id = *mapping.get(&t.id).unwrap_or(&t.id);
            let entry = merged.entry(new_id).or_insert_with(|| {
                order.push(new_id);
                Track::new(new_id, t.class)
            });
            entry.boxes.extend(t.boxes.iter().copied());
        }
        let mut out = TrackSet::new();
        for id in order {
            let mut t = merged.remove(&id).expect("id recorded in order");
            t.boxes.sort_by_key(|b| b.frame);
            out.insert(t);
        }
        out
    }

    /// The same tracks lifted into camera `camera`'s global id namespace
    /// (see [`crate::ids::CAMERA_STRIDE`]). Boxes and classes are
    /// untouched; only ids move. Camera `0` is the identity map.
    pub fn in_camera(&self, camera: u64) -> TrackSet {
        TrackSet::from_tracks(
            self.tracks
                .iter()
                .map(|t| {
                    let mut t = t.clone();
                    t.id = t.id.in_camera(camera);
                    t
                })
                .collect(),
        )
    }

    /// Consumes the set, returning the tracks in insertion order.
    pub fn into_tracks(self) -> Vec<Track> {
        self.tracks
    }

    /// Structural validation of tracker output, run at pipeline entry so
    /// corrupt input fails fast with context instead of panicking (or
    /// silently merging garbage) deep in the assignment core.
    ///
    /// Checks, per track and in frame order:
    /// * every box coordinate and extent is finite
    ///   ([`TrackDefect::NonFiniteBox`]);
    /// * every box has positive width and height
    ///   ([`TrackDefect::EmptyExtent`]);
    /// * no two observations share a frame
    ///   ([`TrackDefect::DuplicateFrame`]);
    /// * frames are in ascending order ([`TrackDefect::UnorderedFrames`]
    ///   — reachable because `Track::boxes` is a public field, so callers
    ///   can break the sort invariant the constructors maintain).
    ///
    /// Empty tracks are fine (the pipeline scores them conservatively).
    /// Returns the first defect found; `Ok(())` on clean input.
    pub fn validate(&self) -> Result<()> {
        for t in &self.tracks {
            let mut prev: Option<FrameIdx> = None;
            for b in &t.boxes {
                let defect = if !(b.bbox.x.is_finite()
                    && b.bbox.y.is_finite()
                    && b.bbox.w.is_finite()
                    && b.bbox.h.is_finite())
                {
                    Some(TrackDefect::NonFiniteBox)
                } else if b.bbox.w <= 0.0 || b.bbox.h <= 0.0 {
                    Some(TrackDefect::EmptyExtent)
                } else if prev == Some(b.frame) {
                    Some(TrackDefect::DuplicateFrame)
                } else if prev.is_some_and(|p| p > b.frame) {
                    Some(TrackDefect::UnorderedFrames)
                } else {
                    None
                };
                if let Some(defect) = defect {
                    return Err(TmError::InvalidTrack {
                        track: t.id,
                        frame: b.frame,
                        defect,
                    });
                }
                prev = Some(b.frame);
            }
        }
        Ok(())
    }
}

impl FromIterator<Track> for TrackSet {
    fn from_iter<I: IntoIterator<Item = Track>>(iter: I) -> Self {
        Self::from_tracks(iter.into_iter().collect())
    }
}

/// A frame-interval index over a [`TrackSet`] snapshot.
///
/// Two query families, both answered without rescanning every track:
///
/// * **Interval queries** — which tracks live in a frame range
///   ([`FrameIndex::overlapping_positions`]), backed by a span list sorted
///   by first frame plus a max-last-frame segment tree, O(log n + k) per
///   query instead of O(n).
/// * **Per-frame queries** — the boxes present in one frame
///   ([`FrameIndex::boxes_at`], in track insertion order, which is what the
///   metric loops historically iterated) and the position of a given track
///   id inside that frame's list ([`FrameIndex::position_at`]), replacing
///   the per-frame linear `position()` scans of the CLEAR-MOT sticky pass.
///
/// Tracks are addressed by their *position* (insertion order index) in the
/// underlying set; [`FrameIndex::track`] resolves a position back to the
/// track.
#[derive(Debug, Clone)]
pub struct FrameIndex<'a> {
    set: &'a TrackSet,
    /// Non-empty track positions sorted by (first frame, position).
    order: Vec<u32>,
    /// First frames, parallel to `order` (ascending).
    firsts: Vec<u64>,
    /// Segment tree over the last frames of `order` (max), 1-based heap
    /// layout.
    seg: Vec<u64>,
    /// Sorted distinct frames that hold at least one box.
    frame_keys: Vec<u64>,
    /// CSR offsets into `frame_entries` / `frame_by_id`.
    frame_starts: Vec<u32>,
    /// Per frame: `(track position, box)` in track insertion order (a
    /// track with several boxes in one frame contributes them in box
    /// order).
    frame_entries: Vec<(u32, BBox)>,
    /// Per frame: `(track id, local index into the frame's entry slice)`,
    /// sorted by (id, local index) for binary lookup.
    frame_by_id: Vec<(TrackId, u32)>,
}

impl<'a> FrameIndex<'a> {
    fn build(set: &'a TrackSet) -> Self {
        let mut order: Vec<u32> = (0..set.tracks.len() as u32)
            .filter(|&i| !set.tracks[i as usize].is_empty())
            .collect();
        order.sort_by_key(|&i| {
            (
                set.tracks[i as usize]
                    .first_frame()
                    .expect("non-empty")
                    .get(),
                i,
            )
        });
        let firsts: Vec<u64> = order
            .iter()
            .map(|&i| {
                set.tracks[i as usize]
                    .first_frame()
                    .expect("non-empty")
                    .get()
            })
            .collect();
        let lasts: Vec<u64> = order
            .iter()
            .map(|&i| {
                set.tracks[i as usize]
                    .last_frame()
                    .expect("non-empty")
                    .get()
            })
            .collect();
        let mut seg = vec![0u64; 4 * order.len().max(1)];
        if !lasts.is_empty() {
            Self::seg_build(&mut seg, &lasts, 1, 0, lasts.len());
        }

        // Per-frame CSR: distinct frames, then a stable counting-sort
        // scatter so each frame's entries keep track insertion order.
        let mut frame_keys: Vec<u64> = set
            .tracks
            .iter()
            .flat_map(|t| t.boxes.iter().map(|b| b.frame.get()))
            .collect();
        frame_keys.sort_unstable();
        frame_keys.dedup();
        let mut counts = vec![0u32; frame_keys.len() + 1];
        for t in &set.tracks {
            for b in &t.boxes {
                let k = frame_keys
                    .binary_search(&b.frame.get())
                    .expect("frame key present");
                counts[k + 1] += 1;
            }
        }
        for k in 0..frame_keys.len() {
            counts[k + 1] += counts[k];
        }
        let frame_starts = counts;
        let total = *frame_starts.last().unwrap_or(&0) as usize;
        let mut cursor = frame_starts.clone();
        let mut frame_entries = vec![(0u32, BBox::new(0.0, 0.0, 0.0, 0.0)); total];
        for (pos, t) in set.tracks.iter().enumerate() {
            for b in &t.boxes {
                let k = frame_keys
                    .binary_search(&b.frame.get())
                    .expect("frame key present");
                frame_entries[cursor[k] as usize] = (pos as u32, b.bbox);
                cursor[k] += 1;
            }
        }
        let mut frame_by_id: Vec<(TrackId, u32)> = Vec::with_capacity(total);
        for k in 0..frame_keys.len() {
            let (s, e) = (frame_starts[k] as usize, frame_starts[k + 1] as usize);
            let base = frame_by_id.len();
            for (local, &(pos, _)) in frame_entries[s..e].iter().enumerate() {
                frame_by_id.push((set.tracks[pos as usize].id, local as u32));
            }
            frame_by_id[base..].sort_unstable();
        }

        Self {
            set,
            order,
            firsts,
            seg,
            frame_keys,
            frame_starts,
            frame_entries,
            frame_by_id,
        }
    }

    fn seg_build(seg: &mut [u64], lasts: &[u64], node: usize, lo: usize, hi: usize) {
        if hi - lo == 1 {
            seg[node] = lasts[lo];
            return;
        }
        let mid = lo + (hi - lo) / 2;
        Self::seg_build(seg, lasts, 2 * node, lo, mid);
        Self::seg_build(seg, lasts, 2 * node + 1, mid, hi);
        seg[node] = seg[2 * node].max(seg[2 * node + 1]);
    }

    /// Collects, into `out`, the `order` indices in `[lo, hi) ∩ [0, limit)`
    /// whose last frame is ≥ `start`.
    fn seg_collect(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        limit: usize,
        start: u64,
        out: &mut Vec<u32>,
    ) {
        if lo >= limit || self.seg[node] < start {
            return;
        }
        if hi - lo == 1 {
            out.push(self.order[lo]);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.seg_collect(2 * node, lo, mid, limit, start, out);
        self.seg_collect(2 * node + 1, mid, hi, limit, start, out);
    }

    /// The underlying track at insertion position `pos`.
    pub fn track(&self, pos: u32) -> &'a Track {
        &self.set.tracks[pos as usize]
    }

    /// The last frame holding any box, if the set is non-empty.
    pub fn max_frame(&self) -> Option<FrameIdx> {
        self.frame_keys.last().map(|&f| FrameIdx(f))
    }

    /// Appends to `out` the positions of all tracks whose lifetime
    /// intersects `[start, end)`, in ascending position (= insertion)
    /// order — the same tracks [`TrackSet::overlapping_range`] yields.
    pub fn overlapping_positions(&self, start: FrameIdx, end: FrameIdx, out: &mut Vec<u32>) {
        out.clear();
        if self.order.is_empty() {
            return;
        }
        // Candidates: the prefix with first_frame < end; among those, keep
        // last_frame >= start via the segment tree.
        let limit = self.firsts.partition_point(|&f| f < end.get());
        if limit == 0 {
            return;
        }
        self.seg_collect(1, 0, self.firsts.len(), limit, start.get(), out);
        out.sort_unstable();
    }

    /// The boxes present in `frame` as `(track position, box)`, in track
    /// insertion order; empty for frames holding no box.
    pub fn boxes_at(&self, frame: FrameIdx) -> &[(u32, BBox)] {
        match self.frame_keys.binary_search(&frame.get()) {
            Ok(k) => {
                &self.frame_entries
                    [self.frame_starts[k] as usize..self.frame_starts[k + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Co-frame crowding around `bbox` in `frame`: the number of boxes
    /// belonging to *other* tracks that overlap it at all, and the best
    /// such IoU. `(0, 0.0)` for an isolated box. Boxes of the excluded
    /// track itself never count, so a track with several boxes in one
    /// frame does not crowd itself.
    pub fn crowding(&self, frame: FrameIdx, exclude: TrackId, bbox: &BBox) -> (usize, f64) {
        let mut partners = 0usize;
        let mut best = 0.0f64;
        for &(pos, ref other) in self.boxes_at(frame) {
            if self.track(pos).id == exclude {
                continue;
            }
            let iou = bbox.iou(other);
            if iou > 0.0 {
                partners += 1;
                if iou > best {
                    best = iou;
                }
            }
        }
        (partners, best)
    }

    /// The first position of track `id` inside `frame`'s
    /// [`FrameIndex::boxes_at`] slice, if the track has a box there.
    pub fn position_at(&self, frame: FrameIdx, id: TrackId) -> Option<u32> {
        let k = self.frame_keys.binary_search(&frame.get()).ok()?;
        let slice =
            &self.frame_by_id[self.frame_starts[k] as usize..self.frame_starts[k + 1] as usize];
        let at = slice.partition_point(|&(tid, _)| tid < id);
        match slice.get(at) {
            Some(&(tid, local)) if tid == id => Some(local),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(frame: u64, x: f64) -> TrackBox {
        TrackBox::new(FrameIdx(frame), BBox::new(x, 0.0, 10.0, 10.0))
    }

    fn track(id: u64, frames: &[u64]) -> Track {
        Track::with_boxes(
            TrackId(id),
            ClassId(1),
            frames.iter().map(|&f| tb(f, f as f64)).collect(),
        )
    }

    #[test]
    fn push_keeps_frame_order() {
        let mut t = Track::new(TrackId(1), ClassId(1));
        t.push(tb(5, 0.0));
        t.push(tb(2, 0.0));
        t.push(tb(9, 0.0));
        let frames: Vec<u64> = t.boxes.iter().map(|b| b.frame.get()).collect();
        assert_eq!(frames, vec![2, 5, 9]);
    }

    #[test]
    fn span_and_endpoints() {
        let t = track(1, &[10, 12, 20]);
        assert_eq!(t.first_frame(), Some(FrameIdx(10)));
        assert_eq!(t.last_frame(), Some(FrameIdx(20)));
        assert_eq!(t.span(), 11);
        assert_eq!(Track::new(TrackId(2), ClassId(1)).span(), 0);
    }

    #[test]
    fn box_at_uses_binary_search() {
        let t = track(1, &[1, 3, 5, 7]);
        assert!(t.box_at(FrameIdx(5)).is_some());
        assert!(t.box_at(FrameIdx(4)).is_none());
        assert!(t.present_at(FrameIdx(7)));
    }

    #[test]
    fn overlaps_range_boundaries() {
        let t = track(1, &[10, 20]);
        assert!(t.overlaps_range(FrameIdx(0), FrameIdx(11)));
        assert!(t.overlaps_range(FrameIdx(20), FrameIdx(21)));
        assert!(!t.overlaps_range(FrameIdx(0), FrameIdx(10)));
        assert!(!t.overlaps_range(FrameIdx(21), FrameIdx(30)));
    }

    #[test]
    fn majority_actor_votes_and_breaks_ties_deterministically() {
        let mut t = Track::new(TrackId(1), ClassId(1));
        t.push(tb(0, 0.0).with_provenance(GtObjectId(7)));
        t.push(tb(1, 0.0).with_provenance(GtObjectId(7)));
        t.push(tb(2, 0.0).with_provenance(GtObjectId(9)));
        t.push(tb(3, 0.0)); // false positive, ignored
        assert_eq!(t.majority_actor(), Some((GtObjectId(7), 2)));

        // Tie: smaller id wins.
        let mut tie = Track::new(TrackId(2), ClassId(1));
        tie.push(tb(0, 0.0).with_provenance(GtObjectId(9)));
        tie.push(tb(1, 0.0).with_provenance(GtObjectId(3)));
        assert_eq!(tie.majority_actor().unwrap().0, GtObjectId(3));
    }

    #[test]
    fn majority_actor_none_for_pure_fp_track() {
        let mut t = Track::new(TrackId(1), ClassId(1));
        t.push(tb(0, 0.0));
        assert_eq!(t.majority_actor(), None);
    }

    #[test]
    fn trackset_insert_replaces_by_id() {
        let mut s = TrackSet::new();
        s.insert(track(1, &[0]));
        s.insert(track(2, &[0, 1]));
        s.insert(track(1, &[0, 1, 2]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(TrackId(1)).unwrap().len(), 3);
    }

    #[test]
    fn trackset_require_errors_on_missing() {
        let s = TrackSet::new();
        assert_eq!(
            s.require(TrackId(4)).unwrap_err(),
            TmError::UnknownTrack(TrackId(4))
        );
    }

    #[test]
    fn relabel_merges_and_sorts() {
        let s = TrackSet::from_tracks(vec![track(1, &[0, 1]), track(2, &[5, 6]), track(3, &[3])]);
        let mut map = HashMap::new();
        map.insert(TrackId(2), TrackId(1));
        map.insert(TrackId(3), TrackId(1));
        let out = s.relabeled(&map);
        assert_eq!(out.len(), 1);
        let t = out.get(TrackId(1)).unwrap();
        let frames: Vec<u64> = t.boxes.iter().map(|b| b.frame.get()).collect();
        assert_eq!(frames, vec![0, 1, 3, 5, 6]);
    }

    #[test]
    fn relabel_identity_preserves_everything() {
        let s = TrackSet::from_tracks(vec![track(1, &[0]), track(2, &[4])]);
        let out = s.relabeled(&HashMap::new());
        assert_eq!(out.len(), 2);
        assert_eq!(out.total_boxes(), 2);
    }

    #[test]
    fn overlapping_range_filters() {
        let s = TrackSet::from_tracks(vec![track(1, &[0, 5]), track(2, &[100, 110])]);
        let hits: Vec<TrackId> = s
            .overlapping_range(FrameIdx(0), FrameIdx(50))
            .map(|t| t.id)
            .collect();
        assert_eq!(hits, vec![TrackId(1)]);
    }

    mod frame_index {
        use super::*;
        use proptest::prelude::*;

        #[test]
        fn boxes_at_preserves_insertion_order() {
            let s =
                TrackSet::from_tracks(vec![track(9, &[0, 1]), track(2, &[1, 2]), track(5, &[1])]);
            let idx = s.frame_index();
            let at1: Vec<TrackId> = idx
                .boxes_at(FrameIdx(1))
                .iter()
                .map(|&(pos, _)| idx.track(pos).id)
                .collect();
            assert_eq!(at1, vec![TrackId(9), TrackId(2), TrackId(5)]);
            assert!(idx.boxes_at(FrameIdx(7)).is_empty());
            assert_eq!(idx.max_frame(), Some(FrameIdx(2)));
        }

        #[test]
        fn position_at_finds_first_duplicate() {
            // One track with two boxes in the same frame: position_at must
            // return the first, like the linear scans it replaces.
            let mut t = track(3, &[4]);
            t.boxes.push(tb(4, 50.0));
            let s = TrackSet::from_tracks(vec![track(1, &[4]), t]);
            let idx = s.frame_index();
            assert_eq!(idx.position_at(FrameIdx(4), TrackId(3)), Some(1));
            assert_eq!(idx.position_at(FrameIdx(4), TrackId(1)), Some(0));
            assert_eq!(idx.position_at(FrameIdx(4), TrackId(9)), None);
            assert_eq!(idx.position_at(FrameIdx(5), TrackId(1)), None);
        }

        #[test]
        fn empty_set_and_empty_tracks() {
            let idx_owner = TrackSet::new();
            let idx = idx_owner.frame_index();
            let mut out = Vec::new();
            idx.overlapping_positions(FrameIdx(0), FrameIdx(100), &mut out);
            assert!(out.is_empty());
            assert_eq!(idx.max_frame(), None);

            let s = TrackSet::from_tracks(vec![Track::new(TrackId(1), ClassId(1))]);
            let idx = s.frame_index();
            idx.overlapping_positions(FrameIdx(0), FrameIdx(100), &mut out);
            assert!(out.is_empty(), "empty tracks never overlap a range");
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The interval query returns exactly the tracks the naive
            /// linear filter returns, in the same (insertion) order.
            #[test]
            fn overlapping_positions_equal_linear_filter(
                spans in proptest::collection::vec(
                    (0u64..200, 0u64..40, any::<bool>()), 0..20),
                start in 0u64..220,
                len in 0u64..80,
            ) {
                let tracks: Vec<Track> = spans
                    .iter()
                    .enumerate()
                    .map(|(i, &(first, span, empty))| {
                        let frames: Vec<u64> = if empty {
                            Vec::new()
                        } else {
                            (first..=first + span).collect()
                        };
                        track(i as u64 + 1, &frames)
                    })
                    .collect();
                let s = TrackSet::from_tracks(tracks);
                let idx = s.frame_index();
                let (start, end) = (FrameIdx(start), FrameIdx(start + len));
                let mut out = Vec::new();
                idx.overlapping_positions(start, end, &mut out);
                let got: Vec<TrackId> = out.iter().map(|&p| idx.track(p).id).collect();
                let expected: Vec<TrackId> =
                    s.overlapping_range(start, end).map(|t| t.id).collect();
                prop_assert_eq!(got, expected);
            }

            /// Per-frame lookups agree with scanning every track.
            #[test]
            fn per_frame_queries_equal_linear_scan(
                spans in proptest::collection::vec((0u64..50, 0u64..10), 0..12),
                frame in 0u64..60,
            ) {
                let tracks: Vec<Track> = spans
                    .iter()
                    .enumerate()
                    .map(|(i, &(first, span))| {
                        let frames: Vec<u64> = (first..=first + span).collect();
                        track(i as u64 + 1, &frames)
                    })
                    .collect();
                let s = TrackSet::from_tracks(tracks);
                let idx = s.frame_index();
                let frame = FrameIdx(frame);
                let expected: Vec<(TrackId, BBox)> = s
                    .iter()
                    .flat_map(|t| {
                        t.boxes
                            .iter()
                            .filter(|b| b.frame == frame)
                            .map(|b| (t.id, b.bbox))
                    })
                    .collect();
                let got: Vec<(TrackId, BBox)> = idx
                    .boxes_at(frame)
                    .iter()
                    .map(|&(pos, b)| (idx.track(pos).id, b))
                    .collect();
                prop_assert_eq!(&got, &expected);
                for t in s.iter() {
                    let naive = got.iter().position(|&(id, _)| id == t.id);
                    prop_assert_eq!(
                        idx.position_at(frame, t.id).map(|p| p as usize),
                        naive
                    );
                }
            }
        }
    }
}
