//! MOTChallenge text-format interop.
//!
//! The MOT-16/17/20 benchmarks exchange tracking results as CSV lines
//!
//! ```text
//! <frame>,<id>,<bb_left>,<bb_top>,<bb_width>,<bb_height>,<conf>,<x>,<y>,<z>
//! ```
//!
//! with 1-based frames and `-1` in the unused trailing fields. This module
//! parses and writes that format, so tracker output produced by real
//! MOT-17 pipelines (or this repository's own trackers) can round-trip
//! through files and be fed to TMerge.
//!
//! Parsing is tolerant of the common variations: ground-truth files carry
//! `<conf>,<class>,<visibility>` in the trailing columns (the visibility is
//! preserved into [`crate::TrackBox::visibility`]), comment lines starting
//! with `#` are skipped, and both comma and space separators are accepted.

use crate::{BBox, ClassId, FrameIdx, Result, TmError, Track, TrackBox, TrackId, TrackSet};
use std::collections::BTreeMap;

/// Parses MOTChallenge-format text into a [`TrackSet`].
///
/// `class` is assigned to every track (the det/result format does not
/// carry a class; GT files carry one but benchmarks filter to pedestrians
/// before evaluation anyway).
pub fn parse_motchallenge(text: &str, class: ClassId) -> Result<TrackSet> {
    let mut per_track: BTreeMap<TrackId, Track> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = if line.contains(',') {
            line.split(',').map(str::trim).collect()
        } else {
            line.split_whitespace().collect()
        };
        if fields.len() < 6 {
            return Err(TmError::invalid(
                "motchallenge",
                format!(
                    "line {}: expected ≥6 fields, got {}",
                    lineno + 1,
                    fields.len()
                ),
            ));
        }
        let num = |i: usize| -> Result<f64> {
            fields[i].parse::<f64>().map_err(|_| {
                TmError::invalid(
                    "motchallenge",
                    format!(
                        "line {}: field {} (`{}`) is not a number",
                        lineno + 1,
                        i + 1,
                        fields[i]
                    ),
                )
            })
        };
        let frame = num(0)?;
        if frame < 1.0 {
            return Err(TmError::invalid(
                "motchallenge",
                format!("line {}: frames are 1-based", lineno + 1),
            ));
        }
        let id = num(1)?;
        let (x, y, w, h) = (num(2)?, num(3)?, num(4)?, num(5)?);
        let conf = if fields.len() > 6 { num(6)? } else { 1.0 };
        // GT layout: frame,id,x,y,w,h,conf/active,class,visibility.
        let visibility = if fields.len() > 8 {
            num(8)?.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let tid = TrackId(id as u64);
        let tb = TrackBox::new(FrameIdx(frame as u64 - 1), BBox::new(x, y, w, h))
            .with_confidence(conf.clamp(0.0, 1.0))
            .with_visibility(visibility);
        per_track
            .entry(tid)
            .or_insert_with(|| Track::new(tid, class))
            .push(tb);
    }
    Ok(per_track.into_values().collect())
}

/// Writes a [`TrackSet`] as MOTChallenge result lines (1-based frames,
/// `-1,-1,-1` world coordinates), sorted by frame then id — the order the
/// benchmark devkit expects.
pub fn write_motchallenge(tracks: &TrackSet) -> String {
    let mut rows: Vec<(u64, u64, String)> = Vec::new();
    for t in tracks.iter() {
        for b in &t.boxes {
            rows.push((
                b.frame.get() + 1,
                t.id.get(),
                format!(
                    "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},-1,-1,-1",
                    b.frame.get() + 1,
                    t.id.get(),
                    b.bbox.x,
                    b.bbox.y,
                    b.bbox.w,
                    b.bbox.h,
                    b.confidence
                ),
            ));
        }
    }
    rows.sort();
    let mut out = String::with_capacity(rows.len() * 48);
    for (_, _, line) in rows {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::classes;

    const SAMPLE: &str = "\
1,1,912.0,484.0,97.0,109.0,0.9,-1,-1,-1
2,1,912.0,484.0,97.0,109.0,0.8,-1,-1,-1
1,2,100.0,200.0,50.0,120.0,0.7,-1,-1,-1
";

    #[test]
    fn parses_result_format() {
        let ts = parse_motchallenge(SAMPLE, classes::PEDESTRIAN).unwrap();
        assert_eq!(ts.len(), 2);
        let t1 = ts.get(TrackId(1)).unwrap();
        assert_eq!(t1.len(), 2);
        // Frames converted to 0-based.
        assert_eq!(t1.first_frame(), Some(FrameIdx(0)));
        assert_eq!(t1.boxes[0].bbox, BBox::new(912.0, 484.0, 97.0, 109.0));
        assert!((t1.boxes[1].confidence - 0.8).abs() < 1e-9);
    }

    #[test]
    fn parses_gt_format_with_visibility() {
        let gt = "1,7,10,20,30,40,1,1,0.45\n";
        let ts = parse_motchallenge(gt, classes::PEDESTRIAN).unwrap();
        let t = ts.get(TrackId(7)).unwrap();
        assert!((t.boxes[0].visibility - 0.45).abs() < 1e-9);
    }

    #[test]
    fn skips_comments_and_blank_lines_and_accepts_spaces() {
        let text = "# header\n\n1 3 0 0 10 10 1.0\n";
        let ts = parse_motchallenge(text, classes::PEDESTRIAN).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts.get(TrackId(3)).is_some());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_motchallenge("1,2,3", classes::PEDESTRIAN).is_err());
        assert!(parse_motchallenge("0,1,0,0,10,10,1", classes::PEDESTRIAN).is_err());
        assert!(parse_motchallenge("1,x,0,0,10,10,1", classes::PEDESTRIAN).is_err());
    }

    #[test]
    fn write_then_parse_round_trips() {
        let original = parse_motchallenge(SAMPLE, classes::PEDESTRIAN).unwrap();
        let text = write_motchallenge(&original);
        let back = parse_motchallenge(&text, classes::PEDESTRIAN).unwrap();
        assert_eq!(back.len(), original.len());
        for t in original.iter() {
            let rt = back.get(t.id).unwrap();
            assert_eq!(rt.len(), t.len());
            for (a, b) in t.boxes.iter().zip(&rt.boxes) {
                assert_eq!(a.frame, b.frame);
                assert!((a.bbox.x - b.bbox.x).abs() < 0.01);
                assert!((a.bbox.w - b.bbox.w).abs() < 0.01);
            }
        }
    }

    #[test]
    fn output_is_frame_sorted() {
        let ts = parse_motchallenge(SAMPLE, classes::PEDESTRIAN).unwrap();
        let text = write_motchallenge(&ts);
        let frames: Vec<u64> = text
            .lines()
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .collect();
        let mut sorted = frames.clone();
        sorted.sort();
        assert_eq!(frames, sorted);
    }
}
