//! Strongly-typed identifiers.
//!
//! Newtypes keep the many integer identity spaces in this system from being
//! confused with one another: frame indices, tracker-assigned track IDs,
//! simulator-assigned ground-truth object IDs and object class IDs are all
//! distinct types that only convert explicitly.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Wraps a raw value.
            pub const fn new(v: $inner) -> Self {
                Self(v)
            }

            /// Unwraps to the raw value.
            pub const fn get(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Zero-based index of a frame within a video or stream.
    FrameIdx,
    u64,
    "f"
);

id_newtype!(
    /// A tracking identifier (TID) assigned by a tracking algorithm.
    ///
    /// Distinct [`TrackId`]s *should* mean distinct physical objects; the
    /// track-fragmentation problem is precisely that a single object ends up
    /// with several TIDs — the polyonymous tracks TMerge identifies.
    TrackId,
    u64,
    "t"
);

id_newtype!(
    /// A ground-truth object identity assigned by the world simulator.
    ///
    /// This is the hidden variable trackers try to recover. It is carried as
    /// a simulation side-channel on detections and track boxes for use by
    /// the ReID simulator and the evaluation metrics only — trackers and the
    /// merging algorithms never consult it.
    GtObjectId,
    u64,
    "g"
);

id_newtype!(
    /// An object class (pedestrian, car, ...).
    ClassId,
    u16,
    "c"
);

impl FrameIdx {
    /// The frame `n` steps later.
    pub const fn plus(self, n: u64) -> FrameIdx {
        FrameIdx(self.0 + n)
    }

    /// Signed distance in frames from `other` to `self`.
    pub fn delta(self, other: FrameIdx) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

/// Per-camera [`TrackId`] namespace stride for cross-camera (global)
/// identity resolution.
///
/// A fleet of cameras each assigns local track ids independently; the
/// global merging layer works over the disjoint union of those id
/// spaces, mapping local id `t` of camera `c` to
/// `c * CAMERA_STRIDE + t`. Camera `0`'s namespace is the identity map,
/// so a single-camera deployment sees exactly its local ids. Local ids
/// must stay below the stride (2⁴⁰ ≈ 10¹²; synthetic and real trackers
/// are far below it).
pub const CAMERA_STRIDE: u64 = 1 << 40;

impl TrackId {
    /// This local id lifted into camera `camera`'s global namespace.
    pub const fn in_camera(self, camera: u64) -> TrackId {
        TrackId(camera * CAMERA_STRIDE + self.0)
    }

    /// The camera index encoded in a global (namespaced) id.
    pub const fn camera(self) -> u64 {
        self.0 / CAMERA_STRIDE
    }

    /// The camera-local id encoded in a global (namespaced) id.
    pub const fn local(self) -> TrackId {
        TrackId(self.0 % CAMERA_STRIDE)
    }
}

/// Well-known class IDs used by the synthetic scenarios.
pub mod classes {
    use super::ClassId;

    /// A person on foot (MOT-17 / PathTrack style scenes).
    pub const PEDESTRIAN: ClassId = ClassId(1);
    /// A passenger car (KITTI style scenes).
    pub const CAR: ClassId = ClassId(2);
    /// A cyclist.
    pub const CYCLIST: ClassId = ClassId(3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(FrameIdx(7).to_string(), "f7");
        assert_eq!(TrackId(3).to_string(), "t3");
        assert_eq!(GtObjectId(9).to_string(), "g9");
        assert_eq!(ClassId(1).to_string(), "c1");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(TrackId(2) < TrackId(10));
        assert!(FrameIdx(0) < FrameIdx(1));
    }

    #[test]
    fn frame_arithmetic() {
        assert_eq!(FrameIdx(5).plus(3), FrameIdx(8));
        assert_eq!(FrameIdx(5).delta(FrameIdx(8)), -3);
        assert_eq!(FrameIdx(8).delta(FrameIdx(5)), 3);
    }

    #[test]
    fn camera_namespacing_round_trips() {
        let t = TrackId(12_345);
        let g = t.in_camera(7);
        assert_eq!(g.camera(), 7);
        assert_eq!(g.local(), t);
        // Camera 0 is the identity namespace.
        assert_eq!(t.in_camera(0), t);
        // Distinct cameras never collide.
        assert_ne!(t.in_camera(1), t.in_camera(2));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property; this test documents the intent.
        let t = TrackId(1);
        let g = GtObjectId(1);
        assert_eq!(t.get(), g.get());
    }

    #[test]
    #[ignore = "needs real serde_json: the offline stub under stubs/serde_json only \
                typechecks (to_string returns \"{}\"), so transparent newtype JSON \
                cannot be observed; re-enable when building against crates.io"]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&TrackId(42)).unwrap();
        assert_eq!(json, "42");
        let back: TrackId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TrackId(42));
    }
}
