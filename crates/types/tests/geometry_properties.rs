//! Property tests for the geometry layer.

use proptest::prelude::*;
use tm_types::{BBox, Point};

fn bbox_strategy() -> impl Strategy<Value = BBox> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        0.0f64..300.0,
        0.0f64..300.0,
    )
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

proptest! {
    #[test]
    fn iou_is_symmetric_and_bounded(a in bbox_strategy(), b in bbox_strategy()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab), "iou {ab}");
    }

    #[test]
    fn iou_with_self_is_one_for_nonempty(a in bbox_strategy()) {
        if a.area() > 0.0 {
            prop_assert!((a.iou(&a) - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(a.iou(&a), 0.0);
        }
    }

    #[test]
    fn intersection_area_at_most_either_area(a in bbox_strategy(), b in bbox_strategy()) {
        let inter = a.intersection_area(&b);
        prop_assert!(inter <= a.area() + 1e-9);
        prop_assert!(inter <= b.area() + 1e-9);
        prop_assert!(inter >= 0.0);
    }

    #[test]
    fn union_rect_contains_both(a in bbox_strategy(), b in bbox_strategy()) {
        let u = a.union_rect(&b);
        for bx in [&a, &b] {
            prop_assert!(u.x <= bx.x + 1e-9);
            prop_assert!(u.y <= bx.y + 1e-9);
            prop_assert!(u.x2() >= bx.x2() - 1e-9);
            prop_assert!(u.y2() >= bx.y2() - 1e-9);
        }
    }

    #[test]
    fn coverage_is_bounded(a in bbox_strategy(), b in bbox_strategy()) {
        let c = a.coverage_by(&b);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn clip_never_grows(a in bbox_strategy(), vp in bbox_strategy()) {
        if let Some(c) = a.clip_to(&vp) {
            prop_assert!(c.area() <= a.area() + 1e-9);
            prop_assert!(c.area() <= vp.area() + 1e-9);
            // The clipped box is inside both.
            prop_assert!(c.x >= a.x - 1e-9 && c.x2() <= a.x2() + 1e-9);
            prop_assert!(c.x >= vp.x - 1e-9 && c.x2() <= vp.x2() + 1e-9);
        }
    }

    #[test]
    fn cxcysr_round_trip(a in bbox_strategy()) {
        prop_assume!(a.w > 0.1 && a.h > 0.1);
        let back = BBox::from_cxcysr(a.to_cxcysr());
        prop_assert!((back.x - a.x).abs() < 1e-6);
        prop_assert!((back.y - a.y).abs() < 1e-6);
        prop_assert!((back.w - a.w).abs() < 1e-6);
        prop_assert!((back.h - a.h).abs() < 1e-6);
    }

    #[test]
    fn point_distance_triangle_inequality(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0,
        cx in -100.0f64..100.0, cy in -100.0f64..100.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }
}
