//! # tm-detect
//!
//! A detection simulator that turns exact [`tm_synth::GroundTruth`] into the
//! noisy per-frame [`Detection`] streams a CNN detector would produce.
//!
//! The failure modes that matter for the paper are reproduced explicitly:
//!
//! * **Occlusion-driven miss streaks** — detection probability collapses
//!   once visibility drops below a threshold, so an actor passing behind an
//!   occluder goes undetected for a contiguous run of frames. When that run
//!   exceeds a tracker's patience (`max_age`), the track is terminated and
//!   the actor re-appears under a new TID: the paper's *track
//!   fragmentation*.
//! * **Glare-driven misses** — inside a glare event, detection probability
//!   drops further, producing the "object glaze" fragmentation cause the
//!   paper describes.
//! * **Localization noise** — detected boxes jitter around the true visible
//!   box in position and size.
//! * **False positives** — spurious boxes appear at a configurable rate.
//!
//! Everything is seeded and deterministic.
//!
//! ```
//! use tm_detect::{Detector, DetectorConfig};
//! use tm_synth::{Scenario, SceneConfig, ActorSpec, MotionModel};
//! use tm_types::{ids::classes, FrameIdx, GtObjectId, Point};
//!
//! let mut scenario = Scenario::new(SceneConfig::new(1000.0, 800.0, 60), 7);
//! scenario.push_actor(ActorSpec::new(
//!     GtObjectId(0), classes::PEDESTRIAN, 40.0, 100.0,
//!     FrameIdx(0), FrameIdx(60),
//!     MotionModel::linear(Point::new(100.0, 400.0), 4.0, 0.0),
//! ));
//! let gt = scenario.simulate();
//! let dets = Detector::new(DetectorConfig::default()).detect(&gt, 99);
//! assert_eq!(dets.len(), 60);
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use tm_synth::GroundTruth;
use tm_types::{BBox, Detection, FrameIdx, Result, TmError};

/// Tunable error characteristics of the simulated detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Detection probability for a fully visible, glare-free object.
    pub detect_prob: f64,
    /// Visibility below which the object is essentially undetectable.
    pub min_visibility: f64,
    /// Visibility above which detection probability reaches `detect_prob`;
    /// probability ramps linearly between `min_visibility` and this value.
    pub full_visibility: f64,
    /// Multiplier applied to the detection probability under full glare
    /// (interpolated linearly in glare severity). `0.1` means a fully
    /// glared object is detected at 10% of its normal probability.
    pub glare_detect_factor: f64,
    /// Std-dev of centre jitter, as a fraction of box size (per axis).
    pub pos_jitter: f64,
    /// Std-dev of width/height jitter, as a fraction of box size.
    pub size_jitter: f64,
    /// Expected number of false-positive boxes per frame.
    pub fp_rate: f64,
    /// Std-dev of the confidence noise around the visibility-driven mean.
    pub conf_noise: f64,
}

impl Default for DetectorConfig {
    /// A good modern detector: high recall on visible objects, quick decay
    /// under occlusion — calibrated so trackers fragment at realistic rates.
    fn default() -> Self {
        Self {
            detect_prob: 0.98,
            min_visibility: 0.25,
            full_visibility: 0.6,
            glare_detect_factor: 0.08,
            pos_jitter: 0.03,
            size_jitter: 0.04,
            fp_rate: 0.03,
            conf_noise: 0.05,
        }
    }
}

impl DetectorConfig {
    /// Validates the configuration domain.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.detect_prob) {
            return Err(TmError::invalid("detect_prob", "must be in [0,1]"));
        }
        if self.min_visibility > self.full_visibility {
            return Err(TmError::invalid(
                "min_visibility",
                "must not exceed full_visibility",
            ));
        }
        if self.fp_rate < 0.0 {
            return Err(TmError::invalid("fp_rate", "must be non-negative"));
        }
        Ok(())
    }

    /// Detection probability for an object with the given visibility and
    /// glare severity.
    pub fn detection_probability(&self, visibility: f64, glare: f64) -> f64 {
        let ramp = if visibility <= self.min_visibility {
            0.0
        } else if visibility >= self.full_visibility {
            1.0
        } else {
            (visibility - self.min_visibility) / (self.full_visibility - self.min_visibility)
        };
        let glare_factor = 1.0 + (self.glare_detect_factor - 1.0) * glare.clamp(0.0, 1.0);
        (self.detect_prob * ramp * glare_factor).clamp(0.0, 1.0)
    }
}

/// The detection simulator.
#[derive(Debug, Clone)]
pub struct Detector {
    config: DetectorConfig,
}

impl Detector {
    /// Creates a detector with the given error characteristics.
    pub fn new(config: DetectorConfig) -> Self {
        Self { config }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs detection over a full ground-truth video, returning one
    /// detection list per frame. Deterministic in `(ground truth, seed)`.
    pub fn detect(&self, gt: &GroundTruth, seed: u64) -> Vec<Vec<Detection>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let viewport = gt.config().viewport();
        let pos_noise = Normal::new(0.0, 1.0).expect("unit normal");
        gt.frames()
            .iter()
            .map(|frame| {
                let mut dets = Vec::new();
                for inst in &frame.instances {
                    let Some(vb) = inst.visible_bbox else {
                        continue;
                    };
                    let p = self
                        .config
                        .detection_probability(inst.visibility, inst.glare);
                    if !rng.random_bool(p) {
                        continue;
                    }
                    // Jitter the visible box.
                    let jw = vb.w * self.config.size_jitter * pos_noise.sample(&mut rng);
                    let jh = vb.h * self.config.size_jitter * pos_noise.sample(&mut rng);
                    let jx = vb.w * self.config.pos_jitter * pos_noise.sample(&mut rng);
                    let jy = vb.h * self.config.pos_jitter * pos_noise.sample(&mut rng);
                    let c = vb.center();
                    let noisy = BBox::from_center(
                        c.x + jx,
                        c.y + jy,
                        (vb.w + jw).max(1.0),
                        (vb.h + jh).max(1.0),
                    );
                    let Some(clipped) = noisy.clip_to(&viewport) else {
                        continue;
                    };
                    let conf_mean = 0.55 + 0.45 * inst.visibility - 0.25 * inst.glare;
                    let conf = conf_mean + self.config.conf_noise * pos_noise.sample(&mut rng);
                    dets.push(Detection::of_actor(
                        frame.frame,
                        clipped,
                        conf,
                        inst.class,
                        inst.visibility,
                        inst.actor,
                    ));
                }
                self.add_false_positives(frame.frame, &viewport, &mut dets, &mut rng);
                dets
            })
            .collect()
    }

    /// Appends Poisson-ish false positives (Bernoulli splitting of the rate
    /// into two trials keeps the tail short while matching the mean).
    fn add_false_positives(
        &self,
        frame: FrameIdx,
        viewport: &BBox,
        dets: &mut Vec<Detection>,
        rng: &mut StdRng,
    ) {
        let mut remaining = self.config.fp_rate;
        while remaining > 0.0 {
            let p = remaining.min(1.0);
            remaining -= p;
            if !rng.random_bool(p) {
                continue;
            }
            let w = rng.random_range(20.0..80.0);
            let h = rng.random_range(40.0..160.0);
            let x = rng.random_range(0.0..(viewport.w - w).max(1.0));
            let y = rng.random_range(0.0..(viewport.h - h).max(1.0));
            let conf = rng.random_range(0.3..0.6);
            dets.push(Detection::false_positive(
                frame,
                BBox::new(x, y, w, h),
                conf,
                tm_types::ids::classes::PEDESTRIAN,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_synth::{ActorSpec, MotionModel, Occluder, Scenario, SceneConfig};
    use tm_types::{ids::classes, GtObjectId, Point};

    fn simple_gt(n_frames: u64) -> GroundTruth {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, n_frames), 3);
        s.push_actor(ActorSpec::new(
            GtObjectId(0),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(n_frames),
            MotionModel::linear(Point::new(100.0, 400.0), 4.0, 0.0),
        ));
        s.simulate()
    }

    #[test]
    fn default_config_is_valid() {
        DetectorConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = DetectorConfig {
            detect_prob: 1.5,
            ..DetectorConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DetectorConfig {
            min_visibility: 0.9,
            full_visibility: 0.5,
            ..DetectorConfig::default()
        };
        assert!(c.validate().is_err());
        let c = DetectorConfig {
            fp_rate: -1.0,
            ..DetectorConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn detection_probability_ramp() {
        let c = DetectorConfig::default();
        assert_eq!(c.detection_probability(0.0, 0.0), 0.0);
        assert_eq!(c.detection_probability(0.25, 0.0), 0.0);
        assert!((c.detection_probability(1.0, 0.0) - c.detect_prob).abs() < 1e-12);
        // Mid-ramp is strictly between.
        let mid = c.detection_probability(0.425, 0.0);
        assert!(mid > 0.0 && mid < c.detect_prob);
        // Glare scales it down.
        assert!(c.detection_probability(1.0, 1.0) < 0.1 * c.detect_prob + 1e-9);
    }

    #[test]
    fn detect_is_deterministic() {
        let gt = simple_gt(100);
        let d = Detector::new(DetectorConfig::default());
        assert_eq!(d.detect(&gt, 5), d.detect(&gt, 5));
    }

    #[test]
    fn visible_actor_is_detected_most_frames() {
        let gt = simple_gt(200);
        let cfg = DetectorConfig {
            fp_rate: 0.0,
            ..DetectorConfig::default()
        };
        let frames = Detector::new(cfg).detect(&gt, 1);
        let hits = frames.iter().filter(|f| !f.is_empty()).count();
        assert!(hits > 180, "only {hits}/200 frames had detections");
        // All detections attribute to the single actor.
        assert!(frames
            .iter()
            .flatten()
            .all(|d| d.provenance == Some(GtObjectId(0))));
    }

    #[test]
    fn occluded_stretch_produces_miss_streak() {
        let mut s = Scenario::new(SceneConfig::new(1000.0, 800.0, 120), 3);
        s.push_actor(ActorSpec::new(
            GtObjectId(0),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(120),
            MotionModel::linear(Point::new(50.0, 400.0), 5.0, 0.0),
        ));
        // Pillar fully covering x in [250, 400] at the actor's height.
        s.push_occluder(Occluder::static_box(BBox::new(250.0, 300.0, 150.0, 250.0)));
        let gt = s.simulate();
        let cfg = DetectorConfig {
            fp_rate: 0.0,
            ..DetectorConfig::default()
        };
        let frames = Detector::new(cfg).detect(&gt, 1);
        // While the actor centre is deep behind the pillar (x in [290,360],
        // i.e. frames 48..62) detections must vanish.
        let mid: usize = (48..62).map(|f| frames[f].len()).sum();
        assert_eq!(mid, 0, "detections while fully occluded");
        // But it is detected before and after.
        assert!(frames[..40].iter().filter(|f| !f.is_empty()).count() > 30);
        assert!(frames[80..].iter().filter(|f| !f.is_empty()).count() > 30);
    }

    #[test]
    fn false_positive_rate_is_respected() {
        let gt = simple_gt(2000);
        let cfg = DetectorConfig {
            fp_rate: 0.25,
            ..DetectorConfig::default()
        };
        let frames = Detector::new(cfg).detect(&gt, 9);
        let fps: usize = frames
            .iter()
            .flatten()
            .filter(|d| !d.is_true_positive())
            .count();
        let rate = fps as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.05, "fp rate {rate}");
    }

    #[test]
    fn detections_stay_inside_viewport() {
        let gt = simple_gt(300);
        let frames = Detector::new(DetectorConfig::default()).detect(&gt, 2);
        let vp = gt.config().viewport();
        for d in frames.iter().flatten() {
            assert!(d.bbox.x >= vp.x - 1e-9 && d.bbox.x2() <= vp.x2() + 1e-9);
            assert!(d.bbox.y >= vp.y - 1e-9 && d.bbox.y2() <= vp.y2() + 1e-9);
        }
    }

    #[test]
    fn confidence_tracks_visibility() {
        let gt = simple_gt(300);
        let cfg = DetectorConfig {
            fp_rate: 0.0,
            ..DetectorConfig::default()
        };
        let frames = Detector::new(cfg).detect(&gt, 2);
        let mean: f64 = {
            let confs: Vec<f64> = frames.iter().flatten().map(|d| d.confidence).collect();
            confs.iter().sum::<f64>() / confs.len() as f64
        };
        // Fully visible actor → confidence near 1.
        assert!(mean > 0.9, "mean confidence {mean}");
    }
}
