//! Bounded per-tenant admission: queue caps, byte quotas, token-bucket
//! rate limits.
//!
//! Every control here is **typed and deterministic**. A submission that
//! cannot be admitted gets a [`Rejected`] with a machine-readable
//! [`RejectReason`] and a `retry_after_ms` hint — never a panic, never an
//! unbounded buffer. All time is the caller's simulated clock (`now_ms`
//! arguments), so the whole admission state machine replays identically
//! under test, across thread counts, and across kill-and-resume (the
//! bucket and quota states ride the `TMSV` envelope bit-exactly as f64
//! bit patterns).

/// Per-tenant admission tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum submissions queued awaiting the next daemon cycle; a full
    /// queue rejects with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Payload-byte budget per quota window; exceeding it rejects with
    /// [`RejectReason::OverQuota`] until the window rolls.
    pub bytes_per_window: u64,
    /// Length of one quota window, in (simulated) milliseconds.
    pub quota_window_ms: f64,
    /// Token-bucket burst capacity, in submissions.
    pub rate_capacity: f64,
    /// Token refill rate, in submissions per (simulated) millisecond.
    pub rate_per_ms: f64,
    /// Fallback retry hint when no better estimate exists (queue full, or
    /// a bucket that never refills).
    pub retry_hint_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_queue: 8,
            bytes_per_window: 1 << 20,
            quota_window_ms: 1_000.0,
            rate_capacity: 16.0,
            rate_per_ms: 0.05,
            retry_hint_ms: 100,
        }
    }
}

/// Why a submission was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's pending queue is at `max_queue`.
    QueueFull,
    /// The tenant exhausted `bytes_per_window` for the current window.
    OverQuota,
    /// The tenant's token bucket is empty.
    RateLimited,
    /// No such tenant is registered.
    UnknownTenant,
    /// The tenant owns no such stream index.
    UnknownStream,
    /// `frames` moved backwards relative to the stream's watermark.
    FrameRegression,
    /// The payload failed `TrackSet::validate`.
    InvalidPayload,
}

/// A typed refusal: what went wrong and when retrying might succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// The refusal class.
    pub reason: RejectReason,
    /// Hint: simulated milliseconds after which a retry may be admitted.
    /// Zero means "after the next daemon cycle".
    pub retry_after_ms: u64,
}

/// The outcome of a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued for the next daemon cycle.
    Admitted,
    /// Turned away; see the reason and retry hint.
    Rejected(Rejected),
}

impl Admission {
    /// True for [`Admission::Admitted`].
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted)
    }
}

/// A deterministic token bucket over the caller's simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TokenBucket {
    pub(crate) tokens: f64,
    pub(crate) last_ms: f64,
}

impl TokenBucket {
    pub(crate) fn full(config: &AdmissionConfig) -> Self {
        Self {
            tokens: config.rate_capacity,
            last_ms: 0.0,
        }
    }

    /// Refills for elapsed time, then tries to take one token. On refusal
    /// returns the milliseconds until one token will be available.
    pub(crate) fn try_take(&mut self, now_ms: f64, config: &AdmissionConfig) -> Result<(), u64> {
        if now_ms > self.last_ms {
            self.tokens = (self.tokens + (now_ms - self.last_ms) * config.rate_per_ms)
                .min(config.rate_capacity);
            self.last_ms = now_ms;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if config.rate_per_ms > 0.0 {
            Err(((1.0 - self.tokens) / config.rate_per_ms).ceil() as u64)
        } else {
            Err(config.retry_hint_ms)
        }
    }
}

/// A rolling byte-quota window over the caller's simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct QuotaWindow {
    pub(crate) window_start_ms: f64,
    pub(crate) used: u64,
}

impl QuotaWindow {
    pub(crate) fn fresh() -> Self {
        Self {
            window_start_ms: 0.0,
            used: 0,
        }
    }

    /// Rolls the window if it elapsed, then tries to charge `bytes`. On
    /// refusal returns the milliseconds until the window rolls.
    pub(crate) fn try_charge(
        &mut self,
        now_ms: f64,
        bytes: u64,
        config: &AdmissionConfig,
    ) -> Result<(), u64> {
        if config.quota_window_ms > 0.0 && now_ms - self.window_start_ms >= config.quota_window_ms {
            // Deterministic roll to the window containing `now`.
            let elapsed = ((now_ms - self.window_start_ms) / config.quota_window_ms).floor();
            self.window_start_ms += elapsed * config.quota_window_ms;
            self.used = 0;
        }
        if self.used.saturating_add(bytes) <= config.bytes_per_window {
            self.used += bytes;
            Ok(())
        } else {
            let until = self.window_start_ms + config.quota_window_ms - now_ms;
            Err(until.max(0.0).ceil() as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            max_queue: 2,
            bytes_per_window: 100,
            quota_window_ms: 50.0,
            rate_capacity: 2.0,
            rate_per_ms: 0.1,
            retry_hint_ms: 33,
        }
    }

    #[test]
    fn bucket_limits_bursts_and_refills_deterministically() {
        let c = config();
        let mut b = TokenBucket::full(&c);
        assert!(b.try_take(0.0, &c).is_ok());
        assert!(b.try_take(0.0, &c).is_ok());
        let wait = b.try_take(0.0, &c).unwrap_err();
        assert_eq!(wait, 10, "1 token at 0.1/ms is 10ms away");
        // Refilled exactly after the hinted wait.
        assert!(b.try_take(10.0, &c).is_ok());
        // Replaying the same clock gives the same decisions.
        let mut b2 = TokenBucket::full(&c);
        for (t, want) in [(0.0, true), (0.0, true), (0.0, false), (10.0, true)] {
            assert_eq!(b2.try_take(t, &c).is_ok(), want);
        }
    }

    #[test]
    fn zero_refill_bucket_falls_back_to_the_hint() {
        let c = AdmissionConfig {
            rate_capacity: 1.0,
            rate_per_ms: 0.0,
            ..config()
        };
        let mut b = TokenBucket::full(&c);
        assert!(b.try_take(0.0, &c).is_ok());
        assert_eq!(b.try_take(1_000.0, &c).unwrap_err(), 33);
    }

    #[test]
    fn quota_window_charges_rolls_and_hints() {
        let c = config();
        let mut q = QuotaWindow::fresh();
        assert!(q.try_charge(0.0, 60, &c).is_ok());
        assert!(q.try_charge(10.0, 40, &c).is_ok());
        let wait = q.try_charge(20.0, 1, &c).unwrap_err();
        assert_eq!(wait, 30, "window rolls at 50ms");
        // After the roll the budget is back, aligned to window boundaries.
        assert!(q.try_charge(55.0, 100, &c).is_ok());
        assert_eq!(q.window_start_ms, 50.0);
        // An oversized single payload is refused even on a fresh window.
        let mut q2 = QuotaWindow::fresh();
        assert!(q2.try_charge(0.0, 101, &c).is_err());
    }
}
