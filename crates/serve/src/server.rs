//! The daemon loop: tenant registry, admission, backpressure, retention.
//!
//! [`TmServe`] owns a [`FleetIngester`] per tenant and drives them all
//! from one deterministic cycle function, [`TmServe::run_once`]. Time is
//! the caller's simulated clock — the daemon has no threads, no wall
//! clock, no RNG — so an entire multi-tenant chaos soak replays
//! bit-identically, and killing the process between cycles and resuming
//! from the `TMSV` envelope (see [`crate::codec`]) is indistinguishable
//! from never having died.
//!
//! ## Backpressure: shed-load ≡ degraded mode
//!
//! A tenant whose windows breach the latency SLO, or whose breaker is
//! open, flips to **shed-load**: every shard decides windows on the
//! degraded spatio-temporal path (`StreamingMerger::set_shed`), advancing
//! watermarks while charging zero ReID. This is deliberately the *same*
//! machinery as a breaker-open outage — shed windows are stashed and
//! re-verified with real ReID on recovery, so a load spike degrades
//! answer freshness, never correctness. Recovery requires the cooldown to
//! elapse, the breach to clear, and every shard's backend to probe
//! healthy.

use crate::admission::{
    Admission, AdmissionConfig, QuotaWindow, RejectReason, Rejected, TokenBucket,
};
use std::collections::{BTreeMap, VecDeque};
use tm_core::fleet::FleetIngester;
use tm_core::global::{compose_global_mapping, GlobalConfig, GlobalMerger};
use tm_core::selector::CandidateSelector;
use tm_core::stream::{RetentionSummary, StreamConfig};
use tm_obs::{Level, Obs};
use tm_query::{evaluate, Query, QueryAnswer};
use tm_reid::{AppearanceModel, CostModel, Device, InferenceBackend};
use tm_types::{FrameIdx, Result, TmError, Track, TrackId, TrackSet};

fn invalid(reason: &str) -> TmError {
    TmError::invalid("serve", reason)
}

/// A tenant's registration: identity, stream count, admission tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Tenant identity (namespaces its counters as `serve.tenant.<id>.*`).
    pub id: u64,
    /// Number of camera streams the tenant owns (stream indices
    /// `0..streams`).
    pub streams: usize,
    /// Admission tuning for this tenant.
    pub admission: AdmissionConfig,
}

/// Daemon-wide tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-stream merger configuration (every tenant's shards share it).
    pub stream: StreamConfig,
    /// Per-window simulated-latency SLO; a cycle whose mean window cost
    /// exceeds this flips the tenant to shed-load mode.
    pub slo_window_ms: f64,
    /// Cycles a tenant must stay shed before recovery is considered.
    pub shed_cooldown: u64,
    /// Tiered retention horizon, in windows: shard state older than this
    /// many windows behind the cursor is compacted
    /// ([`tm_core::StreamingMerger::compact_before`]) and the retained
    /// feed pruned. `None` disables compaction (unbounded history).
    pub retention_horizon_windows: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            stream: StreamConfig::default(),
            slo_window_ms: 50.0,
            shed_cooldown: 2,
            retention_horizon_windows: None,
        }
    }
}

/// Monotonic per-tenant counters (also emitted under the tenant's obs
/// prefix; these survive kill-and-resume via the `TMSV` envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Submissions admitted to the queue.
    pub admitted: u64,
    /// Rejections, by reason.
    pub rejected_queue_full: u64,
    /// See [`RejectReason::OverQuota`].
    pub rejected_over_quota: u64,
    /// See [`RejectReason::RateLimited`].
    pub rejected_rate_limited: u64,
    /// See [`RejectReason::InvalidPayload`].
    pub rejected_invalid: u64,
    /// See [`RejectReason::FrameRegression`].
    pub rejected_regression: u64,
    /// Admitted submissions discarded at apply time because a newer
    /// submission for the stream was already applied.
    pub stale_drops: u64,
    /// Transitions into shed-load mode.
    pub shed_entries: u64,
    /// Recoveries out of shed-load mode.
    pub shed_exits: u64,
    /// Windows decided across all shards.
    pub windows: u64,
}

/// Resident-memory proxy for one tenant, for soak-test bound assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantFootprint {
    /// Pending admission-queue entries.
    pub queue_len: usize,
    /// Tracks retained across the tenant's feeds.
    pub feed_tracks: usize,
    /// Boxes retained across the tenant's feeds.
    pub feed_boxes: usize,
    /// Stashed degraded windows across shards.
    pub stash_windows: usize,
    /// Cross-window dedup pairs across shards.
    pub seen_pairs: usize,
    /// Cached ReID features across shards.
    pub cached_features: usize,
    /// Per-window decision log entries across shards.
    pub decision_entries: usize,
}

/// One admitted, not-yet-applied submission.
#[derive(Debug, Clone)]
pub(crate) struct Submission {
    pub(crate) stream: usize,
    pub(crate) tracks: TrackSet,
    pub(crate) frames: u64,
}

/// One stream's retained feed: the latest applied tracker snapshot.
#[derive(Debug, Clone, Default)]
pub(crate) struct Feed {
    pub(crate) tracks: TrackSet,
    pub(crate) frames: u64,
}

pub(crate) struct Tenant<'m, S> {
    pub(crate) spec: TenantSpec,
    pub(crate) fleet: FleetIngester<'m, S>,
    /// Cross-camera identity resolver, when enabled for this tenant. A
    /// pure overlay: it reads the same retained feeds the fleet advances
    /// on and never touches shard state, so per-stream byte-identity is
    /// unaffected.
    pub(crate) global: Option<GlobalMerger<'m, S>>,
    /// Prefixed handle (`serve.tenant.<id>.`).
    pub(crate) obs: Obs,
    pub(crate) queue: VecDeque<Submission>,
    pub(crate) feeds: Vec<Feed>,
    pub(crate) bucket: TokenBucket,
    pub(crate) quota: QuotaWindow,
    pub(crate) shed: bool,
    pub(crate) cooldown_left: u64,
    pub(crate) last_breach: bool,
    /// Per-shard simulated-clock snapshot at the end of the previous
    /// cycle, for the SLO delta.
    pub(crate) prev_elapsed_ms: Vec<f64>,
    pub(crate) stats: TenantStats,
}

/// Estimated resident payload cost of a submission, charged against the
/// tenant's byte quota (boxes dominate; 64 bytes is one `TrackBox`).
pub(crate) fn payload_bytes(tracks: &TrackSet) -> u64 {
    tracks.total_boxes() as u64 * 64 + tracks.len() as u64 * 24
}

impl<'m, S: CandidateSelector + Send> Tenant<'m, S> {
    fn reject(&mut self, reason: RejectReason, retry_after_ms: u64) -> Admission {
        let (field, name): (&mut u64, _) = match reason {
            RejectReason::QueueFull => (&mut self.stats.rejected_queue_full, "queue_full"),
            RejectReason::OverQuota => (&mut self.stats.rejected_over_quota, "over_quota"),
            RejectReason::RateLimited => (&mut self.stats.rejected_rate_limited, "rate_limited"),
            RejectReason::InvalidPayload => (&mut self.stats.rejected_invalid, "invalid"),
            RejectReason::FrameRegression => (&mut self.stats.rejected_regression, "regression"),
            // Unknown tenant/stream are counted by the caller.
            _ => (&mut self.stats.rejected_invalid, "invalid"),
        };
        *field += 1;
        self.obs.counter(&format!("admission.rejected.{name}"), 1);
        Admission::Rejected(Rejected {
            reason,
            retry_after_ms,
        })
    }

    fn submit(&mut self, now_ms: f64, stream: usize, tracks: TrackSet, frames: u64) -> Admission {
        if stream >= self.spec.streams {
            self.obs.counter("admission.rejected.unknown_stream", 1);
            return Admission::Rejected(Rejected {
                reason: RejectReason::UnknownStream,
                retry_after_ms: 0,
            });
        }
        if tracks.validate().is_err() {
            return self.reject(RejectReason::InvalidPayload, 0);
        }
        // The effective watermark includes already-queued submissions for
        // the stream, so a regression is caught at the door rather than
        // becoming a stale drop at apply time.
        let queued = self
            .queue
            .iter()
            .filter(|s| s.stream == stream)
            .map(|s| s.frames)
            .max()
            .unwrap_or(0);
        if frames < self.feeds[stream].frames.max(queued) {
            return self.reject(RejectReason::FrameRegression, 0);
        }
        if self.queue.len() >= self.spec.admission.max_queue {
            let hint = self.spec.admission.retry_hint_ms;
            return self.reject(RejectReason::QueueFull, hint);
        }
        if let Err(wait) = self.bucket.try_take(now_ms, &self.spec.admission) {
            return self.reject(RejectReason::RateLimited, wait);
        }
        let bytes = payload_bytes(&tracks);
        if let Err(wait) = self.quota.try_charge(now_ms, bytes, &self.spec.admission) {
            return self.reject(RejectReason::OverQuota, wait);
        }
        self.queue.push_back(Submission {
            stream,
            tracks,
            frames,
        });
        self.stats.admitted += 1;
        self.obs.counter("admission.admitted", 1);
        Admission::Admitted
    }

    /// One daemon cycle for this tenant: apply the queue, run the shed
    /// state machine, advance the fleet, measure the SLO, compact.
    fn run_cycle(&mut self, config: &ServeConfig) -> Result<()> {
        // 1. Apply queued submissions in arrival order; a submission made
        // stale by a later-queued, earlier-applied one is dropped (typed,
        // counted — never an error).
        while let Some(sub) = self.queue.pop_front() {
            let feed = &mut self.feeds[sub.stream];
            if sub.frames < feed.frames {
                self.stats.stale_drops += 1;
                self.obs.counter("admission.stale_drops", 1);
                continue;
            }
            feed.tracks = sub.tracks;
            feed.frames = sub.frames;
        }

        // 2. Shed state machine. Entry: last cycle breached the SLO, or
        // any shard's breaker is open. Exit: cooldown elapsed, breach
        // cleared, and every backend probes healthy — then un-shedding
        // arms stash re-verification exactly like breaker recovery.
        let n = self.spec.streams;
        let breaker_open = (0..n).any(|i| self.fleet.shard(i).breaker_open());
        if !self.shed && (self.last_breach || breaker_open) {
            self.shed = true;
            self.cooldown_left = config.shed_cooldown;
            for i in 0..n {
                self.fleet.shard_mut(i).set_shed(true);
            }
            self.stats.shed_entries += 1;
            self.obs.counter("shed.entries", 1);
            self.obs.log(Level::Warn, "entering shed-load mode");
        } else if self.shed {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0
                && !self.last_breach
                && (0..n).all(|i| self.fleet.shard_mut(i).probe_backend())
            {
                self.shed = false;
                for i in 0..n {
                    self.fleet.shard_mut(i).set_shed(false);
                }
                self.stats.shed_exits += 1;
                self.obs.counter("shed.exits", 1);
            }
        }

        // 3. Advance every shard on its retained feed.
        let refs: Vec<(&TrackSet, u64)> =
            self.feeds.iter().map(|f| (&f.tracks, f.frames)).collect();
        let decisions = self.fleet.advance(&refs)?;
        // 3b. The global overlay sees exactly the feeds the fleet saw.
        // Shed-load does not gate it: a degraded global round stashes
        // its pairs and re-verifies on recovery by itself.
        if let Some(global) = self.global.as_mut() {
            global.advance(&refs)?;
        }
        drop(refs);

        // 4. SLO: mean simulated cost per decided window, per shard.
        let mut breach = false;
        for (i, d) in decisions.iter().enumerate() {
            let elapsed = self.fleet.shard(i).elapsed_ms();
            let delta = elapsed - self.prev_elapsed_ms[i];
            self.prev_elapsed_ms[i] = elapsed;
            self.stats.windows += d.len() as u64;
            if !d.is_empty() && delta / d.len() as f64 > config.slo_window_ms {
                breach = true;
            }
        }
        if breach && !self.last_breach {
            self.obs.counter("slo.breaches", 1);
        }
        self.last_breach = breach;

        // 5. Tiered retention: compact shard state and prune feeds behind
        // the horizon. The feed keeps two extra windows of slack beyond
        // the horizon so stash re-verification and prev-window pairing
        // never reach for a pruned track.
        if let Some(h) = config.retention_horizon_windows {
            let half = config.stream.window_len / 2;
            for i in 0..n {
                let cursor = self.fleet.shard(i).next_window_index() as u64;
                if cursor <= h {
                    continue;
                }
                let horizon_start = (cursor - h) * half;
                let feed_cut = horizon_start.saturating_sub(2 * config.stream.window_len);
                let feed = &mut self.feeds[i];
                if feed_cut > 0 {
                    let kept: Vec<Track> = feed
                        .tracks
                        .iter()
                        .filter(|t| t.last_frame().is_some_and(|f| f.get() >= feed_cut))
                        .cloned()
                        .collect();
                    if kept.len() != feed.tracks.len() {
                        feed.tracks = TrackSet::from_tracks(kept);
                    }
                }
                let delta = self
                    .fleet
                    .shard_mut(i)
                    .compact_before(FrameIdx(horizon_start), &feed.tracks);
                self.obs
                    .counter("retention.compacted_windows", delta.compacted_windows);
                self.obs.counter(
                    "retention.expired_stash_windows",
                    delta.expired_stash_windows,
                );
            }
        }
        Ok(())
    }

    fn footprint(&self) -> TenantFootprint {
        let mut f = TenantFootprint {
            queue_len: self.queue.len(),
            ..TenantFootprint::default()
        };
        for feed in &self.feeds {
            f.feed_tracks += feed.tracks.len();
            f.feed_boxes += feed.tracks.total_boxes();
        }
        for i in 0..self.spec.streams {
            let shard = self.fleet.shard(i);
            f.stash_windows += shard.stash_len();
            f.seen_pairs += shard.seen_len();
            f.cached_features += shard.cached_features();
            f.decision_entries += shard.decisions().len();
        }
        f
    }
}

/// The multi-tenant ingestion daemon. See the module docs.
pub struct TmServe<'m, S> {
    pub(crate) model: &'m AppearanceModel,
    pub(crate) session_cost: CostModel,
    pub(crate) device: Device,
    pub(crate) config: ServeConfig,
    #[allow(clippy::type_complexity)]
    pub(crate) make_selector: Box<dyn FnMut(u64, usize) -> S + 'm>,
    pub(crate) tenants: BTreeMap<u64, Tenant<'m, S>>,
    /// Root (unprefixed) observability handle.
    pub(crate) base_obs: Obs,
    pub(crate) now_ms: f64,
    pub(crate) cycles: u64,
    pub(crate) rejected_unknown: u64,
}

impl<'m, S: CandidateSelector + Send> TmServe<'m, S> {
    /// An empty daemon. `make_selector(tenant, stream)` builds the
    /// selector for one shard; selectors are per-window seeded, so handing
    /// every shard an identically configured instance preserves solo-run
    /// byte-identity per stream.
    pub fn new(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        config: ServeConfig,
        make_selector: impl FnMut(u64, usize) -> S + 'm,
    ) -> Self {
        Self {
            model,
            session_cost,
            device,
            config,
            make_selector: Box::new(make_selector),
            tenants: BTreeMap::new(),
            base_obs: tm_obs::current(),
            now_ms: 0.0,
            cycles: 0,
            rejected_unknown: 0,
        }
    }

    /// The daemon-wide configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Registered tenant ids, ascending.
    pub fn tenant_ids(&self) -> Vec<u64> {
        self.tenants.keys().copied().collect()
    }

    /// Registers a tenant, building its fleet (one shard per backend)
    /// under the `serve.tenant.<id>.` observability namespace.
    /// `backends.len()` must equal `spec.streams`.
    pub fn register(
        &mut self,
        spec: TenantSpec,
        backends: &[&'m dyn InferenceBackend],
    ) -> Result<()> {
        if spec.streams == 0 {
            return Err(invalid("a tenant needs at least one stream"));
        }
        if backends.len() != spec.streams {
            return Err(invalid(
                "backend count must match the tenant's stream count",
            ));
        }
        if self.tenants.contains_key(&spec.id) {
            return Err(invalid("tenant id already registered"));
        }
        let obs = self
            .base_obs
            .with_prefix(&format!("serve.tenant.{}.", spec.id));
        let id = spec.id;
        let make = &mut self.make_selector;
        let fleet = tm_obs::scoped(obs.clone(), || {
            FleetIngester::new(
                self.model,
                self.session_cost,
                self.device,
                self.config.stream,
                |i| make(id, i),
                backends,
            )
        })?;
        self.tenants.insert(
            spec.id,
            Tenant {
                spec,
                fleet,
                global: None,
                obs,
                queue: VecDeque::new(),
                feeds: vec![Feed::default(); spec.streams],
                bucket: TokenBucket::full(&spec.admission),
                quota: QuotaWindow::fresh(),
                shed: false,
                cooldown_left: 0,
                last_breach: false,
                prev_elapsed_ms: vec![0.0; spec.streams],
                stats: TenantStats::default(),
            },
        );
        self.base_obs.counter("serve.tenants.registered", 1);
        Ok(())
    }

    /// Removes a tenant and drops all its state. Its final mapping is
    /// gone with it — query before deregistering if the answer matters.
    pub fn deregister(&mut self, tenant: u64) -> Result<()> {
        self.tenants
            .remove(&tenant)
            .ok_or_else(|| invalid("unknown tenant"))?;
        self.base_obs.counter("serve.tenants.deregistered", 1);
        Ok(())
    }

    /// Submits one tracker snapshot for `(tenant, stream)`. Never panics
    /// and never buffers beyond the tenant's queue bound: every refusal is
    /// a typed [`Rejected`] with a retry hint.
    pub fn submit(
        &mut self,
        now_ms: f64,
        tenant: u64,
        stream: usize,
        tracks: TrackSet,
        frames: u64,
    ) -> Admission {
        match self.tenants.get_mut(&tenant) {
            Some(t) => t.submit(now_ms, stream, tracks, frames),
            None => {
                self.rejected_unknown += 1;
                self.base_obs
                    .counter("serve.admission.rejected.unknown_tenant", 1);
                Admission::Rejected(Rejected {
                    reason: RejectReason::UnknownTenant,
                    retry_after_ms: 0,
                })
            }
        }
    }

    /// Runs one daemon cycle at simulated time `now_ms`: every tenant (in
    /// id order, for determinism) applies its queue, runs the shed state
    /// machine, advances its fleet, and compacts behind the retention
    /// horizon. Call between submissions; checkpoint between calls.
    pub fn run_once(&mut self, now_ms: f64) -> Result<()> {
        self.now_ms = now_ms;
        self.cycles += 1;
        self.base_obs.counter("serve.cycles", 1);
        for tenant in self.tenants.values_mut() {
            tenant.run_cycle(&self.config)?;
        }
        Ok(())
    }

    /// Answers a query against `(tenant, stream)`'s in-flight merged state
    /// — the retained feed relabeled through the shard's current mapping
    /// (provisional merges included, so queries keep working through
    /// outages and shed-load). Pure read: ingestion state other than the
    /// mapping memo is untouched.
    pub fn query(&mut self, tenant: u64, stream: usize, query: Query) -> Result<QueryAnswer> {
        let t = self
            .tenants
            .get_mut(&tenant)
            .ok_or_else(|| invalid("unknown tenant"))?;
        if stream >= t.spec.streams {
            return Err(invalid("unknown stream"));
        }
        let mapping = t.fleet.shard_mut(stream).mapping();
        let merged = t.feeds[stream].tracks.relabeled(&mapping);
        Ok(evaluate(&merged, query))
    }

    /// Whether a tenant is currently shedding load.
    pub fn is_shed(&self, tenant: u64) -> Option<bool> {
        self.tenants.get(&tenant).map(|t| t.shed)
    }

    /// A tenant's admission/lifecycle counters.
    pub fn stats(&self, tenant: u64) -> Option<TenantStats> {
        self.tenants.get(&tenant).map(|t| t.stats)
    }

    /// A tenant's resident-memory proxy, for soak-bound assertions.
    pub fn footprint(&self, tenant: u64) -> Option<TenantFootprint> {
        self.tenants.get(&tenant).map(|t| t.footprint())
    }

    /// A tenant's aggregate retention summary across shards.
    pub fn retention(&self, tenant: u64) -> Option<RetentionSummary> {
        self.tenants.get(&tenant).map(|t| {
            let mut total = RetentionSummary::default();
            for i in 0..t.spec.streams {
                let r = t.fleet.shard(i).retention();
                total.compacted_windows += r.compacted_windows;
                total.compacted_pairs += r.compacted_pairs;
                total.compacted_candidates += r.compacted_candidates;
                total.expired_stash_windows += r.expired_stash_windows;
                total.pruned_seen_pairs += r.pruned_seen_pairs;
                total.evicted_features += r.evicted_features;
            }
            total
        })
    }

    /// A tenant's fleet, for inspecting shard decisions and mappings.
    pub fn fleet(&self, tenant: u64) -> Option<&FleetIngester<'m, S>> {
        self.tenants.get(&tenant).map(|t| &t.fleet)
    }

    /// A tenant's fleet, mutably (e.g. for `StreamingMerger::mapping`).
    pub fn fleet_mut(&mut self, tenant: u64) -> Option<&mut FleetIngester<'m, S>> {
        self.tenants.get_mut(&tenant).map(|t| &mut t.fleet)
    }

    /// A tenant's retained feed for one stream: `(tracks, frames)`.
    pub fn feed(&self, tenant: u64, stream: usize) -> Option<(&TrackSet, u64)> {
        let t = self.tenants.get(&tenant)?;
        let f = t.feeds.get(stream)?;
        Some((&f.tracks, f.frames))
    }

    /// Enables cross-camera global identity resolution for a registered
    /// tenant: every subsequent cycle also advances a [`GlobalMerger`]
    /// over the tenant's retained feeds (one camera per stream). The
    /// overlay is read-only with respect to shard state, so per-stream
    /// decisions and mappings stay byte-identical to a fleet without it.
    /// Enable before the first `run_once` for a deterministic replay.
    pub fn enable_global(&mut self, tenant: u64, config: GlobalConfig) -> Result<()> {
        let t = self
            .tenants
            .get_mut(&tenant)
            .ok_or_else(|| invalid("unknown tenant"))?;
        if t.global.is_some() {
            return Err(invalid("global resolution already enabled"));
        }
        // The global selector gets the one-past-the-end stream index as
        // its slot, so its seeding is distinct from every shard's and
        // reproducible at resume.
        let selector = (self.make_selector)(t.spec.id, t.spec.streams);
        let global = tm_obs::scoped(t.obs.clone(), || {
            GlobalMerger::new(self.model, self.session_cost, self.device, selector, config)
        })?;
        t.global = Some(global);
        self.base_obs.counter("serve.tenants.global_enabled", 1);
        Ok(())
    }

    /// A tenant's global merger, if enabled.
    pub fn global(&self, tenant: u64) -> Option<&GlobalMerger<'m, S>> {
        self.tenants.get(&tenant)?.global.as_ref()
    }

    /// The tenant-wide identity mapping over namespaced global ids
    /// (stream `i`'s local ids lifted with `TrackId::in_camera(i)`):
    /// per-shard merges composed with confirmed cross-camera links.
    /// `None` when the tenant is unknown or global resolution is off.
    pub fn global_mapping(
        &mut self,
        tenant: u64,
    ) -> Option<std::collections::HashMap<TrackId, TrackId>> {
        let t = self.tenants.get_mut(&tenant)?;
        let global = t.global.as_ref()?;
        let shards: Vec<&[tm_types::TrackPair]> = (0..t.spec.streams)
            .map(|i| t.fleet.shard(i).accepted())
            .collect();
        Some(compose_global_mapping(&shards, global.accepted()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::tmerge::{TMerge, TMergeConfig};
    use tm_reid::AppearanceConfig;
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 2.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn feed() -> TrackSet {
        TrackSet::from_tracks(vec![track(1, 10, 0, 30, 0.0), track(2, 10, 80, 30, 60.0)])
    }

    fn config() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                window_len: 200,
                k: 0.1,
                gate: tm_reid::GatePolicy::Off,
                voi: tm_core::VoiMode::Off,
            },
            slo_window_ms: f64::INFINITY,
            shed_cooldown: 2,
            retention_horizon_windows: None,
        }
    }

    fn daemon<'m>(model: &'m AppearanceModel, cfg: ServeConfig) -> TmServe<'m, TMerge> {
        TmServe::new(model, CostModel::calibrated(), Device::Cpu, cfg, |_, _| {
            TMerge::new(TMergeConfig {
                tau_max: 1_500,
                seed: 4,
                ..TMergeConfig::default()
            })
        })
    }

    fn reason(a: Admission) -> Option<RejectReason> {
        match a {
            Admission::Admitted => None,
            Admission::Rejected(r) => Some(r.reason),
        }
    }

    #[test]
    fn admission_rejects_are_typed_and_counted() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut serve = daemon(&model, config());
        assert_eq!(
            reason(serve.submit(0.0, 5, 0, feed(), 100)),
            Some(RejectReason::UnknownTenant)
        );
        let backends: [&dyn InferenceBackend; 1] = [&model];
        serve
            .register(
                TenantSpec {
                    id: 5,
                    streams: 1,
                    admission: AdmissionConfig {
                        max_queue: 2,
                        ..AdmissionConfig::default()
                    },
                },
                &backends,
            )
            .unwrap();

        assert_eq!(
            reason(serve.submit(0.0, 5, 3, feed(), 100)),
            Some(RejectReason::UnknownStream)
        );
        // A non-finite box fails validation.
        let bad = TrackSet::from_tracks(vec![Track::with_boxes(
            TrackId(1),
            classes::PEDESTRIAN,
            vec![TrackBox::new(
                FrameIdx(0),
                BBox::new(f64::NAN, 0.0, 10.0, 10.0),
            )],
        )]);
        assert_eq!(
            reason(serve.submit(0.0, 5, 0, bad, 100)),
            Some(RejectReason::InvalidPayload)
        );
        assert!(serve.submit(0.0, 5, 0, feed(), 100).is_admitted());
        // A watermark regression is caught against the queued submission.
        assert_eq!(
            reason(serve.submit(0.0, 5, 0, feed(), 99)),
            Some(RejectReason::FrameRegression)
        );
        assert!(serve.submit(0.0, 5, 0, feed(), 110).is_admitted());
        let full = serve.submit(0.0, 5, 0, feed(), 120);
        match full {
            Admission::Rejected(r) => {
                assert_eq!(r.reason, RejectReason::QueueFull);
                assert!(r.retry_after_ms > 0);
            }
            Admission::Admitted => panic!("queue bound not enforced"),
        }
        let stats = serve.stats(5).unwrap();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected_queue_full, 1);
        assert_eq!(stats.rejected_invalid, 1);
        assert_eq!(stats.rejected_regression, 1);

        serve.run_once(1.0).unwrap();
        let fp = serve.footprint(5).unwrap();
        assert_eq!(fp.queue_len, 0);
        assert_eq!(serve.feed(5, 0).unwrap().1, 110, "newest snapshot applied");
    }

    #[test]
    fn rate_and_quota_limits_shed_typed_rejections() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut serve = daemon(&model, config());
        let backends: [&dyn InferenceBackend; 1] = [&model];
        serve
            .register(
                TenantSpec {
                    id: 1,
                    streams: 1,
                    admission: AdmissionConfig {
                        max_queue: 100,
                        rate_capacity: 2.0,
                        rate_per_ms: 0.01,
                        bytes_per_window: payload_bytes(&feed()) * 2,
                        quota_window_ms: 1_000.0,
                        retry_hint_ms: 7,
                    },
                },
                &backends,
            )
            .unwrap();
        let mut frames = 100;
        let mut admit = |serve: &mut TmServe<'_, TMerge>, t: f64| {
            frames += 1;
            reason(serve.submit(t, 1, 0, feed(), frames))
        };
        assert_eq!(admit(&mut serve, 0.0), None);
        assert_eq!(admit(&mut serve, 0.0), None);
        assert_eq!(admit(&mut serve, 0.0), Some(RejectReason::RateLimited));
        // Refilled after the hint, but now the byte quota is exhausted
        // until the window rolls.
        assert_eq!(admit(&mut serve, 200.0), Some(RejectReason::OverQuota));
        assert_eq!(admit(&mut serve, 1_000.0), None);
        let stats = serve.stats(1).unwrap();
        assert_eq!(stats.rejected_rate_limited, 1);
        assert_eq!(stats.rejected_over_quota, 1);
        assert_eq!(stats.admitted, 3);
    }

    #[test]
    fn slo_breach_enters_shed_and_recovery_reverifies() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        // An impossible SLO: the first decided window breaches it.
        let mut cfg = config();
        cfg.slo_window_ms = 0.0;
        let mut serve = daemon(&model, cfg);
        let backends: [&dyn InferenceBackend; 1] = [&model];
        serve
            .register(
                TenantSpec {
                    id: 2,
                    streams: 1,
                    admission: AdmissionConfig::default(),
                },
                &backends,
            )
            .unwrap();
        assert!(serve.submit(0.0, 2, 0, feed(), 250).is_admitted());
        serve.run_once(1.0).unwrap();
        assert_eq!(
            serve.is_shed(2),
            Some(false),
            "breach observed, not yet shed"
        );
        serve.run_once(2.0).unwrap();
        assert_eq!(
            serve.is_shed(2),
            Some(true),
            "breach flips the tenant to shed"
        );
        assert_eq!(serve.stats(2).unwrap().shed_entries, 1);
        // Shed windows advance on the degraded path and stay stashed; with
        // an SLO this tight the tenant never recovers.
        assert!(serve.submit(2.5, 2, 0, feed(), 450).is_admitted());
        serve.run_once(3.0).unwrap();
        assert!(serve.fleet(2).unwrap().shard(0).is_shed());

        // A sane SLO on a fresh daemon: shed never triggers, and the same
        // traffic decides windows normally.
        let mut healthy = daemon(&model, config());
        healthy
            .register(
                TenantSpec {
                    id: 2,
                    streams: 1,
                    admission: AdmissionConfig::default(),
                },
                &backends,
            )
            .unwrap();
        assert!(healthy.submit(0.0, 2, 0, feed(), 250).is_admitted());
        healthy.run_once(1.0).unwrap();
        healthy.run_once(2.0).unwrap();
        assert_eq!(healthy.is_shed(2), Some(false));
        assert_eq!(healthy.stats(2).unwrap().shed_entries, 0);
    }

    #[test]
    fn query_answers_against_in_flight_merged_state() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut serve = daemon(&model, config());
        let backends: [&dyn InferenceBackend; 1] = [&model];
        serve
            .register(
                TenantSpec {
                    id: 3,
                    streams: 1,
                    admission: AdmissionConfig::default(),
                },
                &backends,
            )
            .unwrap();
        // Two fragments of one actor: 0..=29 and 80..=109. Merged they span
        // 110 frames; apart, neither passes a min_frames of 60.
        assert!(serve.submit(0.0, 3, 0, feed(), 250).is_admitted());
        serve.run_once(1.0).unwrap();
        serve.run_once(2.0).unwrap();
        let answer = serve.query(3, 0, Query::Count { min_frames: 60 }).unwrap();
        assert_eq!(
            answer,
            QueryAnswer::Count(vec![TrackId(1)]),
            "fragments merge into one long-lived object"
        );
        assert!(serve.query(4, 0, Query::Count { min_frames: 60 }).is_err());
        assert!(serve.query(3, 9, Query::Count { min_frames: 60 }).is_err());
    }

    #[test]
    fn region_transit_queries_flow_through_the_daemon() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut serve = daemon(&model, config());
        let backends: [&dyn InferenceBackend; 1] = [&model];
        serve
            .register(
                TenantSpec {
                    id: 7,
                    streams: 1,
                    admission: AdmissionConfig::default(),
                },
                &backends,
            )
            .unwrap();
        assert!(serve.submit(0.0, 7, 0, feed(), 250).is_admitted());
        serve.run_once(1.0).unwrap();
        serve.run_once(2.0).unwrap();
        // Each fragment dwells 30 frames inside the region; only the
        // merged track clears a 40-frame dwell floor.
        let region = BBox::new(0.0, 0.0, 1000.0, 1000.0);
        let answer = serve
            .query(
                7,
                0,
                Query::RegionTransit {
                    region,
                    min_frames: 40,
                },
            )
            .unwrap();
        assert_eq!(
            answer,
            QueryAnswer::RegionTransit(vec![TrackId(1)]),
            "dwell is additive across the merged fragments"
        );
        // A region the feed never enters answers empty.
        let answer = serve
            .query(
                7,
                0,
                Query::RegionTransit {
                    region: BBox::new(5000.0, 5000.0, 10.0, 10.0),
                    min_frames: 1,
                },
            )
            .unwrap();
        assert_eq!(answer, QueryAnswer::RegionTransit(vec![]));
    }

    #[test]
    fn deregister_removes_all_tenant_state() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut serve = daemon(&model, config());
        let backends: [&dyn InferenceBackend; 1] = [&model];
        serve
            .register(
                TenantSpec {
                    id: 6,
                    streams: 1,
                    admission: AdmissionConfig::default(),
                },
                &backends,
            )
            .unwrap();
        assert!(
            serve
                .register(
                    TenantSpec {
                        id: 6,
                        streams: 1,
                        admission: AdmissionConfig::default(),
                    },
                    &backends,
                )
                .is_err(),
            "duplicate id"
        );
        serve.deregister(6).unwrap();
        assert!(serve.deregister(6).is_err());
        assert!(serve.tenant_ids().is_empty());
        assert_eq!(
            reason(serve.submit(0.0, 6, 0, feed(), 10)),
            Some(RejectReason::UnknownTenant)
        );
    }
}
