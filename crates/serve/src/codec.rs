//! The `TMSV` envelope: crash recovery for the whole daemon.
//!
//! [`TmServe::checkpoint`] serializes the daemon's complete data half —
//! tenant registry, admission-queue contents, token-bucket and quota
//! clocks (bit-exact f64s), shed state, stats, retained feeds, and each
//! tenant's fleet checkpoint (`TMFL`, which nests per-shard `TMCK`
//! blobs) — into one self-describing byte envelope. Killing the process
//! between cycles and calling [`TmServe::resume`] reconstructs a daemon
//! whose subsequent behaviour is byte-identical to never having died:
//! same decisions, same mappings, same counters, same simulated-clock
//! bits.
//!
//! The code half — appearance model, cost model, device, [`ServeConfig`],
//! selector factory, and the live backends — is the caller's to supply,
//! exactly as with [`FleetIngester::resume`]. Admission *tuning* is data
//! (each tenant's [`AdmissionConfig`] rides the envelope); daemon tuning
//! is code (the `ServeConfig` argument).
//!
//! Resume tolerates topology shrinkage, typed and observable: a tenant
//! whose backends are gone is dropped (reported in the returned list and
//! as `serve.resume.dropped_tenants`), and a tenant resumed with fewer
//! backends than it had streams keeps the surviving prefix via the
//! fleet's lenient superset resume. Growing a tenant at resume is still a
//! hard error — fresh state for a stream the checkpoint says has history
//! would silently violate byte-identity.

use crate::admission::{AdmissionConfig, QuotaWindow, TokenBucket};
use crate::server::{Feed, ServeConfig, Submission, Tenant, TenantSpec, TenantStats, TmServe};
use std::collections::{BTreeMap, VecDeque};
use tm_core::checkpoint::{put_track_set, take_track_set, Reader, Writer};
use tm_core::fleet::FleetIngester;
use tm_core::global::GlobalMerger;
use tm_core::selector::CandidateSelector;
use tm_obs::Level;
use tm_reid::{AppearanceModel, CostModel, Device, InferenceBackend};
use tm_types::{Result, TmError};

/// `"TMSV"` in big-endian ASCII.
const MAGIC: u64 = 0x544d_5356;
/// Bump on any layout change; readers reject unknown versions.
/// v2 appended each tenant's optional global-merger (`TMGL`) blob.
const VERSION: u64 = 2;

fn corrupt(reason: &str) -> TmError {
    TmError::invalid("serve-checkpoint", reason)
}

fn put_admission(w: &mut Writer, a: &AdmissionConfig) {
    w.put_u64(a.max_queue as u64);
    w.put_u64(a.bytes_per_window);
    w.put_f64(a.quota_window_ms);
    w.put_f64(a.rate_capacity);
    w.put_f64(a.rate_per_ms);
    w.put_u64(a.retry_hint_ms);
}

fn take_admission(r: &mut Reader<'_>) -> Result<AdmissionConfig> {
    Ok(AdmissionConfig {
        max_queue: r.take_u64()? as usize,
        bytes_per_window: r.take_u64()?,
        quota_window_ms: r.take_f64()?,
        rate_capacity: r.take_f64()?,
        rate_per_ms: r.take_f64()?,
        retry_hint_ms: r.take_u64()?,
    })
}

fn put_stats(w: &mut Writer, s: &TenantStats) {
    for v in [
        s.admitted,
        s.rejected_queue_full,
        s.rejected_over_quota,
        s.rejected_rate_limited,
        s.rejected_invalid,
        s.rejected_regression,
        s.stale_drops,
        s.shed_entries,
        s.shed_exits,
        s.windows,
    ] {
        w.put_u64(v);
    }
}

fn take_stats(r: &mut Reader<'_>) -> Result<TenantStats> {
    Ok(TenantStats {
        admitted: r.take_u64()?,
        rejected_queue_full: r.take_u64()?,
        rejected_over_quota: r.take_u64()?,
        rejected_rate_limited: r.take_u64()?,
        rejected_invalid: r.take_u64()?,
        rejected_regression: r.take_u64()?,
        stale_drops: r.take_u64()?,
        shed_entries: r.take_u64()?,
        shed_exits: r.take_u64()?,
        windows: r.take_u64()?,
    })
}

/// A tenant's data half, parsed off the wire before deciding whether it
/// can be revived (its fleet blob is kept as raw bytes until then).
struct TenantImage<'a> {
    spec: TenantSpec,
    bucket: TokenBucket,
    quota: QuotaWindow,
    shed: bool,
    cooldown_left: u64,
    last_breach: bool,
    prev_elapsed_ms: Vec<f64>,
    stats: TenantStats,
    feeds: Vec<Feed>,
    queue: VecDeque<Submission>,
    fleet_blob: &'a [u8],
    global_blob: Option<&'a [u8]>,
}

fn take_tenant_image<'a>(r: &mut Reader<'a>) -> Result<TenantImage<'a>> {
    let id = r.take_u64()?;
    let streams = r.take_u64()? as usize;
    if streams == 0 {
        return Err(corrupt("tenant with zero streams"));
    }
    let admission = take_admission(r)?;
    let bucket = TokenBucket {
        tokens: r.take_f64()?,
        last_ms: r.take_f64()?,
    };
    let quota = QuotaWindow {
        window_start_ms: r.take_f64()?,
        used: r.take_u64()?,
    };
    let shed = r.take_bool()?;
    let cooldown_left = r.take_u64()?;
    let last_breach = r.take_bool()?;
    let mut prev_elapsed_ms = Vec::with_capacity(streams);
    for _ in 0..streams {
        prev_elapsed_ms.push(r.take_f64()?);
    }
    let stats = take_stats(r)?;
    let mut feeds = Vec::with_capacity(streams);
    for _ in 0..streams {
        let frames = r.take_u64()?;
        let tracks = take_track_set(r)?;
        feeds.push(Feed { tracks, frames });
    }
    let queue_len = r.take_len()?;
    let mut queue = VecDeque::with_capacity(queue_len);
    for _ in 0..queue_len {
        let stream = r.take_u64()? as usize;
        if stream >= streams {
            return Err(corrupt("queued submission for an out-of-range stream"));
        }
        let frames = r.take_u64()?;
        let tracks = take_track_set(r)?;
        queue.push_back(Submission {
            stream,
            tracks,
            frames,
        });
    }
    let fleet_blob = r.take_bytes()?;
    let global_blob = if r.take_bool()? {
        Some(r.take_bytes()?)
    } else {
        None
    };
    Ok(TenantImage {
        spec: TenantSpec {
            id,
            streams,
            admission,
        },
        bucket,
        quota,
        shed,
        cooldown_left,
        last_breach,
        prev_elapsed_ms,
        stats,
        feeds,
        queue,
        fleet_blob,
        global_blob,
    })
}

impl<'m, S: CandidateSelector + Send> TmServe<'m, S> {
    /// Serializes the daemon's complete data half. Pure: emits nothing to
    /// observability and mutates nothing, so a checkpoint taken between
    /// [`TmServe::run_once`] calls leaves the run's byte-trace untouched.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.put_u64(MAGIC);
        w.put_u64(VERSION);
        w.put_f64(self.now_ms);
        w.put_u64(self.cycles);
        w.put_u64(self.rejected_unknown);
        w.put_u64(self.tenants.len() as u64);
        // BTreeMap iteration is ascending by id: the envelope layout is
        // deterministic for a given daemon state.
        for tenant in self.tenants.values() {
            w.put_u64(tenant.spec.id);
            w.put_u64(tenant.spec.streams as u64);
            put_admission(&mut w, &tenant.spec.admission);
            w.put_f64(tenant.bucket.tokens);
            w.put_f64(tenant.bucket.last_ms);
            w.put_f64(tenant.quota.window_start_ms);
            w.put_u64(tenant.quota.used);
            w.put_bool(tenant.shed);
            w.put_u64(tenant.cooldown_left);
            w.put_bool(tenant.last_breach);
            for &ms in &tenant.prev_elapsed_ms {
                w.put_f64(ms);
            }
            put_stats(&mut w, &tenant.stats);
            for feed in &tenant.feeds {
                w.put_u64(feed.frames);
                put_track_set(&mut w, &feed.tracks);
            }
            w.put_u64(tenant.queue.len() as u64);
            for sub in &tenant.queue {
                w.put_u64(sub.stream as u64);
                w.put_u64(sub.frames);
                put_track_set(&mut w, &sub.tracks);
            }
            w.put_bytes(&tenant.fleet.checkpoint());
            match &tenant.global {
                Some(global) => {
                    w.put_bool(true);
                    w.put_bytes(&global.checkpoint());
                }
                None => w.put_bool(false),
            }
        }
        w.into_bytes()
    }

    /// Reconstructs a daemon from a [`TmServe::checkpoint`] envelope.
    ///
    /// `make_selector(tenant, stream)` rebuilds selectors exactly as at
    /// construction. `backends_for(tenant, checkpointed_streams)` supplies
    /// each tenant's live backends: `None` drops the tenant (its state is
    /// discarded, its id reported in the returned list and counted as
    /// `serve.resume.dropped_tenants`); a shorter vector than
    /// `checkpointed_streams` keeps the surviving stream prefix (queued
    /// submissions for decommissioned streams are discarded); a longer one
    /// is a hard error. Corrupt or truncated bytes yield an error, never a
    /// panic.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        model: &'m AppearanceModel,
        session_cost: CostModel,
        device: Device,
        config: ServeConfig,
        make_selector: impl FnMut(u64, usize) -> S + 'm,
        mut backends_for: impl FnMut(u64, usize) -> Option<Vec<&'m dyn InferenceBackend>>,
        bytes: &[u8],
    ) -> Result<(Self, Vec<u64>)> {
        let mut r = Reader::new(bytes);
        if r.take_u64()? != MAGIC {
            return Err(corrupt("bad serve magic"));
        }
        if r.take_u64()? != VERSION {
            return Err(corrupt("unsupported serve version"));
        }
        let now_ms = r.take_f64()?;
        let cycles = r.take_u64()?;
        let rejected_unknown = r.take_u64()?;
        let n_tenants = r.take_len()?;

        let mut serve = Self::new(model, session_cost, device, config, make_selector);
        serve.now_ms = now_ms;
        serve.cycles = cycles;
        serve.rejected_unknown = rejected_unknown;

        let mut last_id: Option<u64> = None;
        let mut dropped: Vec<u64> = Vec::new();
        let mut shrunk_globals: Vec<u64> = Vec::new();
        let mut tenants: BTreeMap<u64, Tenant<'m, S>> = BTreeMap::new();
        // Backends are materialized per tenant and must outlive the fleet,
        // so collect them alongside; the Vec allocations live in the
        // tenants' fleets only as borrowed slices during construction.
        for _ in 0..n_tenants {
            let mut image = take_tenant_image(&mut r)?;
            if last_id.is_some_and(|prev| prev >= image.spec.id) {
                return Err(corrupt("tenant ids out of order"));
            }
            last_id = Some(image.spec.id);
            let Some(backends) = backends_for(image.spec.id, image.spec.streams) else {
                dropped.push(image.spec.id);
                continue;
            };
            let id = image.spec.id;
            let orig_streams = image.spec.streams;
            let obs = serve.base_obs.with_prefix(&format!("serve.tenant.{id}."));
            let make = &mut serve.make_selector;
            // Lenient prefix resume: the fleet tolerates a checkpoint with
            // more shards than backends (decommissioned streams) and
            // reports the skips itself, under this tenant's prefix.
            let fleet = tm_obs::scoped(obs.clone(), || {
                FleetIngester::resume_reporting(
                    model,
                    session_cost,
                    device,
                    |i| make(id, i),
                    &backends,
                    image.fleet_blob,
                )
            })?
            .0;
            let streams = backends.len();
            if streams < image.spec.streams {
                image.spec.streams = streams;
                image.feeds.truncate(streams);
                image.prev_elapsed_ms.truncate(streams);
                image.queue.retain(|sub| sub.stream < streams);
            }
            // The global overlay binds its camera count to the original
            // stream count; a shrunk tenant invalidates its cross-camera
            // state, so the blob is discarded (reported below, with the
            // drops, after every recorder restore has happened).
            let global = match image.global_blob {
                Some(blob) if streams == orig_streams => {
                    let selector = (serve.make_selector)(id, orig_streams);
                    Some(tm_obs::scoped(obs.clone(), || {
                        GlobalMerger::resume(model, session_cost, device, selector, blob)
                    })?)
                }
                Some(_) => {
                    shrunk_globals.push(id);
                    None
                }
                None => None,
            };
            tenants.insert(
                id,
                Tenant {
                    spec: image.spec,
                    fleet,
                    global,
                    obs,
                    queue: image.queue,
                    feeds: image.feeds,
                    bucket: image.bucket,
                    quota: image.quota,
                    shed: image.shed,
                    cooldown_left: image.cooldown_left,
                    last_breach: image.last_breach,
                    prev_elapsed_ms: image.prev_elapsed_ms,
                    stats: image.stats,
                },
            );
        }
        r.finish()?;
        serve.tenants = tenants;
        // Announce drops only after every restore: restoring a shard
        // replaces the ambient recorder's whole state, so anything emitted
        // earlier would be silently clobbered.
        if !dropped.is_empty() {
            serve
                .base_obs
                .counter("serve.resume.dropped_tenants", dropped.len() as u64);
            for id in &dropped {
                serve.base_obs.log(
                    Level::Warn,
                    &format!("serve resume: dropping tenant {id} (no backends supplied)"),
                );
            }
        }
        if !shrunk_globals.is_empty() {
            serve
                .base_obs
                .counter("serve.resume.dropped_globals", shrunk_globals.len() as u64);
            for id in &shrunk_globals {
                serve.base_obs.log(
                    Level::Warn,
                    &format!("serve resume: tenant {id} shrank; discarding its global state"),
                );
            }
        }
        Ok((serve, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::tmerge::{TMerge, TMergeConfig};
    use tm_core::StreamConfig;
    use tm_query::Query;
    use tm_reid::AppearanceConfig;
    use tm_types::{ids::classes, BBox, FrameIdx, GtObjectId, Track, TrackBox, TrackId, TrackSet};

    fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
        Track::with_boxes(
            TrackId(id),
            classes::PEDESTRIAN,
            (0..n)
                .map(|i| {
                    TrackBox::new(
                        FrameIdx(start + i as u64),
                        BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                    )
                    .with_provenance(GtObjectId(actor))
                })
                .collect(),
        )
    }

    fn feed(salt: u64) -> TrackSet {
        TrackSet::from_tracks(vec![
            track(1, 10 + salt, 0, 30, salt as f64 * 13.0),
            track(2, 10 + salt, 80, 30, 160.0 + salt as f64 * 13.0),
            track(3, 11 + salt, 0, 40, 400.0),
            track(4, 12 + salt, 60, 40, 800.0),
        ])
    }

    fn selector() -> TMerge {
        TMerge::new(TMergeConfig {
            tau_max: 1_500,
            seed: 4,
            ..TMergeConfig::default()
        })
    }

    fn serve_config() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                window_len: 200,
                k: 0.1,
                gate: tm_reid::GatePolicy::Off,
                voi: tm_core::VoiMode::Off,
            },
            slo_window_ms: f64::INFINITY,
            shed_cooldown: 2,
            retention_horizon_windows: None,
        }
    }

    fn spec(id: u64, streams: usize) -> TenantSpec {
        TenantSpec {
            id,
            streams,
            admission: AdmissionConfig::default(),
        }
    }

    /// Builds a two-tenant daemon and plays a fixed prefix of traffic.
    fn played(model: &AppearanceModel) -> TmServe<'_, TMerge> {
        let mut serve = TmServe::new(
            model,
            CostModel::calibrated(),
            Device::Cpu,
            serve_config(),
            |_, _| selector(),
        );
        let one: [&dyn InferenceBackend; 1] = [model];
        let two: [&dyn InferenceBackend; 2] = [model, model];
        serve.register(spec(7, 1), &one).unwrap();
        serve.register(spec(9, 2), &two).unwrap();
        serve
            .enable_global(9, tm_core::global::GlobalConfig::default())
            .unwrap();
        for (t, frames) in [(0.0, 250), (40.0, 400)] {
            assert!(serve.submit(t, 7, 0, feed(0), frames).is_admitted());
            assert!(serve.submit(t, 9, 0, feed(1), frames).is_admitted());
            assert!(serve.submit(t, 9, 1, feed(2), frames).is_admitted());
            serve.run_once(t + 1.0).unwrap();
        }
        serve
    }

    #[test]
    fn tmsv_roundtrips_and_continues_byte_identically() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut solo = played(&model);
        let envelope = solo.checkpoint();

        let (mut revived, dropped) = TmServe::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            serve_config(),
            |_, _| selector(),
            |_, streams| Some(vec![&model as &dyn InferenceBackend; streams]),
            &envelope,
        )
        .unwrap();
        assert!(dropped.is_empty());
        assert!(revived.global(9).is_some(), "global overlay revived");
        assert_eq!(revived.checkpoint(), envelope, "resume is a fixpoint");

        // Both daemons play identical further traffic; their envelopes
        // must stay byte-identical (decisions, mappings, counters, clock
        // bits all live inside).
        for daemon in [&mut solo, &mut revived] {
            assert!(daemon.submit(90.0, 7, 0, feed(0), 600).is_admitted());
            assert!(daemon.submit(90.0, 9, 1, feed(2), 600).is_admitted());
            daemon.run_once(91.0).unwrap();
        }
        assert_eq!(solo.checkpoint(), revived.checkpoint());
        assert_eq!(
            solo.query(9, 1, Query::Count { min_frames: 60 }).unwrap(),
            revived
                .query(9, 1, Query::Count { min_frames: 60 })
                .unwrap(),
        );
    }

    #[test]
    fn resume_drops_and_shrinks_tenants_without_backends() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let serve = played(&model);
        let envelope = serve.checkpoint();

        // Tenant 7 gone entirely; tenant 9 shrunk from 2 streams to 1.
        let (revived, dropped) = TmServe::resume(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            serve_config(),
            |_, _| selector(),
            |id, _| (id == 9).then(|| vec![&model as &dyn InferenceBackend; 1]),
            &envelope,
        )
        .unwrap();
        assert_eq!(dropped, vec![7]);
        assert_eq!(revived.tenant_ids(), vec![9]);
        // The shrunk tenant's cross-camera state is discarded, not kept
        // with a stale camera count.
        assert!(revived.global(9).is_none());
        let stats = revived.stats(9).unwrap();
        assert_eq!(stats.admitted, serve.stats(9).unwrap().admitted);
        // The surviving stream's feed is intact; stream 1 is gone.
        assert!(revived.feed(9, 0).is_some());
        assert!(revived.feed(9, 1).is_none());
    }

    #[test]
    fn corrupt_envelopes_are_clean_errors() {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let serve = played(&model);
        let envelope = serve.checkpoint();
        let resume = |bytes: &[u8]| {
            TmServe::<TMerge>::resume(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                serve_config(),
                |_, _| selector(),
                |_, streams| Some(vec![&model as &dyn InferenceBackend; streams]),
                bytes,
            )
            .map(|_| ())
        };
        assert!(resume(&[]).is_err());
        assert!(resume(&envelope[..envelope.len() / 2]).is_err());
        let mut bad = envelope.clone();
        bad[0] ^= 0xFF;
        assert!(resume(&bad).is_err());
        // Trailing garbage is rejected too.
        let mut long = envelope.clone();
        long.extend_from_slice(&[0u8; 8]);
        assert!(resume(&long).is_err());
    }
}
