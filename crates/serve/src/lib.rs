//! # tm-serve
//!
//! A crash-safe, multi-tenant ingestion daemon over the fleet layer
//! (DESIGN.md §15). Trackers `submit` snapshots; a deterministic
//! [`TmServe::run_once`] cycle admits, merges, and answers queries — all
//! on the caller's simulated clock, with zero threads, zero RNG, and zero
//! unbounded buffers of its own:
//!
//! - **Bounded admission** ([`AdmissionConfig`]): per-tenant queue caps,
//!   byte quotas, and token-bucket rate limits. Every refusal is a typed
//!   [`Rejected`] with a `retry_after_ms` hint — never a panic.
//! - **Backpressure**: SLO breaches and breaker-open backends flip a
//!   tenant to shed-load mode, which reuses the resilience layer's
//!   degraded spatio-temporal path and its stash-and-reverify recovery.
//! - **Tiered retention** ([`ServeConfig::retention_horizon_windows`]):
//!   old windows compact to their accepted merges, bounding resident
//!   state under indefinite soak.
//! - **Crash recovery**: the `TMSV` envelope ([`TmServe::checkpoint`] /
//!   [`TmServe::resume`]) wraps every tenant's fleet checkpoint plus the
//!   daemon's own registry, queues, and admission clocks; kill-and-resume
//!   is byte-identical to never having died.
//! - **Live queries** ([`TmServe::query`]): `tm-query` Count and
//!   Co-occurrence answered against the in-flight merged state,
//!   provisional merges included.
//!
//! ```
//! use tm_serve::{AdmissionConfig, ServeConfig, TenantSpec, TmServe};
//! use tm_core::{StreamConfig, TMerge, TMergeConfig};
//! use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, InferenceBackend};
//! use tm_types::TrackSet;
//!
//! let model = AppearanceModel::new(AppearanceConfig::default());
//! let mut serve = TmServe::new(
//!     &model,
//!     CostModel::calibrated(),
//!     Device::Cpu,
//!     ServeConfig::default(),
//!     |_tenant, _stream| TMerge::new(TMergeConfig::default()),
//! );
//! let backends: [&dyn InferenceBackend; 1] = [&model];
//! serve
//!     .register(
//!         TenantSpec { id: 1, streams: 1, admission: AdmissionConfig::default() },
//!         &backends,
//!     )
//!     .unwrap();
//! assert!(serve.submit(0.0, 1, 0, TrackSet::default(), 100).is_admitted());
//! serve.run_once(1.0).unwrap();
//! let envelope = serve.checkpoint(); // TMSV: survives a crash
//! assert!(!envelope.is_empty());
//! ```

pub mod admission;
pub mod codec;
pub mod server;

pub use admission::{Admission, AdmissionConfig, RejectReason, Rejected};
pub use server::{ServeConfig, TenantFootprint, TenantSpec, TenantStats, TmServe};
