//! End-to-end robustness suite for the serve layer (ISSUE 8).
//!
//! Four pillars:
//!
//! 1. **Kill-and-resume is byte-identical** — a daemon checkpointed in the
//!    middle of a camera outage (breaker open, tenant shed, stash
//!    non-empty) and resumed from its `TMSV` envelope continues exactly
//!    like the daemon that never died: same decisions, same mappings, same
//!    counters, same simulated-clock bits.
//! 2. **Retention compaction is invisible inside the horizon** — a
//!    property test drives a compacting daemon and an unbounded twin over
//!    identical traffic and checks recent decisions, mappings, and query
//!    answers agree.
//! 3. **Resident state is bounded under a 10k-window soak** — with a
//!    retention horizon configured, stash/dedup/cache/decision/feed
//!    footprints stay flat no matter how long the stream runs.
//! 4. **Tenant churn + camera outages shed load only via typed rejections
//!    or degraded windows** — and once faults clear, the surviving
//!    always-on tenant's final mapping equals a fault-free solo run.

use proptest::prelude::*;
use tm_chaos::{FaultPlan, FaultyModel, TenantChurn, TenantChurnConfig};
use tm_core::{StreamConfig, StreamingMerger, TMerge, TMergeConfig};
use tm_query::Query;
use tm_reid::{AppearanceConfig, AppearanceModel, CostModel, Device, InferenceBackend};
use tm_serve::{Admission, AdmissionConfig, RejectReason, ServeConfig, TenantSpec, TmServe};
use tm_synth::{TenantWorkload, TenantWorkloadConfig};

const WINDOW: u64 = 200; // stride 100

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: WINDOW,
        k: 0.1,
        gate: tm_reid::GatePolicy::Off,
        voi: tm_core::VoiMode::Off,
    }
}

fn serve_config(retention: Option<u64>) -> ServeConfig {
    ServeConfig {
        stream: stream_config(),
        slo_window_ms: f64::INFINITY,
        shed_cooldown: 2,
        retention_horizon_windows: retention,
    }
}

fn workload() -> TenantWorkload {
    TenantWorkload::new(TenantWorkloadConfig::default())
}

fn open_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_queue: 64,
        bytes_per_window: u64::MAX / 4,
        quota_window_ms: 1_000.0,
        rate_capacity: 1_000.0,
        rate_per_ms: 100.0,
        retry_hint_ms: 10,
    }
}

fn daemon<'m>(model: &'m AppearanceModel, config: ServeConfig) -> TmServe<'m, TMerge> {
    TmServe::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        config,
        |_, _| selector(),
    )
}

/// The CI-pinned crash-recovery test: kill mid-outage, resume from TMSV,
/// and the continuation is byte-identical to never having died.
#[test]
fn serve_kill_and_resume_is_byte_identical() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let w = workload();
    // Stream 0's camera goes hard-down for windows 2..5; stream 1 stays
    // healthy. The outage trips the breaker, which flips the tenant to
    // shed-load; the checkpoint lands in the middle of all of it.
    let faulty = FaultyModel::new(&model, FaultPlan::none().with_hard_down(2, 5));
    let healthy = FaultyModel::new(&model, FaultPlan::none());
    let backends: [&dyn InferenceBackend; 2] = [&faulty, &healthy];

    let drive = |serve: &mut TmServe<'_, TMerge>, cycles: std::ops::Range<u64>| {
        for c in cycles {
            let frames = (c + 1) * WINDOW;
            for s in 0..2u64 {
                assert!(
                    serve
                        .submit(
                            c as f64 * 10.0,
                            1,
                            s as usize,
                            w.tracks(1, s, frames),
                            frames
                        )
                        .is_admitted(),
                    "cycle {c} stream {s}"
                );
            }
            serve.run_once(c as f64 * 10.0 + 1.0).unwrap();
        }
    };

    let mut solo = daemon(&model, serve_config(None));
    solo.register(
        TenantSpec {
            id: 1,
            streams: 2,
            admission: open_admission(),
        },
        &backends,
    )
    .unwrap();
    drive(&mut solo, 0..3);

    // Mid-outage: the breaker has opened, the tenant is shedding, and
    // degraded windows sit in the stash awaiting re-verification.
    assert_eq!(solo.is_shed(1), Some(true), "outage must flip shed");
    assert!(solo.footprint(1).unwrap().stash_windows > 0);
    let envelope = solo.checkpoint();

    let (mut revived, dropped) = TmServe::resume(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        serve_config(None),
        |_, _| selector(),
        |_, _| Some(backends.to_vec()),
        &envelope,
    )
    .unwrap();
    assert!(dropped.is_empty());
    assert_eq!(revived.checkpoint(), envelope, "resume is a fixpoint");

    // Both daemons live through recovery and well past it.
    drive(&mut solo, 3..8);
    drive(&mut revived, 3..8);

    assert_eq!(solo.is_shed(1), Some(false), "tenant must recover");
    assert_eq!(solo.stats(1), revived.stats(1));
    for s in 0..2 {
        let a = solo.fleet_mut(1).unwrap();
        let mapping = a.shard_mut(s).mapping();
        let decisions = a.shard(s).decisions().to_vec();
        let accepted = a.shard(s).accepted().to_vec();
        let clock = a.shard(s).elapsed_ms().to_bits();
        let b = revived.fleet_mut(1).unwrap();
        assert_eq!(b.shard_mut(s).mapping(), mapping, "stream {s} mapping");
        assert_eq!(b.shard(s).decisions(), decisions, "stream {s} decisions");
        assert_eq!(b.shard(s).accepted(), accepted, "stream {s} merges");
        assert_eq!(
            b.shard(s).elapsed_ms().to_bits(),
            clock,
            "stream {s} clock bits"
        );
    }
    assert_eq!(
        solo.footprint(1).unwrap().stash_windows,
        0,
        "recovery re-verified the stash"
    );
    assert!(solo.stats(1).unwrap().shed_entries >= 1);
    assert!(solo.stats(1).unwrap().shed_exits >= 1);
    // The strongest claim last: the complete data halves are identical.
    assert_eq!(solo.checkpoint(), revived.checkpoint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Compaction changes what is *retained*, never what was *decided*: a
    /// compacting daemon agrees with its unbounded twin on every decision
    /// still in its log, on the mapping of every surviving track, and on
    /// query answers over the surviving feed.
    #[test]
    fn retention_compaction_is_invisible_inside_the_horizon(
        horizon in 3u64..8,
        cycles in 6u64..13,
        min_frames in 40u64..200,
    ) {
        let model = AppearanceModel::new(AppearanceConfig::default());
        let w = workload();
        let spec = TenantSpec { id: 1, streams: 1, admission: open_admission() };
        let backends: [&dyn InferenceBackend; 1] = [&model];

        let mut compacting = daemon(&model, serve_config(Some(horizon)));
        let mut unbounded = daemon(&model, serve_config(None));
        compacting.register(spec, &backends).unwrap();
        unbounded.register(spec, &backends).unwrap();

        for c in 0..cycles {
            let frames = (c + 1) * WINDOW;
            let feed = w.tracks(1, 0, frames);
            for serve in [&mut compacting, &mut unbounded] {
                prop_assert!(serve.submit(c as f64, 1, 0, feed.clone(), frames).is_admitted());
                serve.run_once(c as f64 + 0.5).unwrap();
            }
        }

        // Recent decisions are untouched by compaction.
        let a = compacting.fleet(1).unwrap().shard(0).decisions().to_vec();
        let b = unbounded.fleet(1).unwrap().shard(0).decisions().to_vec();
        prop_assert!(!a.is_empty());
        prop_assert!(b.ends_with(&a), "compacted log must be a suffix of the full log");

        // Mappings agree on every surviving track.
        let surviving = compacting.feed(1, 0).unwrap().0.clone();
        let surviving_ids: Vec<_> = surviving.iter().map(|t| t.id).collect();
        let map_a = compacting.fleet_mut(1).unwrap().shard_mut(0).mapping();
        let map_b = unbounded.fleet_mut(1).unwrap().shard_mut(0).mapping();
        for id in &surviving_ids {
            prop_assert_eq!(
                map_a.get(id).copied().unwrap_or(*id),
                map_b.get(id).copied().unwrap_or(*id),
                "mapping diverged for {:?}", id
            );
        }

        // Query answers over the surviving feed agree: the unbounded twin,
        // restricted to the tracks the compacting daemon retained, answers
        // identically.
        let answer = compacting.query(1, 0, Query::Count { min_frames }).unwrap();
        let full = unbounded.feed(1, 0).unwrap().0.clone();
        let restricted = tm_types::TrackSet::from_tracks(
            full.iter().filter(|t| surviving.get(t.id).is_some()).cloned().collect(),
        );
        let reference = tm_query::evaluate(&restricted.relabeled(&map_b), Query::Count { min_frames });
        prop_assert_eq!(answer, reference);

        // And compaction genuinely happened (otherwise this test is vacuous).
        let summary = compacting.retention(1).unwrap();
        prop_assert!(summary.compacted_windows > 0, "horizon never compacted anything");
    }
}

/// Ten thousand windows through one tenant with a retention horizon: every
/// resident-state axis stays flat. Feeds arrive as rolling snapshots
/// (`tracks_range`), the shape a real tracker produces, which keeps the
/// soak linear in total length.
///
/// Ignored by default (several minutes unoptimized); the CI `serve` job
/// runs it explicitly in release mode.
#[test]
#[ignore = "long soak; run explicitly: cargo test --release -p tm-serve -- --ignored"]
fn soak_retention_bounds_resident_state() {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let w = TenantWorkload::new(TenantWorkloadConfig {
        actors: 2,
        ..TenantWorkloadConfig::default()
    });
    const HORIZON: u64 = 6;
    const WINDOWS_PER_CYCLE: u64 = 10;
    const CYCLES: u64 = 1_000; // 10_000 windows total
    let mut serve = daemon(&model, serve_config(Some(HORIZON)));
    let backends: [&dyn InferenceBackend; 1] = [&model];
    serve
        .register(
            TenantSpec {
                id: 1,
                streams: 1,
                admission: open_admission(),
            },
            &backends,
        )
        .unwrap();

    let stride = WINDOW / 2;
    let mut max = tm_serve::TenantFootprint::default();
    for c in 0..CYCLES {
        let frames = (c + 1) * WINDOWS_PER_CYCLE * stride;
        // Rolling snapshot: well more slack than the daemon's own feed
        // retention (horizon + 2 windows), so pruning decisions stay the
        // daemon's, not the driver's.
        let lo = frames.saturating_sub((HORIZON + WINDOWS_PER_CYCLE + 8) * stride + 2 * WINDOW);
        let feed = w.tracks_range(1, 0, lo, frames);
        assert!(
            serve.submit(c as f64, 1, 0, feed, frames).is_admitted(),
            "cycle {c}"
        );
        serve.run_once(c as f64 + 0.5).unwrap();
        let fp = serve.footprint(1).unwrap();
        max.queue_len = max.queue_len.max(fp.queue_len);
        max.feed_tracks = max.feed_tracks.max(fp.feed_tracks);
        max.feed_boxes = max.feed_boxes.max(fp.feed_boxes);
        max.stash_windows = max.stash_windows.max(fp.stash_windows);
        max.seen_pairs = max.seen_pairs.max(fp.seen_pairs);
        max.cached_features = max.cached_features.max(fp.cached_features);
        max.decision_entries = max.decision_entries.max(fp.decision_entries);
    }
    // The last whole window ends at the final watermark, so the cursor
    // (the *next* undecided window) sits one short of windows-submitted.
    let shard = serve.fleet(1).unwrap().shard(0);
    assert_eq!(
        shard.next_window_index() as u64,
        CYCLES * WINDOWS_PER_CYCLE - 1
    );

    // The bounds: generous constants, but *constants* — they hold at
    // window 10_000 exactly as at window 100, which is the claim.
    assert_eq!(max.queue_len, 0, "queue drains every cycle");
    assert!(max.stash_windows <= HORIZON as usize + 2, "stash {:?}", max);
    assert!(
        max.decision_entries <= (HORIZON + WINDOWS_PER_CYCLE) as usize + 4,
        "decision log {:?}",
        max
    );
    let feed_box_bound = ((HORIZON + WINDOWS_PER_CYCLE + 8) * stride + 4 * WINDOW) as usize * 2;
    assert!(max.feed_boxes <= feed_box_bound, "feed {:?}", max);
    assert!(max.seen_pairs <= 4_000, "dedup pairs {:?}", max);
    assert!(max.cached_features <= 4_000, "feature cache {:?}", max);

    let summary = serve.retention(1).unwrap();
    assert!(summary.compacted_windows >= CYCLES * WINDOWS_PER_CYCLE - 64);
    // Live queries still answer at window 10k: each actor's recent
    // fragments merge into one long-lived object.
    let answer = serve.query(1, 0, Query::Count { min_frames: 300 }).unwrap();
    assert_eq!(answer.len(), 2, "one merged object per actor: {answer:?}");
}

/// The flagship chaos soak: tenants join, leave and burst on a seeded
/// schedule while cameras go hard-down and recover. The daemon must (a)
/// hold its configured bounds, (b) refuse work only via typed rejections
/// or degraded windows, and (c) leave the surviving always-on tenant with
/// exactly the mapping a fault-free solo run produces.
#[test]
fn churn_soak_sheds_typed_and_survivors_match_solo() {
    const TENANTS: u64 = 3;
    const STREAMS: usize = 2;
    const CHURN_CYCLES: u64 = 18;
    const SETTLE_CYCLES: u64 = 8;
    const OUTAGE_MAX_WINDOW: u64 = 24;

    let model = AppearanceModel::new(AppearanceConfig::default());
    let w = workload();
    let churn = TenantChurn::new(TenantChurnConfig {
        seed: 5,
        tenants: TENANTS,
        always_on: 1,
        epoch_cycles: 3,
        burst_rate: 0.3,
        burst_multiplier: 4,
        outage_rate: 0.5,
        outage_windows: 2,
        ..TenantChurnConfig::default()
    });

    // One faulty backend per (tenant, stream), outages confined to the
    // first OUTAGE_MAX_WINDOW windows so every camera recovers in time.
    let backends: Vec<Vec<FaultyModel<'_>>> = (0..TENANTS)
        .map(|t| {
            (0..STREAMS as u64)
                .map(|s| FaultyModel::new(&model, churn.fault_plan(t, s, OUTAGE_MAX_WINDOW)))
                .collect()
        })
        .collect();
    let outages_on_survivor: usize = backends[0].iter().map(|b| b.plan().hard_down.len()).sum();
    assert!(
        outages_on_survivor > 0,
        "seed must schedule outages for the always-on tenant"
    );

    let admission = AdmissionConfig {
        max_queue: 2 * STREAMS, // bursts overflow this by design
        ..open_admission()
    };
    let mut serve = daemon(&model, serve_config(None));
    let mut rejected = 0u64;
    let mut admitted = 0u64;
    // Applied watermark per cycle for the always-on tenant's streams,
    // recorded for the solo replay.
    let mut survivor_watermarks: Vec<u64> = Vec::new();

    for c in 0..CHURN_CYCLES + SETTLE_CYCLES {
        let churning = c < CHURN_CYCLES;
        for t in 0..TENANTS {
            if churning && churn.leaves(t, c) && serve.tenant_ids().contains(&t) {
                serve.deregister(t).unwrap();
            }
            let active = if churning { churn.active(t, c) } else { true };
            if active && !serve.tenant_ids().contains(&t) {
                let refs: Vec<&dyn InferenceBackend> = backends[t as usize]
                    .iter()
                    .map(|b| b as &dyn InferenceBackend)
                    .collect();
                serve
                    .register(
                        TenantSpec {
                            id: t,
                            streams: STREAMS,
                            admission,
                        },
                        &refs,
                    )
                    .unwrap();
            }
        }
        let frames = (c + 1) * WINDOW;
        for t in serve.tenant_ids() {
            if churning && !churn.active(t, c) {
                continue;
            }
            let burst = if churning {
                churn.burst_multiplier(t, c)
            } else {
                1
            };
            for rep in 0..burst {
                for s in 0..STREAMS {
                    let a = serve.submit(
                        c as f64 * 10.0 + rep as f64,
                        t,
                        s,
                        w.tracks(t, s as u64, frames),
                        frames,
                    );
                    match a {
                        Admission::Admitted => admitted += 1,
                        Admission::Rejected(r) => {
                            rejected += 1;
                            // (b): every refusal is typed; bursts may only
                            // overflow the queue or trip the rate limiter.
                            assert!(
                                matches!(
                                    r.reason,
                                    RejectReason::QueueFull | RejectReason::RateLimited
                                ),
                                "unexpected rejection {:?}",
                                r.reason
                            );
                        }
                    }
                }
            }
            // (a): the queue bound holds no matter how hard the burst hit.
            let fp = serve.footprint(t).unwrap();
            assert!(
                fp.queue_len <= admission.max_queue,
                "tenant {t} queue {} over bound",
                fp.queue_len
            );
        }
        serve.run_once(c as f64 * 10.0 + 9.0).unwrap();
        survivor_watermarks.push(serve.feed(0, 0).unwrap().1);
    }

    assert!(admitted > 0);
    assert!(rejected > 0, "bursts must overflow the queue somewhere");
    let stats = serve.stats(0).unwrap();
    assert!(
        stats.shed_entries >= 1,
        "the survivor's outages must have shed load: {stats:?}"
    );
    assert_eq!(
        serve.is_shed(0),
        Some(false),
        "faults cleared, tenant must recover"
    );
    assert_eq!(serve.footprint(0).unwrap().stash_windows, 0);

    // (c): the survivor's final mapping equals a fault-free solo run fed
    // the identical watermark sequence.
    for s in 0..STREAMS {
        let mut solo = StreamingMerger::new(
            &model,
            CostModel::calibrated(),
            Device::Cpu,
            selector(),
            stream_config(),
        )
        .unwrap()
        .with_backend(&model);
        for &frames in &survivor_watermarks {
            solo.advance(&w.tracks(0, s as u64, frames), frames)
                .unwrap();
        }
        let served = serve.fleet_mut(0).unwrap().shard_mut(s).mapping();
        assert_eq!(
            served,
            solo.mapping(),
            "stream {s}: survivor mapping diverged from the fault-free run"
        );
    }
}
