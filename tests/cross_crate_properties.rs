//! Cross-crate property tests: invariants that hold across the stack for
//! randomized worlds.

use proptest::prelude::*;
use tmerge::core::{build_window_pairs, merge_mapping};
use tmerge::prelude::*;

/// Builds a random small world and tracks it.
fn tracked_world(seed: u64, n_actors: usize, n_frames: u64) -> (GroundTruth, TrackSet) {
    let mut s = Scenario::new(SceneConfig::new(1200.0, 800.0, n_frames), seed);
    for i in 0..n_actors {
        let y = 400.0 + 40.0 * (i as f64);
        let ltr = i % 2 == 0;
        let speed = 2.0 + (i as f64) * 0.7;
        s.push_actor(ActorSpec::new(
            GtObjectId(i as u64),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx((i as u64 * 13) % (n_frames / 2)),
            FrameIdx(n_frames),
            MotionModel::linear(
                Point::new(if ltr { 10.0 } else { 1190.0 }, y),
                if ltr { speed } else { -speed },
                0.0,
            ),
        ));
    }
    s.push_occluder(Occluder::static_box(BBox::new(550.0, 300.0, 120.0, 500.0)));
    let gt = s.simulate();
    let dets = Detector::new(DetectorConfig::default()).detect(&gt, seed ^ 77);
    let mut tracker = Sort::new(SortConfig::default());
    let tracks = track_video(&mut tracker, &dets);
    (gt, tracks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn track_boxes_are_frame_sorted_and_in_viewport(
        seed in 0u64..50, n_actors in 1usize..6
    ) {
        let (gt, tracks) = tracked_world(seed, n_actors, 200);
        let vp = gt.config().viewport();
        for t in tracks.iter() {
            let mut prev = None;
            for b in &t.boxes {
                if let Some(p) = prev {
                    prop_assert!(b.frame > p, "boxes out of order in {}", t.id);
                }
                prev = Some(b.frame);
                prop_assert!(b.bbox.x >= vp.x - 1e-6 && b.bbox.x2() <= vp.x2() + 1e-6);
            }
        }
    }

    #[test]
    fn window_pairs_are_unique_and_canonical(
        seed in 0u64..50, n_actors in 2usize..6, window_len in 1u64..5
    ) {
        let window_len = window_len * 100; // 100..400, even
        let (_, tracks) = tracked_world(seed, n_actors, 300);
        let wps = build_window_pairs(&tracks, 300, window_len).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for w in &wps {
            for p in &w.pairs {
                prop_assert!(p.lo() < p.hi(), "non-canonical pair {p}");
                prop_assert!(seen.insert(*p), "pair {p} emitted twice");
            }
        }
    }

    #[test]
    fn merging_never_increases_identity_error(
        seed in 0u64..30
    ) {
        // Oracle merges (exact polyonymous groups) must never hurt IDF1.
        let (gt, tracks) = tracked_world(seed, 4, 300);
        let corr = Correspondence::from_tracks(&tracks, 0.5);
        let mapping = corr.oracle_merge_mapping(&tracks);
        let merged = tracks.relabeled(&mapping);
        let before = identity_metrics(&gt.gt_tracks(0.1), &tracks, 0.5);
        let after = identity_metrics(&gt.gt_tracks(0.1), &merged, 0.5);
        prop_assert!(after.idf1 >= before.idf1 - 1e-9,
            "oracle merge hurt IDF1: {} -> {}", before.idf1, after.idf1);
    }

    #[test]
    fn rec_is_monotone_in_k(seed in 0u64..20) {
        let (gt, tracks) = tracked_world(seed, 5, 300);
        let corr = Correspondence::from_tracks(&tracks, 0.5);
        let all: Vec<&Track> = tracks.iter().collect();
        let truth = corr.all_polyonymous(&all);
        prop_assume!(!truth.is_empty());
        let model = AppearanceModel::new(AppearanceConfig::default());
        let mut last = -1.0;
        for k in [0.05, 0.1, 0.3, 0.6, 1.0] {
            let config = PipelineConfig {
                window_len: 600,
                k,
                selector: SelectorKind::Baseline,
                ..PipelineConfig::default()
            };
            let report =
                run_pipeline(&tracks, gt.n_frames(), &model, &config, None).unwrap();
            let rec = recall(report.candidates.iter(), &truth);
            prop_assert!(rec + 1e-9 >= last, "REC not monotone in K");
            last = rec;
        }
        prop_assert!((last - 1.0).abs() < 1e-9, "K=1 must reach full recall");
    }

    #[test]
    fn merge_mapping_preserves_box_count(
        edges in proptest::collection::vec((1u64..20, 1u64..20), 0..15)
    ) {
        // Relabelling through any accepted pair set preserves every box.
        let tracks: TrackSet = (1..20u64)
            .map(|id| {
                Track::with_boxes(
                    TrackId(id),
                    classes::PEDESTRIAN,
                    vec![tmerge::types::TrackBox::new(
                        FrameIdx(id),
                        BBox::new(0.0, 0.0, 10.0, 10.0),
                    )],
                )
            })
            .collect();
        let pairs: Vec<TrackPair> = edges
            .into_iter()
            .filter_map(|(a, b)| TrackPair::new(TrackId(a), TrackId(b)))
            .collect();
        let mapping = merge_mapping(&pairs);
        let merged = tracks.relabeled(&mapping);
        prop_assert_eq!(merged.total_boxes(), tracks.total_boxes());
    }
}
