//! End-to-end integration: world → detector → tracker → TMerge → metrics,
//! exercised through the public umbrella API only.

use tmerge::prelude::*;

/// A scene engineered to fragment: three pedestrians, one pillar wide
/// enough to exceed every tracker's patience, plus a glare event.
fn scene(seed: u64) -> Scenario {
    let mut s = Scenario::new(SceneConfig::new(1400.0, 900.0, 400), seed);
    for (i, (y, v, x0)) in [
        (500.0, 3.5, 10.0),
        (600.0, -3.0, 1390.0),
        (700.0, 2.5, 10.0),
    ]
    .iter()
    .enumerate()
    {
        s.push_actor(ActorSpec::new(
            GtObjectId(i as u64),
            classes::PEDESTRIAN,
            40.0,
            100.0,
            FrameIdx(0),
            FrameIdx(400),
            MotionModel::linear(Point::new(*x0, *y), *v, 0.0),
        ));
    }
    s.push_occluder(Occluder::static_box(BBox::new(600.0, 380.0, 160.0, 500.0)));
    s.push_glare(GlareEvent::new(
        BBox::new(1000.0, 400.0, 300.0, 400.0),
        FrameIdx(250),
        FrameIdx(300),
        0.9,
    ));
    s
}

fn fragmented_tracks(seed: u64) -> (GroundTruth, TrackSet, AppearanceModel) {
    let gt = scene(seed).simulate();
    let detections = Detector::new(DetectorConfig::default()).detect(&gt, seed ^ 1);
    let model = AppearanceModel::new(AppearanceConfig::default());
    let mut tracker = Sort::new(SortConfig::default());
    let tracks = track_video(&mut tracker, &detections);
    (gt, tracks, model)
}

#[test]
fn occlusion_fragments_and_tmerge_repairs() {
    let (gt, tracks, model) = fragmented_tracks(3);
    let n_objects = gt.gt_tracks(0.1).len();
    assert!(
        tracks.len() > n_objects,
        "expected fragmentation: {} tracks for {} objects",
        tracks.len(),
        n_objects
    );

    let config = PipelineConfig {
        window_len: 800,
        k: 0.2,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 3_000,
            ..TMergeConfig::default()
        }),
        ..PipelineConfig::default()
    };
    let report = run_pipeline(&tracks, gt.n_frames(), &model, &config, None).unwrap();
    assert!(
        report.merged.len() < tracks.len(),
        "TMerge should have merged fragments"
    );

    // The repair improves the identity metrics against GT.
    let before = identity_metrics(&gt.gt_tracks(0.1), &tracks, 0.5);
    let after = identity_metrics(&gt.gt_tracks(0.1), &report.merged, 0.5);
    assert!(
        after.idf1 > before.idf1,
        "IDF1 {} -> {} did not improve",
        before.idf1,
        after.idf1
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let (gt, tracks_a, model) = fragmented_tracks(9);
    let (_, tracks_b, _) = fragmented_tracks(9);
    assert_eq!(tracks_a, tracks_b, "tracker output must be reproducible");

    let config = PipelineConfig {
        window_len: 800,
        k: 0.2,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 1_500,
            ..TMergeConfig::default()
        }),
        ..PipelineConfig::default()
    };
    let a = run_pipeline(&tracks_a, gt.n_frames(), &model, &config, None).unwrap();
    let b = run_pipeline(&tracks_b, gt.n_frames(), &model, &config, None).unwrap();
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(a.merged, b.merged);
    assert_eq!(
        a.elapsed_ms, b.elapsed_ms,
        "cost accounting must be deterministic"
    );
}

#[test]
fn all_selectors_agree_on_an_easy_instance() {
    let (gt, tracks, model) = fragmented_tracks(5);
    let corr = Correspondence::from_tracks(&tracks, 0.5);
    let all: Vec<&Track> = tracks.iter().collect();
    let truth = corr.all_polyonymous(&all);
    assert!(!truth.is_empty(), "scene must produce polyonymous pairs");

    for (name, selector) in [
        ("BL", SelectorKind::Baseline),
        ("PS", SelectorKind::Ps(PsConfig { eta: 0.3, seed: 1 })),
        (
            "LCB",
            SelectorKind::Lcb(LcbConfig {
                tau_max: 3_000,
                seed: 1,
                record_history: false,
            }),
        ),
        (
            "TMerge",
            SelectorKind::TMerge(TMergeConfig {
                tau_max: 3_000,
                seed: 1,
                ..TMergeConfig::default()
            }),
        ),
    ] {
        let config = PipelineConfig {
            window_len: 800,
            k: 0.25,
            selector,
            ..PipelineConfig::default()
        };
        let report = run_pipeline(&tracks, gt.n_frames(), &model, &config, None).unwrap();
        let rec = recall(report.candidates.iter(), &truth);
        assert!(
            rec >= 0.99,
            "{name} found only {rec:.2} of the polyonymous pairs"
        );
    }
}

#[test]
fn batched_pipeline_is_cheaper_and_as_accurate() {
    let (gt, tracks, model) = fragmented_tracks(7);
    let base = PipelineConfig {
        window_len: 800,
        k: 0.2,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 2_000,
            ..TMergeConfig::default()
        }),
        ..PipelineConfig::default()
    };
    let cpu = run_pipeline(&tracks, gt.n_frames(), &model, &base, None).unwrap();
    let gpu_cfg = PipelineConfig {
        device: Device::Gpu { batch: 10 },
        ..base
    };
    let gpu = run_pipeline(&tracks, gt.n_frames(), &model, &gpu_cfg, None).unwrap();
    assert!(
        gpu.elapsed_ms < cpu.elapsed_ms / 2.0,
        "batching should cut simulated time: {} vs {}",
        gpu.elapsed_ms,
        cpu.elapsed_ms
    );
    let corr = Correspondence::from_tracks(&tracks, 0.5);
    let all: Vec<&Track> = tracks.iter().collect();
    let truth = corr.all_polyonymous(&all);
    let rec_cpu = recall(cpu.candidates.iter(), &truth);
    let rec_gpu = recall(gpu.candidates.iter(), &truth);
    assert!(
        (rec_cpu - rec_gpu).abs() < 0.5,
        "accuracies diverged: {rec_cpu} vs {rec_gpu}"
    );
}

#[test]
fn glare_alone_can_fragment() {
    // Remove the pillar; keep glare. At 0.9 intensity the detector misses
    // long enough for SORT to drop the track.
    let mut s = Scenario::new(SceneConfig::new(1400.0, 900.0, 400), 11);
    s.push_actor(ActorSpec::new(
        GtObjectId(0),
        classes::PEDESTRIAN,
        40.0,
        100.0,
        FrameIdx(0),
        FrameIdx(400),
        MotionModel::linear(Point::new(10.0, 500.0), 3.0, 0.0),
    ));
    s.push_glare(GlareEvent::new(
        BBox::new(500.0, 300.0, 400.0, 500.0),
        FrameIdx(120),
        FrameIdx(260),
        0.95,
    ));
    let gt = s.simulate();
    let detections = Detector::new(DetectorConfig::default()).detect(&gt, 2);
    let mut tracker = Sort::new(SortConfig::default());
    let tracks = track_video(&mut tracker, &detections);
    assert!(
        tracks.len() >= 2,
        "glare should fragment the single object's track (got {})",
        tracks.len()
    );
}
