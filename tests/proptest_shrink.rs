//! Unit tests for the proptest stub's greedy shrinker (stubs/proptest).
//!
//! The shrinking contract: `Strategy::shrink` proposes in-domain candidates
//! most-aggressive-first, and the `__shrink_failure` walk greedily descends
//! to a locally minimal failing value — for monotone predicates over
//! integer ranges that minimum is exact.

use proptest::prelude::*;

#[test]
fn integer_range_shrinks_toward_the_lower_bound() {
    let strat = 5u64..100;
    let cands = strat.shrink(&87);
    assert_eq!(cands[0], 5, "the bound itself is the most aggressive jump");
    assert!(cands.contains(&46), "midpoint halves the distance");
    assert!(cands.contains(&86), "unit step makes the walk exact");
    assert!(cands.iter().all(|&c| (5..87).contains(&c)));
    assert!(strat.shrink(&5).is_empty(), "the bound is already minimal");
}

#[test]
fn float_range_halves_toward_the_lower_bound() {
    let strat = 1.0f64..64.0;
    let cands = strat.shrink(&33.0);
    assert_eq!(cands[0], 1.0);
    assert!(cands.contains(&17.0));
    assert!(cands.iter().all(|&c| (1.0..33.0).contains(&c)));
    assert!(strat.shrink(&1.0).is_empty());
}

#[test]
fn signed_range_shrinks_toward_its_start_not_zero() {
    let strat = -50i64..50;
    let cands = strat.shrink(&10);
    assert_eq!(cands[0], -50, "lo is the simplest value in this stub");
    assert!(cands.iter().all(|&c| (-50..10).contains(&c)));
}

#[test]
fn vec_shrink_removes_chunks_and_shrinks_elements() {
    let strat = proptest::collection::vec(0u64..10, 0..10);
    let cands = strat.shrink(&vec![1, 2, 3, 4]);
    assert!(cands.contains(&vec![3, 4]), "front half removed");
    assert!(cands.contains(&vec![1, 2]), "back half removed");
    assert!(cands.contains(&vec![2, 3, 4]), "single element removed");
    assert!(
        cands.contains(&vec![0, 2, 3, 4]),
        "elements shrink in place"
    );
    assert!(strat.shrink(&vec![]).is_empty());
}

#[test]
fn vec_shrink_respects_the_minimum_length() {
    // `m..=m` pins the length (the rectangular-matrix idiom in
    // hungarian.rs); removal candidates must not break that invariant.
    let strat = proptest::collection::vec(0u64..10, 3..=3);
    let cands = strat.shrink(&vec![5, 6, 7]);
    assert!(!cands.is_empty(), "element shrinks still apply");
    assert!(cands.iter().all(|c| c.len() == 3));
}

#[test]
fn tuple_shrink_moves_one_component_at_a_time() {
    let strat = (0u64..100, 0u64..100);
    let value = (40, 70);
    for cand in strat.shrink(&value) {
        let moved = usize::from(cand.0 != value.0) + usize::from(cand.1 != value.1);
        assert_eq!(moved, 1, "{cand:?} moved {moved} components");
    }
}

#[test]
fn select_shrinks_to_earlier_options_only() {
    let strat = proptest::sample::select(vec![0.0, 0.25, 0.5, 0.75]);
    assert_eq!(strat.shrink(&0.5), vec![0.0, 0.25]);
    assert!(strat.shrink(&0.0).is_empty());
}

#[test]
fn filter_shrink_keeps_only_passing_candidates() {
    let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
    let cands = strat.shrink(&88);
    assert!(!cands.is_empty());
    assert!(cands.iter().all(|&c| c % 2 == 0));
}

#[test]
fn greedy_walk_finds_the_exact_integer_boundary() {
    // Property "v < 37" first fails at 37; the walk must land exactly there.
    let strat = (0u64..1000,);
    let run = |v: &(u64,)| assert!(v.0 < 37);
    let min = proptest::__shrink_failure(&strat, &run, &(999,)).expect("999 violates the property");
    assert_eq!(min.0, 37);
}

#[test]
fn greedy_walk_returns_none_for_passing_values() {
    let strat = (0u64..1000,);
    let run = |v: &(u64,)| assert!(v.0 < 37);
    assert!(proptest::__shrink_failure(&strat, &run, &(36,)).is_none());
}

#[test]
fn greedy_walk_minimizes_vectors() {
    // Property "sum < 10": minimal failing vec is the single element 10.
    let strat = (proptest::collection::vec(0u64..100, 0..10),);
    let run = |v: &(Vec<u64>,)| assert!(v.0.iter().sum::<u64>() < 10);
    let min = proptest::__shrink_failure(&strat, &run, &(vec![50, 60, 70],))
        .expect("the seed vector violates the property");
    assert_eq!(min.0, vec![10]);
}

// The macro path itself: shrinking machinery must not disturb passing
// properties, and `prop_assume` must skip cases without aborting the run.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn macro_still_drives_passing_properties(a in 0u64..50, b in 0u64..50) {
        prop_assume!(a != b);
        prop_assert!(a + b < 100);
        prop_assert_eq!(a.max(b), b.max(a));
    }
}
