//! Chaos-hardened ingestion: the acceptance suite for deterministic fault
//! injection, retry/backoff, degraded-mode merging, and checkpoint/resume.
//!
//! Everything here runs against `tm-chaos` fault plans, which are pure
//! hashes of `(seed, epoch, box, attempt)` — the same plan produces the
//! identical fault sequence on every run, so each test is reproducible
//! bit for bit.

use tmerge::chaos::stream::regressing_watermarks;
use tmerge::chaos::{FaultPlan, FaultyModel, StreamFaults};
use tmerge::core::{
    run_pipeline, run_pipeline_with_backend, DecisionMode, FleetIngester, GlobalConfig,
    GlobalMerger, PipelineConfig, RobustnessConfig, RobustnessReport, SelectorKind, StreamConfig,
    StreamingMerger, TMerge, TMergeConfig,
};
use tmerge::reid::{
    AppearanceConfig, AppearanceModel, BatchConfig, BatchScheduler, BatchingBackend, CostModel,
    Device, InferenceBackend,
};
use tmerge::synth::{MultiCameraWorld, WorldConfig};
use tmerge::types::{
    ids::classes, BBox, FrameIdx, GtObjectId, TmError, Track, TrackBox, TrackId, TrackSet,
};

/// Total length of the synthetic feed, frames.
const N_FRAMES: u64 = 700;
/// Window length `L`; windows advance every `L/2 = 100` frames.
const WINDOW_LEN: u64 = 200;

fn track(id: u64, actor: u64, start: u64, n: usize, x0: f64) -> Track {
    Track::with_boxes(
        TrackId(id),
        classes::PEDESTRIAN,
        (0..n)
            .map(|i| {
                TrackBox::new(
                    FrameIdx(start + i as u64),
                    BBox::new(x0 + i as f64 * 5.0, 100.0, 40.0, 80.0),
                )
                .with_provenance(GtObjectId(actor))
            })
            .collect(),
    )
}

/// Fragmented tracker output spanning seven windows of `L = 200`, with
/// admissible pairs in every full window: three long "background" tracks
/// bridge the windows while three actors fragment mid-feed.
fn fixture() -> (AppearanceModel, TrackSet) {
    let model = AppearanceModel::new(AppearanceConfig::default());
    let tracks = TrackSet::from_tracks(vec![
        track(1, 10, 0, 30, 0.0),
        track(2, 10, 80, 30, 160.0), // fragment of actor 10
        track(3, 11, 0, 300, 400.0),
        track(4, 12, 100, 300, 800.0),
        track(5, 13, 250, 60, 1200.0),
        track(6, 13, 330, 40, 1360.0), // fragment of actor 13
        track(7, 14, 420, 60, 0.0),
        track(8, 14, 500, 50, 160.0), // fragment of actor 14
        track(9, 15, 350, 300, 400.0),
    ]);
    (model, tracks)
}

fn selector() -> TMerge {
    TMerge::new(TMergeConfig {
        tau_max: 1_500,
        seed: 4,
        ..TMergeConfig::default()
    })
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_len: WINDOW_LEN,
        k: 0.2,
        gate: tm_reid::GatePolicy::Off,
        voi: tmerge::core::VoiMode::Off,
    }
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        window_len: WINDOW_LEN,
        k: 0.2,
        selector: SelectorKind::TMerge(TMergeConfig {
            tau_max: 1_500,
            seed: 4,
            ..TMergeConfig::default()
        }),
        device: Device::Cpu,
        cost: CostModel::calibrated(),
        gate: tm_reid::GatePolicy::Off,
        voi: tmerge::core::VoiMode::Off,
    }
}

fn merger(model: &AppearanceModel) -> StreamingMerger<'_, TMerge> {
    StreamingMerger::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        stream_config(),
    )
    .unwrap()
}

fn gated_merger(model: &AppearanceModel) -> StreamingMerger<'_, TMerge> {
    StreamingMerger::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        StreamConfig {
            gate: tm_reid::GatePolicy::On(tm_reid::GateConfig::default()),
            ..stream_config()
        },
    )
    .unwrap()
}

fn sorted_ids(tracks: &TrackSet) -> Vec<u64> {
    let mut ids: Vec<u64> = tracks.iter().map(|t| t.id.get()).collect();
    ids.sort_unstable();
    ids
}

/// Acceptance: an all-zero fault plan must be bit-for-bit transparent in
/// the offline pipeline — same candidates, same merges, same simulated
/// clock reading to the bit, and all robustness counters zero.
#[test]
fn zero_fault_plan_is_byte_identical_offline() {
    let (model, tracks) = fixture();
    let config = pipeline_config();

    let plain = run_pipeline(&tracks, N_FRAMES, &model, &config, None).unwrap();
    let wrapper = FaultyModel::new(&model, FaultPlan::none());
    let wrapped = run_pipeline_with_backend(
        &tracks,
        N_FRAMES,
        &model,
        &config,
        None,
        &wrapper,
        &RobustnessConfig::default(),
    )
    .unwrap();

    assert_eq!(plain.candidates, wrapped.candidates);
    assert_eq!(plain.accepted, wrapped.accepted);
    assert_eq!(plain.n_pairs, wrapped.n_pairs);
    assert_eq!(plain.distance_evals, wrapped.distance_evals);
    assert_eq!(plain.stats, wrapped.stats);
    assert_eq!(
        plain.elapsed_ms.to_bits(),
        wrapped.elapsed_ms.to_bits(),
        "simulated clock must agree to the bit"
    );
    assert_eq!(sorted_ids(&plain.merged), sorted_ids(&wrapped.merged));
    assert_eq!(wrapped.robustness, RobustnessReport::default());
    assert!(
        !plain.accepted.is_empty(),
        "the fixture should contain mergeable fragments"
    );
}

/// Acceptance: the same transparency holds for the streaming merger.
#[test]
fn zero_fault_plan_is_byte_identical_streaming() {
    let (model, tracks) = fixture();
    let wrapper = FaultyModel::new(&model, FaultPlan::none());

    let mut plain = merger(&model);
    let mut wrapped = merger(&model).with_backend(&wrapper);
    for frames in [250, 480, N_FRAMES] {
        plain.advance(&tracks, frames).unwrap();
        wrapped.advance(&tracks, frames).unwrap();
    }
    plain.finish(&tracks, N_FRAMES).unwrap();
    wrapped.finish(&tracks, N_FRAMES).unwrap();

    assert_eq!(plain.decisions(), wrapped.decisions());
    assert_eq!(plain.accepted(), wrapped.accepted());
    assert_eq!(plain.elapsed_ms().to_bits(), wrapped.elapsed_ms().to_bits());
    assert_eq!(plain.mapping(), wrapped.mapping());
    assert_eq!(wrapped.robustness(), RobustnessReport::default());
}

/// A flaky backend (transient failures, latency spikes, corrupt features)
/// is absorbed by retry/backoff without a panic, and two runs of the same
/// plan are identical down to the simulated clock bits.
#[test]
fn flaky_backend_is_survivable_and_deterministic() {
    let (model, tracks) = fixture();
    let config = pipeline_config();
    let robustness = RobustnessConfig::new();

    let run = || {
        let wrapper = FaultyModel::new(&model, FaultPlan::flaky(7));
        run_pipeline_with_backend(
            &tracks,
            N_FRAMES,
            &model,
            &config,
            None,
            &wrapper,
            &robustness,
        )
        .unwrap()
    };
    let a = run();
    let b = run();

    assert_eq!(a.candidates, b.candidates);
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.elapsed_ms.to_bits(), b.elapsed_ms.to_bits());
    assert_eq!(a.robustness, b.robustness);
    assert!(
        a.robustness.backend_faults > 0,
        "a 5% transient failure rate must surface faults: {:?}",
        a.robustness
    );
    assert!(
        a.robustness.retries > 0,
        "faults are absorbed by retrying: {:?}",
        a.robustness
    );
}

/// Acceptance: with the ReID backend hard-down for two consecutive windows
/// the stream completes without panicking, tags exactly those windows
/// `Degraded`, re-verifies their stashed pairs once the backend recovers,
/// and converges to the same final mapping as a fault-free run.
#[test]
fn hard_down_windows_degrade_then_recover() {
    let (model, tracks) = fixture();
    // Windows 2 and 3 (frames 200..500) cannot reach the backend at all.
    let wrapper = FaultyModel::new(&model, FaultPlan::none().with_hard_down(2, 4));

    let mut faulty = merger(&model).with_backend(&wrapper);
    for frames in [250, 480, N_FRAMES] {
        faulty.advance(&tracks, frames).unwrap();
    }
    faulty.finish(&tracks, N_FRAMES).unwrap();

    let modes: Vec<(usize, DecisionMode)> = faulty
        .decisions()
        .iter()
        .map(|d| (d.window.index, d.mode))
        .collect();
    for (index, mode) in &modes {
        let expected = if *index == 2 || *index == 3 {
            DecisionMode::Degraded
        } else {
            DecisionMode::Normal
        };
        assert_eq!(mode, &expected, "window {index} mode mismatch: {modes:?}");
    }

    let report = faulty.robustness();
    assert_eq!(report.degraded_windows, 2, "{report:?}");
    assert_eq!(report.reverified_windows, 2, "{report:?}");
    assert!(report.breaker_trips >= 1, "{report:?}");
    assert!(report.backend_faults > 0, "{report:?}");

    // Degraded windows were re-scored with the real model after recovery,
    // so the committed merges match a run that never saw a fault.
    let mut clean = merger(&model);
    clean.advance(&tracks, N_FRAMES).unwrap();
    clean.finish(&tracks, N_FRAMES).unwrap();
    assert_eq!(faulty.accepted(), clean.accepted());
    assert_eq!(faulty.mapping(), clean.mapping());
}

/// Acceptance: the extraction gate composes with chaos. A gated merger
/// driven through a hard backend outage — degraded windows, breaker trip,
/// recovery, re-verification — must converge to the same final merges and
/// mapping as an ungated run that never saw a fault, while still saving
/// extraction charges.
#[test]
fn gated_runs_degrade_and_recover_to_the_ungated_answer() {
    let (model, tracks) = fixture();
    let wrapper = FaultyModel::new(&model, FaultPlan::none().with_hard_down(2, 4));

    let mut faulty = gated_merger(&model).with_backend(&wrapper);
    for frames in [250, 480, N_FRAMES] {
        faulty.advance(&tracks, frames).unwrap();
    }
    faulty.finish(&tracks, N_FRAMES).unwrap();

    let report = faulty.robustness();
    assert_eq!(report.degraded_windows, 2, "{report:?}");
    assert_eq!(report.reverified_windows, 2, "{report:?}");
    assert!(report.breaker_trips >= 1, "{report:?}");

    // An ungated, fault-free run is the reference answer.
    let mut clean = merger(&model);
    clean.advance(&tracks, N_FRAMES).unwrap();
    clean.finish(&tracks, N_FRAMES).unwrap();
    assert_eq!(faulty.accepted(), clean.accepted());
    assert_eq!(faulty.mapping(), clean.mapping());
    assert!(
        faulty.gate_stats().saved_charges() > 0,
        "the gate must have saved extractions through the outage"
    );
}

/// Acceptance: killing the ingester mid-outage and resuming from its
/// checkpoint — degraded stash, breaker state, dedup set, simulated clock
/// and all — reproduces the uninterrupted run byte for byte.
#[test]
fn kill_and_resume_is_byte_identical() {
    let (model, tracks) = fixture();
    let plan = FaultPlan::none().with_hard_down(2, 4);
    let wrapper = FaultyModel::new(&model, plan);

    // Reference: one uninterrupted run over the whole feed.
    let mut full = merger(&model).with_backend(&wrapper);
    for frames in [250, 420, N_FRAMES] {
        full.advance(&tracks, frames).unwrap();
    }
    full.finish(&tracks, N_FRAMES).unwrap();

    // Crash at frame 420: window 2 has already failed over to degraded
    // mode, so the checkpoint carries a non-empty stash and a half-open
    // breaker count.
    let bytes = {
        let mut first = merger(&model).with_backend(&wrapper);
        first.advance(&tracks, 250).unwrap();
        first.advance(&tracks, 420).unwrap();
        assert!(
            first
                .decisions()
                .iter()
                .any(|d| d.mode == DecisionMode::Degraded),
            "the crash point should be mid-outage"
        );
        first.checkpoint()
        // `first` is dropped here: the process is "killed".
    };

    let mut resumed = StreamingMerger::resume(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        selector(),
        &bytes,
    )
    .unwrap()
    .with_backend(&wrapper);
    resumed.advance(&tracks, N_FRAMES).unwrap();
    resumed.finish(&tracks, N_FRAMES).unwrap();

    assert_eq!(full.decisions(), resumed.decisions());
    assert_eq!(full.accepted(), resumed.accepted());
    assert_eq!(full.robustness(), resumed.robustness());
    assert_eq!(full.elapsed_ms().to_bits(), resumed.elapsed_ms().to_bits());
    assert_eq!(full.mapping(), resumed.mapping());
}

/// A fleet (one batching scheduler, one lane per stream) whose middle
/// stream is hard-down for two windows: the outage degrades and recovers
/// exactly as it would solo, and the siblings stay byte-identical to
/// no-fault runs — a sibling's outage must be completely invisible.
#[test]
fn fleet_sibling_isolation_through_an_outage() {
    let (model, tracks) = fixture();
    let plans = [
        FaultPlan::none(),
        FaultPlan::none().with_hard_down(2, 4),
        FaultPlan::none(),
    ];
    let faulty: Vec<FaultyModel<'_>> = plans
        .iter()
        .map(|p| FaultyModel::new(&model, p.clone()))
        .collect();
    let scheduler = BatchScheduler::new(&model, BatchConfig::default());
    let lanes: Vec<BatchingBackend<'_>> = faulty.iter().map(|f| scheduler.backend(f)).collect();
    let backends: Vec<&dyn InferenceBackend> =
        lanes.iter().map(|l| l as &dyn InferenceBackend).collect();

    let mut fleet = FleetIngester::new(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        stream_config(),
        |_| selector(),
        &backends,
    )
    .unwrap();
    for frames in [250, 480, N_FRAMES] {
        fleet
            .advance(&[(&tracks, frames), (&tracks, frames), (&tracks, frames)])
            .unwrap();
    }
    fleet
        .finish(&[
            (&tracks, N_FRAMES),
            (&tracks, N_FRAMES),
            (&tracks, N_FRAMES),
        ])
        .unwrap();

    // Per-stream solo references, each over its own fault surface.
    for i in [0usize, 1, 2] {
        let solo_backend = FaultyModel::new(&model, plans[i].clone());
        let mut solo = merger(&model).with_backend(&solo_backend);
        for frames in [250, 480, N_FRAMES] {
            solo.advance(&tracks, frames).unwrap();
        }
        solo.finish(&tracks, N_FRAMES).unwrap();
        let shard = fleet.shard_mut(i);
        assert_eq!(shard.decisions(), solo.decisions(), "stream {i}");
        assert_eq!(shard.accepted(), solo.accepted(), "stream {i}");
        assert_eq!(shard.robustness(), solo.robustness(), "stream {i}");
        assert_eq!(
            shard.elapsed_ms().to_bits(),
            solo.elapsed_ms().to_bits(),
            "stream {i} clock"
        );
        assert_eq!(shard.mapping(), solo.mapping(), "stream {i}");
    }

    // The siblings never saw a fault; the outage stream degraded, then
    // recovered to the clean mapping.
    for i in [0usize, 2] {
        assert_eq!(fleet.shard(i).robustness(), RobustnessReport::default());
    }
    let outage = fleet.shard(1).robustness();
    assert_eq!(outage.degraded_windows, 2, "{outage:?}");
    assert_eq!(outage.reverified_windows, 2, "{outage:?}");
    let mut clean = merger(&model);
    clean.advance(&tracks, N_FRAMES).unwrap();
    clean.finish(&tracks, N_FRAMES).unwrap();
    assert_eq!(fleet.shard_mut(1).mapping(), clean.mapping());
}

/// Killing the whole fleet mid-outage and resuming from its envelope
/// checkpoint — with a *fresh* scheduler and lanes, since the shared
/// feature cache is derived data — reproduces the uninterrupted fleet run
/// byte for byte on every stream.
#[test]
fn fleet_kill_and_resume_is_byte_identical() {
    let (model, tracks) = fixture();
    let plans = [FaultPlan::none(), FaultPlan::none().with_hard_down(2, 4)];
    let run = |bytes: Option<&[u8]>, to_end: bool| {
        let faulty: Vec<FaultyModel<'_>> = plans
            .iter()
            .map(|p| FaultyModel::new(&model, p.clone()))
            .collect();
        let scheduler = BatchScheduler::new(&model, BatchConfig::default());
        let lanes: Vec<BatchingBackend<'_>> = faulty.iter().map(|f| scheduler.backend(f)).collect();
        let backends: Vec<&dyn InferenceBackend> =
            lanes.iter().map(|l| l as &dyn InferenceBackend).collect();
        let mut fleet = match bytes {
            None => FleetIngester::new(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                stream_config(),
                |_| selector(),
                &backends,
            )
            .unwrap(),
            Some(b) => FleetIngester::resume(
                &model,
                CostModel::calibrated(),
                Device::Cpu,
                |_| selector(),
                &backends,
                b,
            )
            .unwrap(),
        };
        let schedule: &[u64] = if bytes.is_some() {
            &[N_FRAMES]
        } else {
            &[250, 420, N_FRAMES]
        };
        for &frames in schedule {
            if !to_end && frames > 420 {
                break;
            }
            fleet
                .advance(&[(&tracks, frames), (&tracks, frames)])
                .unwrap();
        }
        if !to_end {
            // Crash mid-outage: the checkpoint carries a degraded stash.
            assert!(fleet
                .shard(1)
                .decisions()
                .iter()
                .any(|d| d.mode == DecisionMode::Degraded));
            return (fleet.checkpoint(), Vec::new());
        }
        fleet
            .finish(&[(&tracks, N_FRAMES), (&tracks, N_FRAMES)])
            .unwrap();
        let summaries = (0..2)
            .map(|i| {
                let s = fleet.shard_mut(i);
                (
                    s.decisions().to_vec(),
                    s.accepted().to_vec(),
                    s.robustness(),
                    s.elapsed_ms().to_bits(),
                    s.mapping(),
                )
            })
            .collect();
        (Vec::new(), summaries)
    };

    // Reference: one uninterrupted fleet run.
    let (_, full) = run(None, true);
    // Killed at frame 420, resumed with fresh scheduler/lanes, run to end.
    let (bytes, _) = run(None, false);
    let (_, resumed) = run(Some(&bytes), true);
    assert_eq!(full, resumed, "resumed fleet must reproduce the full run");
}

/// Corrupt tracker output (non-finite coordinates) is rejected by
/// validation as a clean typed error, not a downstream panic or NaN
/// propagation.
#[test]
fn corrupt_stream_input_is_a_clean_error() {
    let (model, tracks) = fixture();
    let mutated = StreamFaults {
        corrupt_rate: 0.25,
        ..StreamFaults::none(3)
    }
    .apply(&tracks);

    let mut m = merger(&model);
    let err = m.advance(&mutated, 250);
    assert!(
        matches!(err, Err(TmError::InvalidTrack { .. })),
        "expected InvalidTrack, got {err:?}"
    );
    // The merger itself is still usable with sane input.
    m.advance(&tracks, 250).unwrap();
}

/// A six-camera world with shared actors, for the cross-camera chaos
/// tests below: small enough to resolve quickly, busy enough that the
/// outage rounds contain in-flight transits.
fn global_world() -> MultiCameraWorld {
    MultiCameraWorld::new(WorldConfig {
        cameras: 6,
        actors: 5,
        hops: 3,
        ..WorldConfig::default()
    })
}

/// The cross-camera pair space is larger than a single stream's, so the
/// global selector gets a budget to match (an unsampled arm keeps its
/// prior score and is rejected by the acceptance threshold).
fn global_merger(model: &AppearanceModel) -> GlobalMerger<'_, TMerge> {
    GlobalMerger::new(
        model,
        CostModel::calibrated(),
        Device::Cpu,
        TMerge::new(TMergeConfig {
            tau_max: 10_000,
            seed: 4,
            ..TMergeConfig::default()
        }),
        GlobalConfig::default(),
    )
    .unwrap()
}

/// Acceptance: a backend outage spanning global rounds 2–3 — while actors
/// are mid-transit between cameras — degrades exactly those rounds,
/// accepts *nothing* provisionally (cross-camera evidence is
/// appearance-only), and after breaker recovery plus stash
/// re-verification converges to the identical cross-camera links,
/// mapping and learned topology of a run that never saw a fault.
#[test]
fn camera_outage_mid_transit_recovers_to_the_fault_free_global_mapping() {
    let w = global_world();
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    let model = AppearanceModel::new(AppearanceConfig::default());
    let refs: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, horizon)).collect();

    let mut clean = global_merger(&model);
    clean.finish(&refs).unwrap();
    assert!(
        !clean.accepted().is_empty(),
        "the world must produce cross-camera links for this test to mean anything"
    );

    let wrapper = FaultyModel::new(&model, FaultPlan::none().with_hard_down(2, 4));
    let mut faulty = global_merger(&model).with_backend(&wrapper);
    for frames in [horizon / 3, 2 * horizon / 3] {
        let step: Vec<(&TrackSet, u64)> = feeds.iter().map(|t| (t, frames)).collect();
        faulty.advance(&step).unwrap();
    }
    faulty.finish(&refs).unwrap();

    let degraded: Vec<u64> = faulty
        .decisions()
        .iter()
        .filter(|d| d.mode == DecisionMode::Degraded)
        .map(|d| d.round)
        .collect();
    assert!(
        !degraded.is_empty(),
        "the outage must degrade at least one round: {:?}",
        faulty.decisions()
    );
    assert!(
        degraded.iter().all(|r| *r == 2 || *r == 3),
        "only the hard-down rounds may degrade: {degraded:?}"
    );
    let report = faulty.robustness();
    assert_eq!(
        report.degraded_windows as usize,
        degraded.len(),
        "{report:?}"
    );
    assert_eq!(
        report.reverified_windows, report.degraded_windows,
        "{report:?}"
    );
    assert!(report.breaker_trips >= 1, "{report:?}");
    assert!(report.backend_faults > 0, "{report:?}");
    assert_eq!(faulty.stash_len(), 0, "no round may stay stashed at finish");

    assert_eq!(faulty.accepted(), clean.accepted());
    assert_eq!(faulty.mapping(), clean.mapping());
    assert_eq!(faulty.topology(), clean.topology());
}

/// Acceptance: killing the global merger mid-outage — degraded stash,
/// open breaker, half-learned topology and all — and resuming from its
/// `TMGL` checkpoint reproduces the uninterrupted faulty run byte for
/// byte: decisions, links, counters, simulated clock bits, and the final
/// checkpoint itself.
#[test]
fn global_kill_and_resume_mid_outage_is_byte_identical() {
    let w = global_world();
    let horizon = w.horizon();
    let feeds = w.all_camera_tracks(horizon);
    let model = AppearanceModel::new(AppearanceConfig::default());
    let plan = FaultPlan::none().with_hard_down(2, 4);
    let at = |frames: u64| -> Vec<(&TrackSet, u64)> { feeds.iter().map(|t| (t, frames)).collect() };

    // Reference: one uninterrupted faulty run.
    let wrapper = FaultyModel::new(&model, plan.clone());
    let mut full = global_merger(&model).with_backend(&wrapper);
    for frames in [horizon / 3, 2 * horizon / 3, horizon] {
        full.advance(&at(frames)).unwrap();
    }
    full.finish(&at(horizon)).unwrap();

    // Crash at 2/3 horizon: inside the outage, so the checkpoint carries
    // a degraded stash and breaker state.
    let bytes = {
        let wrapper = FaultyModel::new(&model, plan.clone());
        let mut first = global_merger(&model).with_backend(&wrapper);
        first.advance(&at(horizon / 3)).unwrap();
        first.advance(&at(2 * horizon / 3)).unwrap();
        assert!(
            first.stash_len() > 0,
            "the crash point should be mid-outage with stashed rounds"
        );
        first.checkpoint()
        // `first` is dropped here: the process is "killed".
    };

    let wrapper = FaultyModel::new(&model, plan);
    let mut resumed = GlobalMerger::resume(
        &model,
        CostModel::calibrated(),
        Device::Cpu,
        TMerge::new(TMergeConfig {
            tau_max: 10_000,
            seed: 4,
            ..TMergeConfig::default()
        }),
        &bytes,
    )
    .unwrap()
    .with_backend(&wrapper);
    resumed.advance(&at(horizon)).unwrap();
    resumed.finish(&at(horizon)).unwrap();

    assert_eq!(full.decisions(), resumed.decisions());
    assert_eq!(full.accepted(), resumed.accepted());
    assert_eq!(full.robustness(), resumed.robustness());
    assert_eq!(full.elapsed_ms().to_bits(), resumed.elapsed_ms().to_bits());
    assert_eq!(full.mapping(), resumed.mapping());
    assert_eq!(
        full.checkpoint(),
        resumed.checkpoint(),
        "the final checkpoints must agree byte for byte"
    );
}

/// A feed whose watermarks occasionally regress (out-of-order delivery)
/// produces clean `FrameRegression` errors on the bad ticks and the same
/// final result as an orderly feed on the good ones.
#[test]
fn regressing_watermarks_are_rejected_without_corrupting_state() {
    let (model, tracks) = fixture();
    let ticks = regressing_watermarks(5, N_FRAMES, 50, 0.4);
    assert_eq!(*ticks.last().unwrap(), N_FRAMES);

    let mut m = merger(&model);
    let mut high = 0u64;
    let mut regressions = 0u32;
    for t in ticks {
        match m.advance(&tracks, t) {
            Ok(_) => {
                assert!(t >= high, "advance accepted a regressing watermark");
                high = t;
            }
            Err(TmError::FrameRegression { frame, watermark }) => {
                assert!(frame.get() < watermark.get());
                assert_eq!(watermark.get(), high);
                regressions += 1;
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    assert!(
        regressions > 0,
        "the fault schedule should regress at least once"
    );
    m.finish(&tracks, N_FRAMES).unwrap();

    let mut clean = merger(&model);
    clean.advance(&tracks, N_FRAMES).unwrap();
    clean.finish(&tracks, N_FRAMES).unwrap();
    assert_eq!(m.accepted(), clean.accepted());
    assert_eq!(m.decisions(), clean.decisions());
    assert_eq!(m.mapping(), clean.mapping());
}

/// Acceptance: an anytime query over a stream whose ReID backend goes hard
/// down for two windows keeps its interval sound throughout — it never
/// excludes the fault-free answer — stops committing (and therefore stops
/// tightening from the `lo` side) while degraded, and after breaker
/// recovery re-verifies the stash and converges to the fault-free answer
/// *exactly* (`lo == hi == estimate`).
#[test]
fn anytime_query_interval_survives_hard_down_and_recovers_exactly() {
    use tmerge::query::{AnytimeConfig, AnytimeStream, Query};

    let (model, tracks) = fixture();
    let query = Query::Count { min_frames: 100 };

    // Fault-free reference: same config, same schedule.
    let mut clean = AnytimeStream::new(merger(&model), query, AnytimeConfig::default());
    for frames in [300, 500, N_FRAMES] {
        clean.advance(&tracks, frames).unwrap();
    }
    let clean_answer = clean.finish(&tracks, N_FRAMES).unwrap();
    assert!(clean_answer.converged, "fault-free stream must converge");
    let exact = clean_answer.estimate as f64;

    // Windows 2 and 3 (frames 200..500) cannot reach the backend at all.
    let wrapper = FaultyModel::new(&model, FaultPlan::none().with_hard_down(2, 4));
    let mut faulty = AnytimeStream::new(
        merger(&model).with_backend(&wrapper),
        query,
        AnytimeConfig::default(),
    );

    // Watermark 300 closes the two healthy windows 0 and 1; watermark 500
    // closes exactly the two hard-down windows 2 and 3.
    let p_pre = faulty.advance(&tracks, 300).unwrap();
    let committed_pre = faulty.merger().accepted().len();
    let p_outage = faulty.advance(&tracks, 500).unwrap();
    // Degraded windows commit nothing: the lo side has no new merges to
    // stand on, and the stashed pairs keep the interval open.
    assert_eq!(
        faulty.merger().accepted().len(),
        committed_pre,
        "a degraded window must not commit merges"
    );
    assert!(
        faulty.merger().stash_len() > 0,
        "the outage must stash at least one window"
    );
    assert!(
        p_outage.lo < p_outage.hi,
        "the interval must stay open while windows are stashed"
    );
    faulty.advance(&tracks, N_FRAMES).unwrap();
    let answer = faulty.finish(&tracks, N_FRAMES).unwrap();

    // The interval never lied: the fault-free answer sits inside every
    // point of the degraded trajectory, including the pre-outage one.
    for (i, p) in answer.trajectory.iter().enumerate() {
        assert!(
            p.lo <= exact && exact <= p.hi,
            "point {i} [{}, {}] excludes the fault-free answer {exact} \
             (trajectory: {:?})",
            p.lo,
            p.hi,
            answer.trajectory
        );
    }
    let _ = p_pre;

    // Recovery re-verified the stash with the real model: exact
    // convergence to the fault-free answer, not just containment.
    assert!(answer.converged, "recovered stream must converge");
    assert_eq!(answer.estimate, clean_answer.estimate);
    assert_eq!(answer.lo.to_bits(), (exact).to_bits());
    assert_eq!(answer.hi.to_bits(), (exact).to_bits());
    assert_eq!(answer.answer, clean_answer.answer);
    assert_eq!(answer.accepted, clean_answer.accepted);
}
